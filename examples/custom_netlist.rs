//! Bring your own design: analyze a netlist written in structural
//! Verilog, or build one with the word-level synthesis API.
//!
//! ```sh
//! cargo run --release --example custom_netlist
//! ```

use fusa::gcn::pipeline::{FusaPipeline, PipelineConfig};
use fusa::netlist::parser::parse_verilog;
use fusa::netlist::{NetlistStats, Synth};

/// A small handwritten gate-level module, the kind a synthesis tool
/// emits.
const VERILOG: &str = r#"
module majority_voter (a, b, c, rst, y, fault_flag);
  input a, b, c, rst;
  output y, fault_flag;
  wire ab, bc, ca, vote, na, dq;
  AN2 U1 (.A(a), .B(b), .Z(ab));
  AN2 U2 (.A(b), .B(c), .Z(bc));
  AN2 U3 (.A(c), .B(a), .Z(ca));
  OR3 U4 (.A(ab), .B(bc), .C(ca), .Z(vote));
  DFFR R1 (.D(vote), .R(rst), .Q(y));
  // Disagreement detector: flags when not all inputs agree.
  EO2 U5 (.A(a), .B(b), .Z(na));
  EO2 U6 (.A(b), .B(c), .Z(dq));
  OR2 U7 (.A(na), .B(dq), .Z(fault_flag));
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Path 1: parse structural Verilog.
    let voter = parse_verilog(VERILOG)?;
    println!("parsed: {}", NetlistStats::of(&voter));

    // Path 2: build a design with the synthesis API — an 8-bit
    // accumulator with saturation flag.
    let mut s = Synth::new("accumulator8");
    let rst = s.input_bit("rst");
    let en = s.input_bit("en");
    let addend = s.input_word("addend", 8);
    let acc = s.reg_word("acc", 8);
    let zero = s.zero();
    let (sum, carry) = s.add(&acc, &addend, zero);
    let next = s.mux_word(en, &acc, &sum);
    s.connect_reg("acc", &acc, &next, None, Some(rst));
    s.output_word("acc", &acc);
    s.output_bit("overflow", carry);
    let accumulator = s.finish()?;
    println!("built:  {}", NetlistStats::of(&accumulator));

    // Both go straight into the analysis pipeline.
    for design in [voter, accumulator] {
        match FusaPipeline::new(PipelineConfig::fast()).run(&design) {
            Ok(analysis) => println!(
                "{}: {} critical / {} nodes, GCN accuracy {:.1}%",
                design.name(),
                analysis.dataset.critical_count(),
                analysis.dataset.labels().len(),
                analysis.evaluation.accuracy * 100.0,
            ),
            Err(e) => println!(
                "{}: {e} (tiny designs can be uniformly critical — the GCN needs both classes)",
                design.name(),
            ),
        }
    }
    Ok(())
}
