//! Explainability walkthrough (§3.5): train the GCN on the SDRAM
//! controller, then interrogate *why* individual nodes were classified
//! critical — per-node feature masks, important edges, and the global
//! Eq.-3 feature ranking.
//!
//! ```sh
//! cargo run --release --example explain_critical_nodes
//! ```

use fusa::gcn::pipeline::{FusaPipeline, PipelineConfig};
use fusa::gcn::ExplainerConfig;
use fusa::netlist::designs::sdram_ctrl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = sdram_ctrl();
    let analysis = FusaPipeline::new(PipelineConfig::default()).run(&design)?;
    println!(
        "trained: accuracy {:.1}%, AUC {:.3}\n",
        analysis.evaluation.accuracy * 100.0,
        analysis.evaluation.auc,
    );

    let explainer = analysis.explainer(ExplainerConfig::default());

    // Explain the first three validation nodes.
    for &node in analysis.split.validation.iter().take(3) {
        let explanation = explainer.explain(node);
        println!(
            "node {} ({}) predicted {}:",
            node,
            design.gates()[node].name,
            if explanation.predicted_class == 1 {
                "CRITICAL"
            } else {
                "non-critical"
            },
        );
        for (feature, score) in explanation.ranked_features() {
            println!("    {feature:<36} importance {score:.2}");
        }
        let top_edges: Vec<String> = explanation
            .edge_importance
            .iter()
            .take(3)
            .map(|(a, b, w)| {
                format!(
                    "{}-{} ({w:.2})",
                    design.gates()[*a].name,
                    design.gates()[*b].name
                )
            })
            .collect();
        println!("    most influential wires: {}\n", top_edges.join(", "));
    }

    // Global ranking over a sample of nodes (Figure 5(b)).
    let sample: Vec<usize> = analysis.split.validation.iter().copied().take(30).collect();
    let global = explainer.global_importance(&sample);
    println!(
        "global feature ranking over {} nodes (Eq. 3):",
        global.nodes_explained
    );
    for (feature, mean_rank) in global.ranking() {
        println!("    {feature:<36} average rank {mean_rank:.2}");
    }
    Ok(())
}
