//! Classic fault-injection workflow on the SDRAM controller — the
//! conventional flow the paper's GCN accelerates (§2.2): enumerate
//! stuck-at faults, run workloads, classify outcomes, aggregate
//! Algorithm-1 criticality, and report coverage per workload.
//!
//! ```sh
//! cargo run --release --example sdram_fault_analysis
//! ```

use fusa::faultsim::{CampaignConfig, FaultCampaign, FaultList};
use fusa::logicsim::{WorkloadConfig, WorkloadSuite};
use fusa::netlist::designs::sdram_ctrl;
use fusa::netlist::NetlistStats;

fn main() {
    let design = sdram_ctrl();
    println!("{}", NetlistStats::of(&design));

    let faults = FaultList::all_gate_outputs(&design).prune_redundant(&design);
    println!("\nfault list: {} stuck-at faults", faults.len());

    let workloads = WorkloadSuite::generate(
        &design,
        &WorkloadConfig {
            num_workloads: 12,
            vectors_per_workload: 256,
            ..Default::default()
        },
    );
    let started = std::time::Instant::now();
    let report = FaultCampaign::new(CampaignConfig {
        min_divergence_fraction: 0.2,
        ..Default::default()
    })
    .run(&design, &faults, &workloads)
    .expect("campaign runs");
    println!(
        "campaign finished in {:.2}s ({} fault-workload pairs)\n",
        started.elapsed().as_secs_f64(),
        faults.len() * workloads.len(),
    );
    print!("{}", report.summary());

    let dataset = report.into_dataset(0.5);
    println!(
        "\nAlgorithm 1: {} critical nodes ({:.1}%)",
        dataset.critical_count(),
        dataset.critical_fraction() * 100.0,
    );

    // Histogram of criticality scores.
    let mut bins = [0usize; 10];
    for &score in dataset.scores() {
        bins[((score * 10.0) as usize).min(9)] += 1;
    }
    println!("\ncriticality score distribution:");
    for (i, count) in bins.iter().enumerate() {
        println!(
            "  [{:.1}-{:.1}) {:<50} {}",
            i as f64 / 10.0,
            (i + 1) as f64 / 10.0,
            "#".repeat((count * 50 / dataset.scores().len().max(1)).min(50)),
            count,
        );
    }
}
