//! Transient-fault (SEU) vulnerability analysis: which flip-flops of the
//! SDRAM controller corrupt outputs when a particle flips them once?
//!
//! ```sh
//! cargo run --release --example seu_analysis
//! ```

use fusa::faultsim::{SeuCampaign, SeuConfig};
use fusa::logicsim::{WorkloadConfig, WorkloadSuite};
use fusa::netlist::designs::sdram_ctrl;

fn main() {
    let design = sdram_ctrl();
    let workloads = WorkloadSuite::generate(
        &design,
        &WorkloadConfig {
            num_workloads: 8,
            vectors_per_workload: 128,
            ..Default::default()
        },
    );

    let report = SeuCampaign::new(SeuConfig::default()).run(&design, &workloads);
    println!(
        "{}: {} flip-flops, {} injection experiments each",
        design.name(),
        report.flops.len(),
        report.experiments
    );
    println!(
        "mean corruption rate {:.3} (architectural vulnerability proxy)\n",
        report.mean_corruption_rate()
    );

    println!("most SEU-vulnerable registers:");
    for (gate, rate) in report.ranking().into_iter().take(10) {
        println!("  {:<24} corruption rate {rate:.2}", design.gate(gate).name);
    }

    let masked = report
        .corruption_rate
        .iter()
        .zip(&report.latent_rate)
        .filter(|(&c, &l)| c == 0.0 && l == 0.0)
        .count();
    println!(
        "\n{} of {} registers fully masked every upset — no hardening needed there",
        masked,
        report.flops.len()
    );
}
