//! Static-analysis audit of every built-in design.
//!
//! Runs the full `fusa-lint` pass registry over the four benchmark
//! netlists, prints each severity-grouped report, and shows how many
//! stuck-at fault sites the fault-injection pipeline would exclude as
//! statically untestable.
//!
//! ```sh
//! cargo run --release --example lint_audit
//! ```

use fusa::lint::{lint_netlist, untestable_stuck_at_sites};
use fusa::netlist::designs;

fn main() {
    for netlist in designs::all_designs() {
        let report = lint_netlist(&netlist);
        print!("{}", report.render_text());

        let untestable = untestable_stuck_at_sites(&netlist);
        println!(
            "fault-campaign impact: {} of {} stuck-at sites statically untestable\n",
            untestable.len(),
            2 * netlist.gate_count(),
        );
    }
}
