//! Debugging a fault with waveforms: simulate the OR1200 ICFSM golden
//! and with a stuck-at fault injected, dump both as VCD files (open in
//! GTKWave/Surfer), and report where they diverge.
//!
//! ```sh
//! cargo run --release --example fault_waveforms
//! ```

use fusa::logicsim::{Logic, Simulator, VcdRecorder, WorkloadConfig, WorkloadSuite};
use fusa::netlist::designs::or1200_icfsm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = or1200_icfsm();

    // Pick the fault: the FSM state register bit 0, stuck at 1.
    let victim = design
        .find_gate("state_reg_0")
        .expect("state register exists");
    let victim_net = design.gate(victim).output;
    println!(
        "injecting SA1 at {} (net {})",
        design.gate(victim).name,
        design.net(victim_net).name
    );

    let workload = &WorkloadSuite::generate(
        &design,
        &WorkloadConfig {
            num_workloads: 1,
            vectors_per_workload: 64,
            ..Default::default()
        },
    )[0];

    let mut golden = Simulator::new(&design);
    let mut faulty = Simulator::new(&design);
    faulty.force(victim_net, Logic::One);

    let mut golden_vcd = VcdRecorder::all_nets(&design);
    let mut faulty_vcd = VcdRecorder::all_nets(&design);
    let mut first_divergence = None;

    for (cycle, vector) in workload.vectors.iter().enumerate() {
        let logic: Vec<Logic> = vector.iter().map(|&b| Logic::from_bool(b)).collect();
        golden.set_inputs(&logic);
        faulty.set_inputs(&logic);
        golden.settle();
        faulty.settle();
        golden_vcd.sample(&golden);
        faulty_vcd.sample(&faulty);
        if first_divergence.is_none() && golden.output_values() != faulty.output_values() {
            first_divergence = Some(cycle);
        }
        golden.clock();
        faulty.clock();
    }

    match first_divergence {
        Some(cycle) => println!("outputs first diverge at cycle {cycle}"),
        None => println!("fault never reached an output in this workload"),
    }

    std::fs::create_dir_all("results")?;
    std::fs::write("results/golden.vcd", golden_vcd.render())?;
    std::fs::write("results/faulty.vcd", faulty_vcd.render())?;
    println!(
        "wrote results/golden.vcd and results/faulty.vcd ({} cycles)",
        golden_vcd.len()
    );
    Ok(())
}
