//! Quickstart: analyze a design end-to-end in ~20 lines.
//!
//! Runs the full Figure-2 flow on the OR1200 instruction-cache FSM:
//! graph generation, feature extraction, fault-injection ground truth,
//! GCN training, and a look at the most critical predicted nodes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fusa::gcn::pipeline::{FusaPipeline, PipelineConfig};
use fusa::netlist::designs::or1200_icfsm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = or1200_icfsm();
    println!("analyzing {design}");

    let analysis = FusaPipeline::new(PipelineConfig::default()).run(&design)?;

    println!(
        "ground truth: {} of {} nodes critical (threshold {})",
        analysis.dataset.critical_count(),
        analysis.dataset.labels().len(),
        analysis.dataset.threshold(),
    );
    println!(
        "GCN validation accuracy {:.1}%, AUC {:.3}",
        analysis.evaluation.accuracy * 100.0,
        analysis.evaluation.auc,
    );

    // The ten nodes the model is most confident are critical.
    let mut ranked: Vec<(usize, f64)> = analysis
        .evaluation
        .critical_probability
        .iter()
        .copied()
        .enumerate()
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    println!("\nmost critical nodes:");
    for (node, probability) in ranked.into_iter().take(10) {
        println!(
            "  {:<20} P(critical) = {:.3}  (ground truth: {})",
            design.gates()[node].name,
            probability,
            if analysis.labels()[node] {
                "critical"
            } else {
                "non-critical"
            },
        );
    }
    Ok(())
}
