//! Criticality score regression (§3.4): beyond the binary
//! critical/non-critical label, predict *how* critical each node is, and
//! check conformity with the classifier (§4.2.2 reports > 85%).
//!
//! ```sh
//! cargo run --release --example criticality_scores
//! ```

use fusa::gcn::pipeline::{FusaPipeline, PipelineConfig};
use fusa::gcn::TrainConfig;
use fusa::netlist::designs::or1200_if;
use fusa::neuro::metrics::{pearson, spearman};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = or1200_if();
    let analysis = FusaPipeline::new(PipelineConfig::default()).run(&design)?;

    let (_regressor, predicted) = analysis.train_regressor(&TrainConfig::default());

    // Compare predicted scores to fault-injection ground truth on the
    // held-out nodes.
    let truth: Vec<f64> = analysis
        .split
        .validation
        .iter()
        .map(|&i| analysis.dataset.scores()[i])
        .collect();
    let scores: Vec<f64> = analysis
        .split
        .validation
        .iter()
        .map(|&i| predicted[i])
        .collect();

    println!(
        "validation nodes: {} | pearson {:.3} | spearman {:.3}",
        truth.len(),
        pearson(&scores, &truth),
        spearman(&scores, &truth),
    );
    println!(
        "conformity with classifier at th=0.5: {:.1}%",
        analysis.regression_conformity(&predicted) * 100.0,
    );

    // Show a few nodes where the graded score adds information the
    // binary label cannot: both critical, different severity.
    let mut critical: Vec<(usize, f64)> = analysis
        .split
        .validation
        .iter()
        .filter(|&&i| analysis.labels()[i])
        .map(|&i| (i, predicted[i]))
        .collect();
    critical.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    println!("\ngraded criticality among CRITICAL validation nodes:");
    for (node, score) in critical.iter().take(5) {
        println!(
            "  {:<20} predicted {:.2} (truth {:.2})",
            design.gates()[*node].name,
            score,
            analysis.dataset.scores()[*node],
        );
    }
    if let (Some(first), Some(last)) = (critical.first(), critical.last()) {
        println!(
            "\nfortification priority: {} ({:.2}) before {} ({:.2})",
            design.gates()[first.0].name,
            first.1,
            design.gates()[last.0].name,
            last.1,
        );
    }
    Ok(())
}
