//! Cross-crate consistency checks: netlist ↔ simulator ↔ fault injector
//! ↔ graph features agree with one another on the benchmark designs.

use fusa::faultsim::{CampaignConfig, FaultCampaign, FaultList, FaultOutcome};
use fusa::graph::{normalized_adjacency, CircuitGraph, FeatureMatrix};
use fusa::logicsim::{
    BitSim, Logic, SignalStats, SignalStatsConfig, Simulator, WorkloadConfig, WorkloadSuite,
};
use fusa::netlist::designs::{or1200_icfsm, paper_designs, random_netlist, RandomNetlistConfig};
use fusa::netlist::{in_output_cone, parser::parse_verilog, writer::write_verilog, GateId};

#[test]
fn all_designs_round_trip_through_verilog() {
    for design in paper_designs() {
        let text = write_verilog(&design);
        let reparsed = parse_verilog(&text)
            .unwrap_or_else(|e| panic!("{} failed to reparse: {e}", design.name()));
        assert_eq!(
            design.gate_count(),
            reparsed.gate_count(),
            "{}",
            design.name()
        );
        assert_eq!(
            design.primary_inputs().len(),
            reparsed.primary_inputs().len()
        );
        assert_eq!(
            design.primary_outputs().len(),
            reparsed.primary_outputs().len()
        );
        assert_eq!(design.kind_histogram(), reparsed.kind_histogram());
    }
}

#[test]
fn reparsed_design_simulates_identically() {
    let original = or1200_icfsm();
    let reparsed = parse_verilog(&write_verilog(&original)).expect("reparses");
    let mut sim_a = BitSim::new(&original);
    let mut sim_b = BitSim::new(&reparsed);
    let pi = original.primary_inputs().len();
    for cycle in 0..50u64 {
        let vector: Vec<bool> = (0..pi).map(|i| (cycle >> (i % 8)) & 1 == 1).collect();
        let out_a = sim_a.step_broadcast(&vector);
        let out_b = sim_b.step_broadcast(&vector);
        assert_eq!(out_a, out_b, "cycle {cycle}");
    }
}

#[test]
fn scalar_and_bitparallel_agree_on_every_design() {
    for design in paper_designs() {
        let mut scalar = Simulator::new(&design);
        let mut parallel = BitSim::new(&design);
        let pi = design.primary_inputs().len();
        for cycle in 0..16u64 {
            let vector: Vec<bool> = (0..pi)
                .map(|i| (cycle * 2654435761 + i as u64).is_multiple_of(3))
                .collect();
            let logic: Vec<Logic> = vector.iter().map(|&b| Logic::from_bool(b)).collect();
            let scalar_out = scalar.step(&logic);
            let parallel_out = parallel.step_broadcast(&vector);
            for (s, p) in scalar_out.iter().zip(&parallel_out) {
                assert_eq!(
                    s.to_bool(),
                    Some(p & 1 != 0),
                    "{} cycle {cycle}",
                    design.name()
                );
            }
        }
    }
}

#[test]
fn faults_outside_output_cone_are_never_dangerous() {
    let design = random_netlist(&RandomNetlistConfig {
        num_gates: 120,
        num_inputs: 8,
        num_outputs: 4,
        sequential_fraction: 0.1,
        seed: 99,
    });
    let faults = FaultList::all_gate_outputs(&design);
    let workloads = WorkloadSuite::generate(
        &design,
        &WorkloadConfig {
            num_workloads: 4,
            vectors_per_workload: 48,
            ..Default::default()
        },
    );
    let report = FaultCampaign::new(CampaignConfig {
        threads: 1,
        ..Default::default()
    })
    .run(&design, &faults, &workloads)
    .expect("campaign runs");
    for workload in report.workload_reports() {
        for (fault, outcome) in report.faults().iter().zip(&workload.outcomes) {
            if *outcome == FaultOutcome::Dangerous {
                assert!(
                    in_output_cone(&design, fault.gate),
                    "dangerous fault at {} is outside every output cone",
                    design.gate(fault.gate).name
                );
            }
        }
    }
}

#[test]
fn feature_matrix_is_finite_and_aligned() {
    for design in paper_designs() {
        let stats = SignalStats::estimate(
            &design,
            &SignalStatsConfig {
                cycles: 96,
                warmup: 8,
                ..Default::default()
            },
        );
        let features = FeatureMatrix::extract(&design, &stats);
        assert_eq!(features.matrix().rows(), design.gate_count());
        assert!(!features.matrix().has_non_finite(), "{}", design.name());
        // Connection counts in the feature matrix match the netlist.
        for i in 0..design.gate_count() {
            let id = GateId(i as u32);
            assert_eq!(
                features.row(id)[0],
                design.connection_count(id) as f64,
                "{} gate {i}",
                design.name()
            );
        }
    }
}

#[test]
fn graph_degrees_bound_connection_counts() {
    // Graph degree counts distinct neighbouring gates; connection count
    // counts pins — degree can never exceed it.
    for design in paper_designs() {
        let graph = CircuitGraph::from_netlist(&design);
        for i in 0..design.gate_count() {
            assert!(
                graph.degree(i) <= design.connection_count(GateId(i as u32)),
                "{} node {i}",
                design.name()
            );
        }
    }
}

#[test]
fn adjacency_matches_graph_structure() {
    let design = or1200_icfsm();
    let graph = CircuitGraph::from_netlist(&design);
    let adj = normalized_adjacency(&graph);
    assert_eq!(adj.rows(), graph.node_count());
    assert_eq!(adj.nnz(), graph.node_count() + 2 * graph.edge_count());
    for &(a, b) in graph.edges() {
        assert!(adj.get(a, b) > 0.0);
        assert!((adj.get(a, b) - adj.get(b, a)).abs() < 1e-15);
    }
}

#[test]
fn criticality_scores_are_workload_fractions() {
    let design = or1200_icfsm();
    let faults = FaultList::all_gate_outputs(&design);
    let workloads = WorkloadSuite::generate(
        &design,
        &WorkloadConfig {
            num_workloads: 5,
            vectors_per_workload: 32,
            ..Default::default()
        },
    );
    let report = FaultCampaign::new(CampaignConfig {
        threads: 1,
        ..Default::default()
    })
    .run(&design, &faults, &workloads)
    .expect("campaign runs");
    let dataset = report.into_dataset(0.5);
    for &score in dataset.scores() {
        // With 5 workloads, scores are multiples of 1/5.
        let scaled = score * 5.0;
        assert!((scaled - scaled.round()).abs() < 1e-9, "score {score}");
    }
}

mod hardening {
    use fusa::faultsim::{CampaignConfig, FaultCampaign, FaultList};
    use fusa::logicsim::{BitSim, WorkloadConfig, WorkloadSuite};
    use fusa::netlist::designs::or1200_icfsm;
    use fusa::netlist::harden::{is_tmr_infrastructure, tmr_protect};
    use fusa::netlist::GateId;

    #[test]
    fn hardened_design_is_functionally_identical() {
        let original = or1200_icfsm();
        let protect: Vec<GateId> = (0..20).map(|i| GateId(i as u32)).collect();
        let hardened = tmr_protect(&original, &protect).expect("hardening succeeds");

        let mut sim_a = BitSim::new(&original);
        let mut sim_b = BitSim::new(&hardened);
        let pi = original.primary_inputs().len();
        assert_eq!(pi, hardened.primary_inputs().len());
        for cycle in 0..80u64 {
            let vector: Vec<bool> = (0..pi)
                .map(|i| (cycle.wrapping_mul(0x9E3779B97F4A7C15) >> (i % 60)) & 1 == 1)
                .collect();
            assert_eq!(
                sim_a.step_broadcast(&vector),
                sim_b.step_broadcast(&vector),
                "cycle {cycle}"
            );
        }
    }

    #[test]
    fn single_faults_inside_tmr_triplets_are_masked() {
        let original = or1200_icfsm();
        // Protect the state register bits.
        let protect: Vec<GateId> = original
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| g.name.starts_with("state_reg"))
            .map(|(i, _)| GateId(i as u32))
            .collect();
        assert!(!protect.is_empty());
        let hardened = tmr_protect(&original, &protect).unwrap();

        // Faults on the TMR *copies* (not the voters) must be benign or
        // latent — the majority masks them.
        let copy_gates: Vec<GateId> = hardened
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| g.name.contains("_tmr_") && g.name.starts_with("state_reg"))
            .map(|(i, _)| GateId(i as u32))
            .collect();
        assert_eq!(copy_gates.len(), protect.len() * 3);
        let faults = FaultList::for_gates(&hardened, &copy_gates);
        let workloads = WorkloadSuite::generate(
            &hardened,
            &WorkloadConfig {
                num_workloads: 3,
                vectors_per_workload: 48,
                ..Default::default()
            },
        );
        let report = FaultCampaign::new(CampaignConfig {
            threads: 1,
            ..Default::default()
        })
        .run(&hardened, &faults, &workloads)
        .expect("campaign runs");
        for workload in report.workload_reports() {
            assert_eq!(
                workload.dangerous_count(),
                0,
                "TMR copy faults must be masked in {}",
                workload.workload_name
            );
        }
        // Sanity: infrastructure classifier sees the copies.
        for &g in &copy_gates {
            assert!(is_tmr_infrastructure(&hardened, g));
        }
    }
}

mod uart_behaviour {
    use fusa::logicsim::BitSim;
    use fusa::netlist::designs::uart_ctrl;

    /// Returns the current value of the 4-bit baud counter.
    fn baud_value(sim: &BitSim<'_>, netlist: &fusa::netlist::Netlist) -> u64 {
        let mut value = 0;
        for bit in 0..4 {
            let reg = netlist
                .find_gate(&format!("baud_reg_{bit}"))
                .expect("baud register exists");
            if sim.flop_lanes(reg) & 1 != 0 {
                value |= 1 << bit;
            }
        }
        value
    }

    fn output_bit(netlist: &fusa::netlist::Netlist, outputs: &[u64], port: &str) -> bool {
        let index = netlist
            .primary_outputs()
            .iter()
            .position(|(p, _)| p == port)
            .expect("port exists");
        outputs[index] & 1 != 0
    }

    #[test]
    fn transmit_frames_a_byte_on_the_line() {
        let netlist = uart_ctrl();
        let mut sim = BitSim::new(&netlist);
        let pi: Vec<String> = netlist
            .primary_inputs()
            .iter()
            .map(|&n| netlist.net(n).name.clone())
            .collect();
        let set = |vector: &mut Vec<bool>, name: &str, value: bool| {
            let i = pi.iter().position(|p| p == name).expect("input exists");
            vector[i] = value;
        };
        let set_byte = |vector: &mut Vec<bool>, byte: u8| {
            for bit in 0..8 {
                let i = pi
                    .iter()
                    .position(|p| p == &format!("tx_data[{bit}]"))
                    .unwrap();
                vector[i] = byte & (1 << bit) != 0;
            }
        };

        let mut base = vec![false; pi.len()];
        set(&mut base, "rx", true); // keep receive line idle

        // Reset.
        let mut v = base.clone();
        set(&mut v, "rst", true);
        for _ in 0..2 {
            sim.step_broadcast(&v);
        }

        // Request a transmission of 0xA5.
        let mut v = base.clone();
        set(&mut v, "tx_start", true);
        set_byte(&mut v, 0xA5);
        let outputs = sim.step_broadcast(&v);
        assert!(
            !output_bit(&netlist, &outputs, "tx_busy"),
            "idle before load"
        );

        // Busy must assert and stay through the frame; sample the line
        // once per baud tick (value 15 -> sample next cycle).
        let v = base.clone();
        let mut sampled = Vec::new();
        let mut busy_seen = false;
        for _cycle in 0..400 {
            let at_tick = baud_value(&sim, &netlist) == 15;
            let outputs = sim.step_broadcast(&v);
            let busy = output_bit(&netlist, &outputs, "tx_busy");
            busy_seen |= busy;
            if at_tick && busy {
                sampled.push(output_bit(&netlist, &outputs, "tx"));
            }
            if busy_seen && !busy {
                break;
            }
        }
        assert!(busy_seen, "transmission started");
        // Frame: start(0), data LSB-first (0xA5 = 1010_0101), stop(1).
        assert!(sampled.len() >= 10, "sampled {} line bits", sampled.len());
        assert!(!sampled[0], "start bit low");
        let byte: u8 = (0..8).fold(0, |acc, i| acc | (u8::from(sampled[1 + i]) << i));
        assert_eq!(byte, 0xA5, "data bits {:?}", &sampled[1..9]);
    }

    #[test]
    fn receiver_recovers_a_framed_byte() {
        let netlist = uart_ctrl();
        let mut sim = BitSim::new(&netlist);
        let pi: Vec<String> = netlist
            .primary_inputs()
            .iter()
            .map(|&n| netlist.net(n).name.clone())
            .collect();
        let rx_index = pi.iter().position(|p| p == "rx").unwrap();
        let rst_index = pi.iter().position(|p| p == "rst").unwrap();

        let mut idle = vec![false; pi.len()];
        idle[rx_index] = true;

        let mut v = idle.clone();
        v[rst_index] = true;
        for _ in 0..2 {
            sim.step_broadcast(&v);
        }
        // Settle the synchronizer on the idle line.
        for _ in 0..8 {
            sim.step_broadcast(&idle);
        }

        // Wait for a baud tick so the frame is phase-aligned, then drive
        // start + data (0x3C LSB-first) + stop, 16 cycles per bit.
        loop {
            let at_tick = baud_value(&sim, &netlist) == 15;
            sim.step_broadcast(&idle);
            if at_tick {
                break;
            }
        }
        let byte = 0x3Cu8;
        let mut frame: Vec<bool> = vec![false]; // start
        frame.extend((0..8).map(|i| byte & (1 << i) != 0));
        frame.push(true); // stop
        let mut saw_valid = false;
        let mut recovered = 0u8;
        for &bit in &frame {
            let mut v = idle.clone();
            v[rx_index] = bit;
            for _ in 0..16 {
                let outputs = sim.step_broadcast(&v);
                if output_bit(&netlist, &outputs, "rx_valid") {
                    saw_valid = true;
                    let data_base = netlist
                        .primary_outputs()
                        .iter()
                        .position(|(p, _)| p == "rx_data[0]")
                        .unwrap();
                    for d in 0..8 {
                        if outputs[data_base + d] & 1 != 0 {
                            recovered |= 1 << d;
                        }
                    }
                }
            }
        }
        // Trailing idle lets the last sample and valid flag land.
        for _ in 0..40 {
            let outputs = sim.step_broadcast(&idle);
            if output_bit(&netlist, &outputs, "rx_valid") {
                saw_valid = true;
                let data_base = netlist
                    .primary_outputs()
                    .iter()
                    .position(|(p, _)| p == "rx_data[0]")
                    .unwrap();
                recovered = 0;
                for d in 0..8 {
                    if outputs[data_base + d] & 1 != 0 {
                        recovered |= 1 << d;
                    }
                }
            }
        }
        assert!(saw_valid, "rx_valid pulsed");
        assert_eq!(recovered, byte, "recovered byte");
    }
}

#[test]
fn analytic_and_monte_carlo_probabilities_correlate() {
    use fusa::logicsim::cop::{CopConfig, CopEstimate};
    use fusa::neuro::metrics::pearson;
    for design in paper_designs() {
        let cop = CopEstimate::analyze(&design, &CopConfig::default());
        let mc = SignalStats::estimate(
            &design,
            &SignalStatsConfig {
                cycles: 256,
                warmup: 16,
                ..Default::default()
            },
        );
        let r = pearson(cop.p_one_slice(), mc.p_one_slice());
        assert!(
            r > 0.75,
            "{}: COP and Monte-Carlo disagree (r = {r})",
            design.name()
        );
    }
}
