//! Golden-file test pinning the `fusa report` rendering byte-for-byte.
//!
//! The rendered breakdown is part of the reproduction playbook
//! (EXPERIMENTS.md tells readers what to expect from a manifest), so its
//! format is locked here: any intentional change to the renderer must
//! regenerate `tests/data/golden_report.txt` with
//! `fusa report tests/data/golden_manifest.json`.

use fusa::obs::{render_manifest_report, RunManifest};

const GOLDEN_MANIFEST: &str = include_str!("data/golden_manifest.json");
const GOLDEN_REPORT: &str = include_str!("data/golden_report.txt");

#[test]
fn report_rendering_matches_golden_file() {
    let manifest = RunManifest::parse(GOLDEN_MANIFEST).expect("golden manifest parses");
    assert_eq!(render_manifest_report(&manifest), GOLDEN_REPORT);
}

#[test]
fn golden_manifest_round_trips() {
    let manifest = RunManifest::parse(GOLDEN_MANIFEST).expect("golden manifest parses");
    let reparsed = RunManifest::parse(&manifest.to_json()).expect("serialized form parses");
    assert_eq!(reparsed, manifest);
    // Serialization is a fixed point: render(parse(render(m))) == render(m).
    assert_eq!(reparsed.to_json(), manifest.to_json());
}

#[test]
fn golden_manifest_summary_fields() {
    let manifest = RunManifest::parse(GOLDEN_MANIFEST).expect("golden manifest parses");
    assert_eq!(manifest.design, "sdram_ctrl");
    assert_eq!(manifest.threads, 8);
    assert!((manifest.top_level_stage_seconds() - 2.3).abs() < 1e-12);
    assert!((manifest.stage_coverage() - 0.92).abs() < 1e-12);
}
