//! Golden-file tests pinning the `fusa report` rendering byte-for-byte.
//!
//! The rendered breakdown is part of the reproduction playbook
//! (EXPERIMENTS.md tells readers what to expect from a manifest), so its
//! format is locked here: any intentional change to the renderer must
//! regenerate `tests/data/golden_report.txt` with
//! `fusa report tests/data/golden_manifest.json`.
//!
//! Four manifest generations are pinned: the current v4 schema (shard
//! spec + merge provenance), the v3 generation (durability state:
//! `interrupted` flag + `quarantined` units), the v2 generation (build
//! provenance + histograms, no durability fields) and a legacy v1
//! document, which must keep loading and rendering — v1 has no
//! histograms and records an unknown peak RSS as `0`, rendered as
//! `n/a`.

use fusa::obs::{
    render_manifest_report, RunManifest, MANIFEST_SCHEMA, MANIFEST_SCHEMA_V1, MANIFEST_SCHEMA_V2,
    MANIFEST_SCHEMA_V3,
};

const GOLDEN_MANIFEST: &str = include_str!("data/golden_manifest.json");
const GOLDEN_REPORT: &str = include_str!("data/golden_report.txt");
const GOLDEN_MANIFEST_V1: &str = include_str!("data/golden_manifest_v1.json");
const GOLDEN_REPORT_V1: &str = include_str!("data/golden_report_v1.txt");
const GOLDEN_MANIFEST_V2: &str = include_str!("data/golden_manifest_v2.json");
const GOLDEN_REPORT_V2: &str = include_str!("data/golden_report_v2.txt");
const GOLDEN_MANIFEST_V3: &str = include_str!("data/golden_manifest_v3.json");

#[test]
fn report_rendering_matches_golden_file() {
    let manifest = RunManifest::parse(GOLDEN_MANIFEST).expect("golden manifest parses");
    assert_eq!(render_manifest_report(&manifest), GOLDEN_REPORT);
}

#[test]
fn golden_manifest_round_trips() {
    let manifest = RunManifest::parse(GOLDEN_MANIFEST).expect("golden manifest parses");
    let reparsed = RunManifest::parse(&manifest.to_json()).expect("serialized form parses");
    assert_eq!(reparsed, manifest);
    // Serialization is a fixed point: render(parse(render(m))) == render(m).
    assert_eq!(reparsed.to_json(), manifest.to_json());
    // And the committed fixture IS the serialized form, byte for byte.
    assert_eq!(manifest.to_json(), GOLDEN_MANIFEST);
}

#[test]
fn golden_manifest_summary_fields() {
    let manifest = RunManifest::parse(GOLDEN_MANIFEST).expect("golden manifest parses");
    assert_eq!(manifest.design, "sdram_ctrl");
    assert_eq!(manifest.threads, 8);
    assert!(!manifest.interrupted);
    assert!(manifest.quarantined.is_empty());
    assert!((manifest.top_level_stage_seconds() - 2.3).abs() < 1e-12);
    assert!((manifest.stage_coverage() - 0.92).abs() < 1e-12);
    assert_eq!(manifest.histograms.len(), 3);
    assert_eq!(manifest.build.len(), 4);
    assert!(GOLDEN_MANIFEST.contains(MANIFEST_SCHEMA));
}

#[test]
fn legacy_v1_manifest_still_loads_and_renders() {
    assert!(GOLDEN_MANIFEST_V1.contains(MANIFEST_SCHEMA_V1));
    let manifest = RunManifest::parse(GOLDEN_MANIFEST_V1).expect("v1 manifest parses");
    assert!(manifest.histograms.is_empty());
    assert!(manifest.build.is_empty());
    assert_eq!(manifest.design, "sdram_ctrl");
    assert_eq!(render_manifest_report(&manifest), GOLDEN_REPORT_V1);
    // Rewriting a v1 document upgrades it to the current schema.
    assert!(manifest.to_json().contains(MANIFEST_SCHEMA));
}

#[test]
fn legacy_v2_manifest_still_loads_and_renders() {
    assert!(GOLDEN_MANIFEST_V2.contains(MANIFEST_SCHEMA_V2));
    let manifest = RunManifest::parse(GOLDEN_MANIFEST_V2).expect("v2 manifest parses");
    // Pre-durability manifests read as clean, complete runs...
    assert!(!manifest.interrupted);
    assert!(manifest.quarantined.is_empty());
    // ...and render identically to the upgraded v4 fixture, which holds
    // the same run.
    assert_eq!(render_manifest_report(&manifest), GOLDEN_REPORT_V2);
    // Rewriting upgrades the document to the current schema, and the
    // result is byte-identical to the v4 fixture.
    assert!(manifest.to_json().contains(MANIFEST_SCHEMA));
    assert_eq!(manifest.to_json(), GOLDEN_MANIFEST);
}

#[test]
fn legacy_v3_manifest_still_loads_and_renders() {
    assert!(GOLDEN_MANIFEST_V3.contains(MANIFEST_SCHEMA_V3));
    let manifest = RunManifest::parse(GOLDEN_MANIFEST_V3).expect("v3 manifest parses");
    // Pre-sharding manifests read as unsharded, unmerged runs...
    assert!(manifest.shard.is_none());
    assert!(manifest.merged_from.is_empty());
    // ...and render identically to the upgraded v4 fixture (the shard
    // and merge sections only appear when populated).
    assert_eq!(render_manifest_report(&manifest), GOLDEN_REPORT);
    // Rewriting upgrades the document to the current schema, and the
    // result is byte-identical to the v4 fixture.
    assert_eq!(manifest.to_json(), GOLDEN_MANIFEST);
}
