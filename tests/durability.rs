//! End-to-end durability tests of the `fusa` binary: interruption,
//! checkpoint/resume, quarantine and the `--strict` gate.
//!
//! Interruption is driven through the `FUSA_CAMPAIGN_SIGTERM_AFTER_UNITS`
//! test hook, which raises a *real* SIGTERM at the process after N
//! campaign units — exercising the installed signal handler, the
//! cooperative drain, the checkpoint flush and the partial manifest,
//! exactly as an operator's Ctrl-C would.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fusa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fusa"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fusa_durability_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn manifest_text(run_dir: &Path) -> String {
    std::fs::read_to_string(run_dir.join("manifest.json")).expect("manifest written")
}

fn digest_of(manifest: &str, artifact: &str) -> String {
    let parsed = fusa::obs::RunManifest::parse(manifest).expect("manifest parses");
    parsed
        .digests
        .iter()
        .find(|(name, _)| name == artifact)
        .map(|(_, digest)| digest.clone())
        .unwrap_or_else(|| panic!("no digest for {artifact}"))
}

#[cfg(unix)]
#[test]
fn sigterm_checkpoints_and_resume_reproduces_the_full_run() {
    let dir = temp_dir("resume");
    let full_dir = dir.join("full");
    let partial_dir = dir.join("partial");

    // Reference: one uninterrupted run.
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--quiet-stats",
            "--run-dir",
            full_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let full_manifest = manifest_text(&full_dir);

    // Interrupted run: a real SIGTERM after 3 units.
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--quiet-stats",
            "--run-dir",
            partial_dir.to_str().unwrap(),
        ])
        .env("FUSA_CAMPAIGN_SIGTERM_AFTER_UNITS", "3")
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(130), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("interrupted"), "{stderr}");
    assert!(stderr.contains("--resume"), "{stderr}");
    assert!(
        partial_dir.join("checkpoint.jsonl").exists(),
        "checkpoint flushed on interruption"
    );
    let partial_manifest = manifest_text(&partial_dir);
    assert!(partial_manifest.contains("\"interrupted\": true"));

    // An interrupted-vs-complete comparison must not hard-fail on
    // digests (keep the partial manifest aside: resume overwrites it).
    let partial_copy = dir.join("partial_manifest.json");
    std::fs::copy(partial_dir.join("manifest.json"), &partial_copy).unwrap();
    let output = fusa()
        .args([
            "compare",
            full_dir.to_str().unwrap(),
            partial_copy.to_str().unwrap(),
            "--tolerance-pct",
            "100000",
            "--min-seconds",
            "100000",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    assert!(String::from_utf8_lossy(&output.stdout).contains("digest gate disabled"));

    // Resume completes the remaining units from the checkpoint...
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--quiet-stats",
            "--resume",
            "--run-dir",
            partial_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let resumed_manifest = manifest_text(&partial_dir);
    assert!(resumed_manifest.contains("\"interrupted\": false"));
    assert!(resumed_manifest.contains("campaign.units_from_checkpoint"));

    // ...and the final artifacts are bit-identical to the uninterrupted
    // run: same summary digest, same criticality CSV digest.
    for artifact in ["summary.txt", "criticality.csv"] {
        assert_eq!(
            digest_of(&full_manifest, artifact),
            digest_of(&resumed_manifest, artifact),
            "digest of {artifact} differs after resume"
        );
    }

    // The regression gate agrees.
    let output = fusa()
        .args([
            "compare",
            full_dir.to_str().unwrap(),
            partial_dir.to_str().unwrap(),
            "--tolerance-pct",
            "100000",
            "--min-seconds",
            "100000",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_a_mismatched_config_is_rejected() {
    let dir = temp_dir("mismatch");
    let run_dir = dir.join("run");

    // Checkpoint a completed --fast campaign...
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--quiet-stats",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    assert!(run_dir.join("checkpoint.jsonl").exists());

    // ...then resume with the default (non---fast) workload suite: the
    // checkpoint header no longer matches and the run must refuse.
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--quiet-stats",
            "--resume",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!output.status.success(), "{output:?}");
    assert_ne!(output.status.code(), Some(130));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("checkpoint"), "{stderr}");
    assert!(stderr.contains("does not match"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_units_are_quarantined_and_strict_gates() {
    let dir = temp_dir("quarantine");
    let run_dir = dir.join("run");

    // Unit 2 panics on every attempt: the campaign must complete anyway
    // with exit 0, surfacing the quarantine in summary and manifest.
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--quiet-stats",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .env("FUSA_CAMPAIGN_PANIC_UNITS", "2")
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("quarantined: 1 unit(s)"), "{stdout}");
    let manifest = manifest_text(&run_dir);
    assert!(manifest.contains("\"quarantined\": ["));
    assert!(manifest.contains("injected unit fault"));
    assert!(manifest.contains("campaign.units_quarantined"));

    // `fusa report` renders the quarantine section.
    let output = fusa()
        .args(["report", run_dir.join("manifest.json").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    assert!(String::from_utf8_lossy(&output.stdout).contains("quarantined campaign units"));

    // Same run under --strict: the partial ground truth is a failure.
    let strict_dir = dir.join("strict");
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--quiet-stats",
            "--strict",
            "--run-dir",
            strict_dir.to_str().unwrap(),
        ])
        .env("FUSA_CAMPAIGN_PANIC_UNITS", "2")
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    assert!(String::from_utf8_lossy(&output.stderr).contains("--strict"));
    // The manifest was still written before the strict exit.
    assert!(strict_dir.join("manifest.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_panics_are_retried_to_a_clean_run() {
    let dir = temp_dir("retry");
    let run_dir = dir.join("run");
    // Units 0 and 3 panic once each; retries recover both, so even
    // --strict passes and nothing is quarantined.
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--quiet-stats",
            "--strict",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .env("FUSA_CAMPAIGN_PANIC_ONCE_UNITS", "0,3")
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let manifest = manifest_text(&run_dir);
    assert!(manifest.contains("\"quarantined\": [],"));
    assert!(manifest.contains("campaign.unit_retries"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_retry_budget_is_configurable_from_the_cli() {
    let dir = temp_dir("budget");
    let run_dir = dir.join("run");
    // With --max-unit-retries 0 a single transient panic is enough to
    // quarantine the unit.
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--quiet-stats",
            "--max-unit-retries",
            "0",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .env("FUSA_CAMPAIGN_PANIC_ONCE_UNITS", "1")
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let manifest = manifest_text(&run_dir);
    assert!(manifest.contains("\"attempts\": 1"));
    let _ = std::fs::remove_dir_all(&dir);
}
