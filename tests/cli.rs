//! End-to-end tests of the `fusa` command-line binary.

use std::process::Command;

fn fusa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fusa"))
}

#[test]
fn designs_lists_all_builtins() {
    let output = fusa().arg("designs").output().expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in ["sdram_ctrl", "or1200_if", "or1200_icfsm", "uart_ctrl"] {
        assert!(stdout.contains(name), "missing {name} in {stdout}");
    }
}

#[test]
fn stats_works_on_builtin_and_verilog_file() {
    let output = fusa().args(["stats", "or1200_icfsm"]).output().unwrap();
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("design or1200_icfsm"));

    // Round-trip through a Verilog file on disk.
    let netlist = fusa::netlist::designs::or1200_icfsm();
    let dir = std::env::temp_dir().join("fusa_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("icfsm.v");
    std::fs::write(&path, fusa::netlist::writer::write_verilog(&netlist)).unwrap();
    let output = fusa()
        .args(["stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    assert!(String::from_utf8_lossy(&output.stdout).contains("gates 187"));
}

#[test]
fn analyze_fast_produces_report_and_artifacts() {
    let dir = std::env::temp_dir().join("fusa_cli_analyze");
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("report.txt");
    let csv = dir.join("nodes.csv");
    let model = dir.join("model.txt");
    let run_dir = dir.join("run");
    let output = fusa()
        .args([
            "analyze",
            "or1200_icfsm",
            "--fast",
            "--report",
            report.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
            "--save-model",
            model.to_str().unwrap(),
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("validation accuracy"));
    assert!(stdout.contains("run manifest:"));

    let report_text = std::fs::read_to_string(&report).unwrap();
    assert!(report_text.contains("Fault criticality report"));
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("node,predicted_critical"));
    // The saved model loads back.
    let file = std::fs::File::open(&model).unwrap();
    let restored = fusa::gcn::persist::load_classifier(file).expect("model loads");
    assert_eq!(restored.config().in_features, fusa::graph::FEATURE_COUNT);
}

#[test]
fn lint_passes_builtin_at_default_severity() {
    let output = fusa().args(["lint", "sdram_ctrl"]).output().unwrap();
    assert!(output.status.success(), "{:?}", output);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("lint sdram_ctrl: 11 passes"), "{stdout}");
    assert!(stdout.contains("0 errors"), "{stdout}");
    assert!(stdout.contains("0 warnings"), "{stdout}");
}

#[test]
fn lint_deny_info_fails_with_nonzero_exit() {
    let output = fusa()
        .args(["lint", "sdram_ctrl", "--deny", "info"])
        .output()
        .unwrap();
    assert!(!output.status.success(), "info findings must deny");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("lint failed:"), "{stderr}");
}

#[test]
fn lint_deny_warnings_passes_on_clean_builtins() {
    for design in ["sdram_ctrl", "or1200_if", "or1200_icfsm", "uart_ctrl"] {
        let output = fusa()
            .args(["lint", design, "--deny", "warnings"])
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "{design} not warning-clean: {output:?}"
        );
    }
}

#[test]
fn lint_json_and_csv_render() {
    let json = fusa()
        .args(["lint", "or1200_icfsm", "--json"])
        .output()
        .unwrap();
    assert!(json.status.success());
    let body = String::from_utf8_lossy(&json.stdout);
    assert!(body.trim_start().starts_with('{'), "{body}");
    assert!(body.contains("\"design\": \"or1200_icfsm\""), "{body}");
    assert!(body.contains("\"findings\": ["), "{body}");

    let csv = fusa()
        .args(["lint", "or1200_icfsm", "--csv"])
        .output()
        .unwrap();
    assert!(csv.status.success());
    let body = String::from_utf8_lossy(&csv.stdout);
    assert!(
        body.starts_with("design,pass,code,severity,gate,net,message"),
        "{body}"
    );
}

#[test]
fn lint_rejects_bad_deny_level() {
    let output = fusa()
        .args(["lint", "sdram_ctrl", "--deny", "fatal"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("bad --deny level"));
}

#[test]
fn faults_summarizes_campaign() {
    let dir = std::env::temp_dir().join("fusa_cli_faults");
    let run_dir = dir.join("run");
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("campaign:"));
    assert!(stdout.contains("Algorithm 1:"));
}

#[test]
fn analyze_writes_parseable_manifest_with_stage_coverage() {
    use fusa::obs::RunManifest;

    let dir = std::env::temp_dir().join("fusa_cli_manifest");
    let run_dir = dir.join("run");
    let trace = dir.join("trace.jsonl");
    std::fs::create_dir_all(&dir).unwrap();
    let output = fusa()
        .args([
            "analyze",
            "or1200_icfsm",
            "--fast",
            "--run-dir",
            run_dir.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);

    let manifest_path = run_dir.join("manifest.json");
    let manifest = RunManifest::parse(&std::fs::read_to_string(&manifest_path).unwrap())
        .expect("manifest parses");
    assert_eq!(manifest.design, "or1200_icfsm");
    assert_eq!(manifest.run_id, "analyze-or1200_icfsm");
    assert!(manifest.wall_seconds > 0.0);

    // Acceptance: per-stage wall times sum to within 10% of the total.
    assert!(
        manifest.stage_coverage() >= 0.9,
        "stage coverage {:.3} (top-level {:.3}s of {:.3}s)",
        manifest.stage_coverage(),
        manifest.top_level_stage_seconds(),
        manifest.wall_seconds,
    );
    for name in [
        "graph",
        "features",
        "fault-list",
        "workloads",
        "campaign",
        "train",
    ] {
        assert!(
            manifest.stages.iter().any(|s| s.name == name),
            "stage `{name}` missing from {:?}",
            manifest.stages.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }
    assert!(manifest
        .counters
        .iter()
        .any(|(name, value)| name == "train.epochs" && *value > 0));
    assert!(manifest.seeds.iter().any(|(name, _)| name == "split"));
    assert_eq!(manifest.digests.len(), 3); // report.txt, nodes.csv, lint.csv
    for (_, digest) in &manifest.digests {
        assert!(digest.starts_with("fnv1a64:"), "{digest}");
    }

    // Acceptance: the v2 manifest carries the four pipeline histograms
    // with ordered quantile estimates.
    for name in [
        "campaign.unit_seconds",
        "campaign.unit_gate_evals",
        "train.epoch_seconds",
        "train.loss",
    ] {
        let summary = manifest
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
            .unwrap_or_else(|| panic!("histogram `{name}` missing"));
        assert!(summary.count > 0, "{name} empty");
        assert!(
            summary.p50 <= summary.p90 && summary.p90 <= summary.p99,
            "{name} quantiles out of order"
        );
    }
    // Build provenance is recorded (rustc is always probeable in CI).
    assert!(manifest.build.iter().any(|(key, _)| key == "rustc"));

    // The trace is line-delimited JSON with span and epoch events.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_text.lines().count() > 10);
    let mut kinds = std::collections::BTreeSet::new();
    for line in trace_text.lines() {
        let event = fusa::obs::Json::parse(line).expect("trace line parses");
        kinds.insert(
            event
                .get("kind")
                .and_then(fusa::obs::Json::as_str)
                .expect("event has kind")
                .to_string(),
        );
    }
    assert!(kinds.contains("span"), "{kinds:?}");
    assert!(kinds.contains("epoch"), "{kinds:?}");
    assert!(kinds.contains("campaign"), "{kinds:?}");
}

#[test]
fn same_seed_runs_produce_identical_digests() {
    use fusa::obs::RunManifest;

    let dir = std::env::temp_dir().join("fusa_cli_determinism");
    let manifests: Vec<RunManifest> = ["a", "b"]
        .iter()
        .map(|sub| {
            let run_dir = dir.join(sub);
            let output = fusa()
                .args([
                    "faults",
                    "or1200_icfsm",
                    "--fast",
                    "--quiet-stats",
                    "--run-dir",
                    run_dir.to_str().unwrap(),
                ])
                .output()
                .unwrap();
            assert!(output.status.success(), "{:?}", output);
            RunManifest::parse(&std::fs::read_to_string(run_dir.join("manifest.json")).unwrap())
                .expect("manifest parses")
        })
        .collect();
    assert!(!manifests[0].digests.is_empty());
    assert_eq!(
        manifests[0].digests, manifests[1].digests,
        "same-seed runs must produce identical artifact digests"
    );
    assert_eq!(manifests[0].seeds, manifests[1].seeds);
}

#[test]
fn compare_gates_same_seed_runs_and_detects_regressions() {
    use fusa::obs::{Json, RunManifest};

    // Two same-seed runs: digests identical, wall times within noise.
    let dir = std::env::temp_dir().join("fusa_cli_compare");
    for sub in ["a", "b"] {
        let run_dir = dir.join(sub);
        let output = fusa()
            .args([
                "faults",
                "or1200_icfsm",
                "--fast",
                "--quiet-stats",
                "--run-dir",
                run_dir.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(output.status.success(), "{:?}", output);
    }
    let baseline = dir.join("a");
    let candidate = dir.join("b");

    // Same-seed compare with a generous tolerance exits 0.
    let output = fusa()
        .args([
            "compare",
            baseline.to_str().unwrap(),
            candidate.to_str().unwrap(),
            "--tolerance-pct",
            "200",
            "--min-seconds",
            "0.2",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "{stdout}\n{:?}", output);
    assert!(stdout.contains("result: OK"), "{stdout}");
    assert!(stdout.contains("same-seed yes"), "{stdout}");

    // JSON output parses and reports no regression.
    let output = fusa()
        .args([
            "compare",
            baseline.to_str().unwrap(),
            candidate.to_str().unwrap(),
            "--tolerance-pct",
            "200",
            "--min-seconds",
            "0.2",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    let doc = Json::parse(String::from_utf8_lossy(&output.stdout).trim()).expect("json parses");
    assert_eq!(doc.get("regression"), Some(&Json::Bool(false)));

    // Inject a >10% stage-time regression into a copy of the candidate
    // manifest: compare must exit nonzero and name the stage.
    let manifest_path = candidate.join("manifest.json");
    let mut slowed = RunManifest::parse(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
    for stage in &mut slowed.stages {
        stage.seconds *= 2.0;
    }
    let slowed_dir = dir.join("slowed");
    std::fs::create_dir_all(&slowed_dir).unwrap();
    std::fs::write(slowed_dir.join("manifest.json"), slowed.to_json()).unwrap();
    let output = fusa()
        .args([
            "compare",
            baseline.to_str().unwrap(),
            slowed_dir.to_str().unwrap(),
            "--min-seconds",
            "0.001",
        ])
        .output()
        .unwrap();
    assert!(!output.status.success(), "doubled stage times must gate");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("result: REGRESSION"), "{stdout}");
    assert!(stdout.contains("REGRESSION"), "{stdout}");

    // --append-bench writes a well-formed trajectory entry.
    let bench_file = dir.join("bench.json");
    let _ = std::fs::remove_file(&bench_file);
    let output = fusa()
        .args([
            "compare",
            baseline.to_str().unwrap(),
            candidate.to_str().unwrap(),
            "--tolerance-pct",
            "200",
            "--min-seconds",
            "0.2",
            "--append-bench",
            "--bench-file",
            bench_file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    let bench = Json::parse(&std::fs::read_to_string(&bench_file).unwrap()).unwrap();
    let trajectory = bench
        .get("trajectory")
        .and_then(Json::as_arr)
        .expect("trajectory array");
    assert_eq!(trajectory.len(), 1);
    let entry = &trajectory[0];
    assert_eq!(
        entry.get("design").and_then(Json::as_str),
        Some("or1200_icfsm")
    );
    assert_eq!(entry.get("regression"), Some(&Json::Bool(false)));
    assert!(entry
        .get("candidate_wall_seconds")
        .and_then(Json::as_f64)
        .is_some());
}

#[test]
fn progress_flag_emits_heartbeat_lines() {
    let run_dir = std::env::temp_dir().join("fusa_cli_progress").join("run");
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--quiet-stats",
            "--progress",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("[fusa] campaign:"), "{stderr}");
    assert!(stderr.contains("units"), "{stderr}");
}

#[test]
fn quiet_stats_suppresses_manifest_summary() {
    let run_dir = std::env::temp_dir().join("fusa_cli_quiet").join("run");
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--quiet-stats",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!stdout.contains("run manifest:"), "{stdout}");
    assert!(run_dir.join("manifest.json").exists());
}

#[test]
fn report_renders_a_manifest() {
    use fusa::obs::RunManifest;

    let dir = std::env::temp_dir().join("fusa_cli_report");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("manifest.json");
    let manifest = RunManifest::new("analyze-x", "fusa analyze x", "x");
    std::fs::write(&path, manifest.to_json()).unwrap();

    let output = fusa()
        .args(["report", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("=== fusa run manifest: analyze-x ==="));

    // Bad documents are rejected with a clean error.
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{}").unwrap();
    let output = fusa()
        .args(["report", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("not a run manifest"));
}

#[test]
fn unknown_flag_is_rejected() {
    let output = fusa()
        .args(["analyze", "or1200_icfsm", "--frobnicate"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown flag `--frobnicate`"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");

    // Value-taking flags must have a value.
    let output = fusa()
        .args(["faults", "or1200_icfsm", "--threads"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("needs a value"));
}

#[test]
fn usage_lists_every_command() {
    let output = fusa().output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    for name in [
        "designs", "stats", "lint", "analyze", "faults", "rank", "explain", "seu", "harden",
        "synth", "merge", "report", "compare", "top", "export", "trace",
    ] {
        assert!(stderr.contains(&format!("fusa {name}")), "missing {name}");
    }
    assert!(stderr.contains("--shard i/n"), "{stderr}");
    assert!(stderr.contains("--trace-out PATH"), "{stderr}");
    assert!(stderr.contains("--run-dir DIR"), "{stderr}");
    assert!(stderr.contains("--quiet-stats"), "{stderr}");
    assert!(stderr.contains("--progress"), "{stderr}");
    assert!(stderr.contains("--tolerance-pct"), "{stderr}");
    assert!(stderr.contains("--checkpoint PATH"), "{stderr}");
    assert!(stderr.contains("--resume"), "{stderr}");
    assert!(stderr.contains("--max-unit-retries N"), "{stderr}");
    assert!(stderr.contains("--strict"), "{stderr}");
    assert!(stderr.contains("--no-status"), "{stderr}");
    assert!(stderr.contains("--prometheus"), "{stderr}");
    assert!(stderr.contains("--stale SECS"), "{stderr}");
}

#[test]
fn sharded_campaigns_merge_into_a_digest_identical_run() {
    let dir = std::env::temp_dir().join("fusa_cli_shard_merge");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // One uninterrupted single-process run is the reference.
    let single_dir = dir.join("single");
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--run-dir",
            single_dir.to_str().unwrap(),
            "--quiet-stats",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);

    // Two shards, different thread counts: scheduling must not matter.
    for (index, threads) in [(1, "1"), (2, "2")] {
        let shard_dir = dir.join(format!("s{index}"));
        let output = fusa()
            .args([
                "faults",
                "or1200_icfsm",
                "--fast",
                "--shard",
                &format!("{index}/2"),
                "--threads",
                threads,
                "--run-dir",
                shard_dir.to_str().unwrap(),
                "--quiet-stats",
            ])
            .output()
            .unwrap();
        assert!(output.status.success(), "{:?}", output);
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains(&format!("shard {index}/2:")),
            "summary marks the shard partial: {stdout}"
        );
        let manifest = std::fs::read_to_string(shard_dir.join("manifest.json")).unwrap();
        assert!(
            manifest.contains(&format!("\"shard\": {{\"index\": {index}, \"total\": 2}}")),
            "{manifest}"
        );
    }

    // Merge the shard checkpoints; the merged run must be digest-
    // identical to the single run, so the compare digest gate passes.
    let merged_dir = dir.join("merged");
    let output = fusa()
        .args([
            "merge",
            dir.join("s1/checkpoint.jsonl").to_str().unwrap(),
            dir.join("s2/checkpoint.jsonl").to_str().unwrap(),
            "--fast",
            "--run-dir",
            merged_dir.to_str().unwrap(),
            "--quiet-stats",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("merged 2 checkpoint(s)"), "{stdout}");
    assert!(stdout.contains("Algorithm 1:"), "{stdout}");

    let single_manifest = std::fs::read_to_string(single_dir.join("manifest.json")).unwrap();
    let merged_manifest = std::fs::read_to_string(merged_dir.join("manifest.json")).unwrap();
    let digest = |manifest: &str, name: &str| -> String {
        let needle = format!("\"{name}\": \"");
        let start = manifest.find(&needle).expect(name) + needle.len();
        manifest[start..].split('"').next().unwrap().to_string()
    };
    for name in ["summary.txt", "criticality.csv", "lint.csv"] {
        assert_eq!(
            digest(&single_manifest, name),
            digest(&merged_manifest, name),
            "{name} digest differs between single and merged run"
        );
    }
    assert!(
        merged_manifest.contains("\"merged_from\": ["),
        "{merged_manifest}"
    );

    // `fusa compare` agrees: same-seed digest gate passes on the merge.
    let output = fusa()
        .args([
            "compare",
            single_dir.to_str().unwrap(),
            merged_dir.to_str().unwrap(),
            "--tolerance-pct",
            "10000",
            "--min-seconds",
            "10",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    assert!(String::from_utf8_lossy(&output.stdout).contains("0 mismatched"));

    // A shard partial compared against the full run must not trip the
    // digest gate, and the note says why.
    let output = fusa()
        .args([
            "compare",
            single_dir.to_str().unwrap(),
            dir.join("s1").to_str().unwrap(),
            "--tolerance-pct",
            "10000",
            "--min-seconds",
            "10",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("shard partial (1/2)"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_a_bad_shard_spec_and_missing_coverage() {
    let dir = std::env::temp_dir().join("fusa_cli_merge_errors");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Malformed --shard specs are rejected up front.
    for bad in ["0/3", "4/3", "x/2", "2"] {
        let output = fusa()
            .args(["faults", "or1200_icfsm", "--fast", "--shard", bad])
            .output()
            .unwrap();
        assert!(!output.status.success(), "accepted --shard {bad}");
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("invalid shard spec"),
            "{bad}"
        );
    }

    // Merging an incomplete shard set names the hole and the exact
    // re-run command.
    let shard_dir = dir.join("s1");
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--shard",
            "1/3",
            "--run-dir",
            shard_dir.to_str().unwrap(),
            "--quiet-stats",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    let output = fusa()
        .args([
            "merge",
            shard_dir.join("checkpoint.jsonl").to_str().unwrap(),
            "--fast",
            "--run-dir",
            dir.join("merged").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("missing"), "{stderr}");
    assert!(stderr.contains("--shard 2/3"), "{stderr}");
    assert!(stderr.contains("--shard 3/3"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rank_scores_builtin_against_campaign_ground_truth() {
    let dir = std::env::temp_dir().join("fusa_cli_rank");
    std::fs::create_dir_all(&dir).unwrap();
    let gt = dir.join("gt.csv");
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--csv",
            gt.to_str().unwrap(),
            "--run-dir",
            dir.join("faults").to_str().unwrap(),
            "--quiet-stats",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);

    // Static rank alone (no ground truth) is simulation-free and fast.
    let csv = dir.join("rank.csv");
    let run_dir = dir.join("rank");
    let output = fusa()
        .args([
            "rank",
            "or1200_icfsm",
            "--csv",
            csv.to_str().unwrap(),
            "--ground-truth",
            gt.to_str().unwrap(),
            "--min-rho",
            "0.5",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("static criticality ranking"), "{stdout}");
    assert!(stdout.contains("Spearman rho"), "{stdout}");
    assert!(stdout.contains("combined"), "{stdout}");

    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(
        csv_text.starts_with("gate,combined,controllability"),
        "{csv_text}"
    );
    assert_eq!(csv_text.lines().count(), 188, "187 gates + header");

    let manifest = std::fs::read_to_string(run_dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("rank.rho.combined"), "{manifest}");
    assert!(manifest.contains("rank.rho.observability"), "{manifest}");
    assert!(manifest.contains("rank.csv"), "{manifest}");
    assert!(manifest.contains("rank.weight.testability"), "{manifest}");
}

#[test]
fn rank_min_rho_gate_fails_when_unreachable() {
    let dir = std::env::temp_dir().join("fusa_cli_rank_gate");
    std::fs::create_dir_all(&dir).unwrap();
    let gt = dir.join("gt.csv");
    let output = fusa()
        .args([
            "faults",
            "uart_ctrl",
            "--fast",
            "--csv",
            gt.to_str().unwrap(),
            "--run-dir",
            dir.join("faults").to_str().unwrap(),
            "--quiet-stats",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);

    let output = fusa()
        .args([
            "rank",
            "uart_ctrl",
            "--ground-truth",
            gt.to_str().unwrap(),
            "--min-rho",
            "1.01",
            "--run-dir",
            dir.join("rank").to_str().unwrap(),
            "--quiet-stats",
        ])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("below --min-rho"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = fusa().arg("frobnicate").output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"));
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_design_file_reports_cleanly() {
    let output = fusa()
        .args(["stats", "/nonexistent/path.v"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot read"));
}

/// One `--fast` campaign exercises the whole telemetry surface: the
/// final `status.json` snapshot, `report --json`, `trace` over the
/// `--trace-out` stream, `export --prometheus`, and the `--no-status`
/// opt-out.
#[test]
fn telemetry_surface_over_one_campaign() {
    use fusa::obs::StatusSnapshot;

    let dir = std::env::temp_dir().join("fusa_cli_telemetry");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let run_dir = dir.join("run");
    let trace = dir.join("trace.jsonl");
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--run-dir",
            run_dir.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
            "--quiet-stats",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");

    // The run left a finished, schema-valid status snapshot behind.
    let status = StatusSnapshot::read(&run_dir.join("status.json")).expect("status.json parses");
    assert_eq!(status.phase, "campaign");
    assert_eq!(status.run_id, "faults-or1200_icfsm");
    assert!(status.finished, "final beat published");
    assert_eq!(status.done, status.total, "complete run");
    assert!(status.total > 0);
    assert!(status.work > 0, "campaign reports fault-cycles");
    assert!(status.workers > 0);
    assert!(status.rate > 0.0);
    assert!((0.0..=1.0).contains(&status.busy_fraction));

    // The final heartbeat figures made it into the manifest gauges.
    let manifest_text = std::fs::read_to_string(run_dir.join("manifest.json")).unwrap();
    let manifest = fusa::obs::RunManifest::parse(&manifest_text).unwrap();
    let final_rate = manifest
        .gauges
        .iter()
        .find(|(name, _)| name == "campaign.final_rate")
        .map(|&(_, v)| v)
        .expect("campaign.final_rate gauge recorded");
    assert!(final_rate > 0.0);

    // `report --json` renders the machine-readable report.
    let output = fusa()
        .args([
            "report",
            run_dir.join("manifest.json").to_str().unwrap(),
            "--json",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let report = fusa::obs::Json::parse(&String::from_utf8_lossy(&output.stdout))
        .expect("report --json is JSON");
    assert_eq!(
        report.get("schema").and_then(fusa::obs::Json::as_str),
        Some("fusa-obs/report/v1")
    );
    assert_eq!(
        report.get("run_id").and_then(fusa::obs::Json::as_str),
        Some("faults-or1200_icfsm")
    );
    assert!(report
        .get("gauges")
        .and_then(|g| g.get("campaign.final_rate"))
        .is_some());

    // `trace` aggregates the span stream; the campaign span is there.
    let output = fusa()
        .args(["trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("events by kind"), "{text}");
    assert!(text.contains("span tree"), "{text}");
    assert!(text.contains("campaign"), "{text}");
    let output = fusa()
        .args(["trace", trace.to_str().unwrap(), "--kind", "span", "--json"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let report = fusa::obs::Json::parse(&String::from_utf8_lossy(&output.stdout)).unwrap();
    assert_eq!(
        report.get("schema").and_then(fusa::obs::Json::as_str),
        Some("fusa-obs/trace/v1")
    );
    assert_eq!(
        report
            .get("kinds")
            .and_then(fusa::obs::Json::as_arr)
            .unwrap()
            .len(),
        1,
        "--kind span keeps only spans"
    );

    // `export --prometheus` renders status + manifest metrics.
    let metrics = dir.join("metrics.prom");
    let output = fusa()
        .args([
            "export",
            "--prometheus",
            run_dir.to_str().unwrap(),
            "--out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("# TYPE fusa_run_units_done gauge"), "{text}");
    assert!(text.contains("run=\"faults-or1200_icfsm\""), "{text}");
    assert!(text.contains("fusa_manifest_wall_seconds{"), "{text}");
    assert!(text.contains("fusa_run_finished{"), "{text}");

    // `--no-status` suppresses the snapshot file entirely.
    let quiet_dir = dir.join("no_status");
    let output = fusa()
        .args([
            "faults",
            "or1200_icfsm",
            "--fast",
            "--no-status",
            "--run-dir",
            quiet_dir.to_str().unwrap(),
            "--quiet-stats",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    assert!(!quiet_dir.join("status.json").exists());

    let _ = std::fs::remove_dir_all(&dir);
}

/// Golden test for `fusa top --once --json` over a handcrafted fixture
/// fleet: two live shards of one family (one a straggler), one stale
/// shard, and a finished unsharded run of another design.
#[test]
fn top_once_json_over_fixture_fleet() {
    use fusa::obs::{Json, StatusSnapshot};

    let root = std::env::temp_dir().join("fusa_cli_top_fixture");
    let _ = std::fs::remove_dir_all(&root);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs_f64();
    let base = StatusSnapshot {
        run_id: String::new(),
        design: "demo".into(),
        shard: None,
        pid: 1,
        phase: "campaign".into(),
        unit: "units".into(),
        done: 0,
        total: 32,
        work: 0,
        rate: 50.0,
        eta_seconds: 10.0,
        elapsed_seconds: 4.0,
        quarantined: 0,
        workers: 2,
        busy_fraction: 0.8,
        peak_rss_bytes: None,
        updated_unix: now,
        finished: false,
        degraded: false,
    };
    let fixtures = [
        StatusSnapshot {
            run_id: "faults-demo-shard0of3".into(),
            shard: Some((0, 3)),
            done: 20,
            eta_seconds: 6.0,
            ..base.clone()
        },
        StatusSnapshot {
            run_id: "faults-demo-shard1of3".into(),
            shard: Some((1, 3)),
            done: 4,
            eta_seconds: 28.0, // > 1.5x the live median: straggler
            ..base.clone()
        },
        StatusSnapshot {
            run_id: "faults-demo-shard2of3".into(),
            shard: Some((2, 3)),
            done: 2,
            updated_unix: now - 1_000.0, // stale heartbeat: stalled
            ..base.clone()
        },
        StatusSnapshot {
            run_id: "analyze-other".into(),
            design: "other".into(),
            phase: "train".into(),
            done: 32,
            finished: true,
            ..base.clone()
        },
    ];
    for status in &fixtures {
        let dir = root.join(&status.run_id);
        std::fs::create_dir_all(&dir).unwrap();
        status.write_atomic(&dir.join("status.json")).unwrap();
    }

    let output = fusa()
        .args([
            "top",
            root.to_str().unwrap(),
            "--once",
            "--json",
            "--stale",
            "60",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let json = Json::parse(&String::from_utf8_lossy(&output.stdout)).expect("top --json is JSON");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("fusa-obs/top/v1")
    );
    assert_eq!(json.get("runs_total").and_then(Json::as_u64), Some(4));
    assert_eq!(
        json.get("units_done").and_then(Json::as_u64),
        Some(20 + 4 + 2 + 32)
    );
    assert_eq!(json.get("units_total").and_then(Json::as_u64), Some(128));
    assert_eq!(json.get("live").and_then(Json::as_u64), Some(2));
    assert_eq!(json.get("finished").and_then(Json::as_u64), Some(1));
    assert_eq!(json.get("stalled").and_then(Json::as_u64), Some(1));
    assert_eq!(json.get("stragglers").and_then(Json::as_u64), Some(1));
    // demo campaign shards group into one family, the train run another.
    assert_eq!(json.get("families").and_then(Json::as_u64), Some(2));
    let runs = json.get("runs").and_then(Json::as_arr).unwrap();
    assert_eq!(runs.len(), 4, "rows sorted by run id");
    assert_eq!(
        runs[0].get("run_id").and_then(Json::as_str),
        Some("analyze-other")
    );
    let straggler = runs
        .iter()
        .find(|r| r.get("run_id").and_then(Json::as_str) == Some("faults-demo-shard1of3"))
        .unwrap();
    assert_eq!(straggler.get("straggler"), Some(&Json::Bool(true)));
    let stalled = runs
        .iter()
        .find(|r| r.get("run_id").and_then(Json::as_str) == Some("faults-demo-shard2of3"))
        .unwrap();
    assert_eq!(stalled.get("stalled"), Some(&Json::Bool(true)));

    // The human dashboard renders the same fleet.
    let output = fusa()
        .args(["top", root.to_str().unwrap(), "--once", "--stale", "60"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{output:?}");
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("fleet: 4 run(s)"), "{text}");
    assert!(text.contains("units: 58/128"), "{text}");
    assert!(text.contains("STALLED"), "{text}");
    assert!(text.contains("straggler"), "{text}");

    // And pointing top at nothing fails with a helpful error.
    let empty = root.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let output = fusa()
        .args(["top", empty.to_str().unwrap(), "--once"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("no status.json snapshots"),
        "{output:?}"
    );

    let _ = std::fs::remove_dir_all(&root);
}
