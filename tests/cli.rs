//! End-to-end tests of the `fusa` command-line binary.

use std::process::Command;

fn fusa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fusa"))
}

#[test]
fn designs_lists_all_builtins() {
    let output = fusa().arg("designs").output().expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in ["sdram_ctrl", "or1200_if", "or1200_icfsm", "uart_ctrl"] {
        assert!(stdout.contains(name), "missing {name} in {stdout}");
    }
}

#[test]
fn stats_works_on_builtin_and_verilog_file() {
    let output = fusa().args(["stats", "or1200_icfsm"]).output().unwrap();
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("design or1200_icfsm"));

    // Round-trip through a Verilog file on disk.
    let netlist = fusa::netlist::designs::or1200_icfsm();
    let dir = std::env::temp_dir().join("fusa_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("icfsm.v");
    std::fs::write(&path, fusa::netlist::writer::write_verilog(&netlist)).unwrap();
    let output = fusa()
        .args(["stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    assert!(String::from_utf8_lossy(&output.stdout).contains("gates 187"));
}

#[test]
fn analyze_fast_produces_report_and_artifacts() {
    let dir = std::env::temp_dir().join("fusa_cli_analyze");
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("report.txt");
    let csv = dir.join("nodes.csv");
    let model = dir.join("model.txt");
    let output = fusa()
        .args([
            "analyze",
            "or1200_icfsm",
            "--fast",
            "--report",
            report.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
            "--save-model",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("validation accuracy"));

    let report_text = std::fs::read_to_string(&report).unwrap();
    assert!(report_text.contains("Fault criticality report"));
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("node,predicted_critical"));
    // The saved model loads back.
    let file = std::fs::File::open(&model).unwrap();
    let restored = fusa::gcn::persist::load_classifier(file).expect("model loads");
    assert_eq!(restored.config().in_features, fusa::graph::FEATURE_COUNT);
}

#[test]
fn lint_passes_builtin_at_default_severity() {
    let output = fusa().args(["lint", "sdram_ctrl"]).output().unwrap();
    assert!(output.status.success(), "{:?}", output);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("lint sdram_ctrl: 8 passes"), "{stdout}");
    assert!(stdout.contains("0 errors"), "{stdout}");
    assert!(stdout.contains("0 warnings"), "{stdout}");
}

#[test]
fn lint_deny_info_fails_with_nonzero_exit() {
    let output = fusa()
        .args(["lint", "sdram_ctrl", "--deny", "info"])
        .output()
        .unwrap();
    assert!(!output.status.success(), "info findings must deny");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("lint failed:"), "{stderr}");
}

#[test]
fn lint_deny_warnings_passes_on_clean_builtins() {
    for design in ["sdram_ctrl", "or1200_if", "or1200_icfsm", "uart_ctrl"] {
        let output = fusa()
            .args(["lint", design, "--deny", "warnings"])
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "{design} not warning-clean: {output:?}"
        );
    }
}

#[test]
fn lint_json_and_csv_render() {
    let json = fusa()
        .args(["lint", "or1200_icfsm", "--json"])
        .output()
        .unwrap();
    assert!(json.status.success());
    let body = String::from_utf8_lossy(&json.stdout);
    assert!(body.trim_start().starts_with('{'), "{body}");
    assert!(body.contains("\"design\": \"or1200_icfsm\""), "{body}");
    assert!(body.contains("\"findings\": ["), "{body}");

    let csv = fusa()
        .args(["lint", "or1200_icfsm", "--csv"])
        .output()
        .unwrap();
    assert!(csv.status.success());
    let body = String::from_utf8_lossy(&csv.stdout);
    assert!(
        body.starts_with("design,pass,code,severity,gate,net,message"),
        "{body}"
    );
}

#[test]
fn lint_rejects_bad_deny_level() {
    let output = fusa()
        .args(["lint", "sdram_ctrl", "--deny", "fatal"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("bad --deny level"));
}

#[test]
fn faults_summarizes_campaign() {
    let output = fusa()
        .args(["faults", "or1200_icfsm", "--fast"])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("campaign:"));
    assert!(stdout.contains("Algorithm 1:"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = fusa().arg("frobnicate").output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"));
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_design_file_reports_cleanly() {
    let output = fusa()
        .args(["stats", "/nonexistent/path.v"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot read"));
}
