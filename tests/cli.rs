//! End-to-end tests of the `fusa` command-line binary.

use std::process::Command;

fn fusa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fusa"))
}

#[test]
fn designs_lists_all_builtins() {
    let output = fusa().arg("designs").output().expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in ["sdram_ctrl", "or1200_if", "or1200_icfsm", "uart_ctrl"] {
        assert!(stdout.contains(name), "missing {name} in {stdout}");
    }
}

#[test]
fn stats_works_on_builtin_and_verilog_file() {
    let output = fusa().args(["stats", "or1200_icfsm"]).output().unwrap();
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("design or1200_icfsm"));

    // Round-trip through a Verilog file on disk.
    let netlist = fusa::netlist::designs::or1200_icfsm();
    let dir = std::env::temp_dir().join("fusa_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("icfsm.v");
    std::fs::write(&path, fusa::netlist::writer::write_verilog(&netlist)).unwrap();
    let output = fusa().args(["stats", path.to_str().unwrap()]).output().unwrap();
    assert!(output.status.success(), "{:?}", output);
    assert!(String::from_utf8_lossy(&output.stdout).contains("gates 187"));
}

#[test]
fn analyze_fast_produces_report_and_artifacts() {
    let dir = std::env::temp_dir().join("fusa_cli_analyze");
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("report.txt");
    let csv = dir.join("nodes.csv");
    let model = dir.join("model.txt");
    let output = fusa()
        .args([
            "analyze",
            "or1200_icfsm",
            "--fast",
            "--report",
            report.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
            "--save-model",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{:?}", output);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("validation accuracy"));

    let report_text = std::fs::read_to_string(&report).unwrap();
    assert!(report_text.contains("Fault criticality report"));
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("node,predicted_critical"));
    // The saved model loads back.
    let file = std::fs::File::open(&model).unwrap();
    let restored = fusa::gcn::persist::load_classifier(file).expect("model loads");
    assert_eq!(restored.config().in_features, fusa::graph::FEATURE_COUNT);
}

#[test]
fn faults_summarizes_campaign() {
    let output = fusa()
        .args(["faults", "or1200_icfsm", "--fast"])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("campaign:"));
    assert!(stdout.contains("Algorithm 1:"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = fusa().arg("frobnicate").output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"));
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_design_file_reports_cleanly() {
    let output = fusa()
        .args(["stats", "/nonexistent/path.v"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot read"));
}
