//! Property-based tests over the core data structures and invariants.

use fusa::faultsim::{CampaignConfig, FaultCampaign, FaultList};
use fusa::logicsim::{BitSim, Logic, Simulator, WorkloadConfig, WorkloadSuite};
use fusa::netlist::designs::{random_netlist, RandomNetlistConfig};
use fusa::netlist::{parser::parse_verilog, writer::write_verilog, Levelizer};
use fusa::neuro::metrics::{auc, pearson, spearman, RocCurve};
use fusa::neuro::{CsrMatrix, Matrix};
use proptest::prelude::*;

fn netlist_config() -> impl Strategy<Value = RandomNetlistConfig> {
    (
        2usize..10,
        10usize..120,
        0.0f64..0.4,
        1usize..8,
        any::<u64>(),
    )
        .prop_map(
            |(num_inputs, num_gates, sequential_fraction, num_outputs, seed)| RandomNetlistConfig {
                num_inputs,
                num_gates,
                sequential_fraction,
                num_outputs,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random netlist survives a Verilog write→parse round trip with
    /// identical structure.
    #[test]
    fn verilog_round_trip_preserves_structure(config in netlist_config()) {
        let netlist = random_netlist(&config);
        let text = write_verilog(&netlist);
        let reparsed = parse_verilog(&text).expect("round trip parses");
        prop_assert_eq!(netlist.gate_count(), reparsed.gate_count());
        prop_assert_eq!(netlist.kind_histogram(), reparsed.kind_histogram());
        prop_assert_eq!(
            netlist.primary_inputs().len(),
            reparsed.primary_inputs().len()
        );
    }

    /// The scalar and the bit-parallel simulators compute identical
    /// output traces on random designs and random stimulus.
    #[test]
    fn simulators_agree(config in netlist_config(), seed in any::<u64>()) {
        let netlist = random_netlist(&config);
        let mut scalar = Simulator::new(&netlist);
        let mut parallel = BitSim::new(&netlist);
        let pi = netlist.primary_inputs().len();
        let mut state = seed | 1;
        for _ in 0..12 {
            let vector: Vec<bool> = (0..pi)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    state >> 63 == 1
                })
                .collect();
            let logic: Vec<Logic> = vector.iter().map(|&b| Logic::from_bool(b)).collect();
            let scalar_out = scalar.step(&logic);
            let parallel_out = parallel.step_broadcast(&vector);
            for (s, p) in scalar_out.iter().zip(&parallel_out) {
                prop_assert_eq!(s.to_bool(), Some(p & 1 != 0));
            }
        }
    }

    /// Levelization is a valid topological order: every combinational
    /// gate appears after all its combinational fanin.
    #[test]
    fn levelization_is_topological(config in netlist_config()) {
        let netlist = random_netlist(&config);
        let levelized = Levelizer::levelize(&netlist);
        let mut position = vec![usize::MAX; netlist.gate_count()];
        for (i, gate) in levelized.order().iter().enumerate() {
            position[gate.index()] = i;
        }
        for &gate in levelized.order() {
            for pred in netlist.fanin_of_gate(gate) {
                if !netlist.gate(pred).kind.is_sequential() {
                    prop_assert!(position[pred.index()] < position[gate.index()]);
                }
            }
        }
    }

    /// Sparse×dense multiplication matches the dense reference for any
    /// sparsity pattern.
    #[test]
    fn spmm_matches_dense(
        entries in proptest::collection::vec((0usize..12, 0usize..12, -5.0f64..5.0), 0..40),
        cols in 1usize..6,
    ) {
        let sparse = CsrMatrix::from_triplets(12, 12, &entries);
        let dense_data: Vec<f64> = (0..12 * cols).map(|i| (i as f64 * 0.37).sin()).collect();
        let dense = Matrix::from_vec(12, cols, dense_data);
        let via_sparse = sparse.matmul(&dense);
        let via_dense = sparse.to_dense().matmul(&dense);
        for (a, b) in via_sparse.as_slice().iter().zip(via_dense.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// AUC is invariant under any strictly monotone transform of the
    /// scores.
    #[test]
    fn auc_is_rank_invariant(
        scores in proptest::collection::vec(-10.0f64..10.0, 4..40),
        flips in any::<u64>(),
    ) {
        let labels: Vec<bool> = (0..scores.len()).map(|i| (flips >> (i % 64)) & 1 == 1).collect();
        if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
            return Ok(()); // AUC undefined for single-class data
        }
        let original = auc(&scores, &labels);
        let transformed: Vec<f64> = scores.iter().map(|&s| (s / 3.0).exp()).collect();
        prop_assert!((original - auc(&transformed, &labels)).abs() < 1e-9);
    }

    /// ROC curves are monotone non-decreasing in both coordinates.
    #[test]
    fn roc_is_monotone(
        scores in proptest::collection::vec(0.0f64..1.0, 4..40),
        flips in any::<u64>(),
    ) {
        let labels: Vec<bool> = (0..scores.len()).map(|i| (flips >> (i % 64)) & 1 == 1).collect();
        let roc = RocCurve::compute(&scores, &labels);
        for pair in roc.points.windows(2) {
            prop_assert!(pair[1].false_positive_rate >= pair[0].false_positive_rate - 1e-12);
            prop_assert!(pair[1].true_positive_rate >= pair[0].true_positive_rate - 1e-12);
        }
    }

    /// Pearson and Spearman are symmetric and bounded in [-1, 1].
    #[test]
    fn correlations_are_bounded_and_symmetric(
        x in proptest::collection::vec(-100.0f64..100.0, 3..30),
        shift in -10.0f64..10.0,
    ) {
        let y: Vec<f64> = x.iter().map(|&v| (v * 0.5 + shift).cos()).collect();
        for r in [pearson(&x, &y), spearman(&x, &y)] {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
        prop_assert!((pearson(&x, &y) - pearson(&y, &x)).abs() < 1e-9);
        prop_assert!((spearman(&x, &y) - spearman(&y, &x)).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Raising the Algorithm-1 threshold can only shrink the critical
    /// set (label monotonicity).
    #[test]
    fn criticality_labels_monotone_in_threshold(seed in any::<u64>()) {
        let netlist = random_netlist(&RandomNetlistConfig {
            num_gates: 60,
            num_inputs: 6,
            num_outputs: 4,
            sequential_fraction: 0.15,
            seed,
        });
        let faults = FaultList::all_gate_outputs(&netlist);
        let workloads = WorkloadSuite::generate(
            &netlist,
            &WorkloadConfig {
                num_workloads: 4,
                vectors_per_workload: 24,
                ..Default::default()
            },
        );
        let report = FaultCampaign::new(CampaignConfig {
            threads: 1,
            ..Default::default()
        })
        .run(&netlist, &faults, &workloads)
        .expect("campaign runs");
        let relaxed = report.clone().into_dataset(0.25);
        let strict = report.into_dataset(0.75);
        for (r, s) in relaxed.labels().iter().zip(strict.labels()) {
            prop_assert!(*r || !*s, "strict critical must imply relaxed critical");
        }
        prop_assert!(strict.critical_count() <= relaxed.critical_count());
    }

    /// Workload generation is a pure function of its configuration.
    #[test]
    fn workloads_deterministic(seed in any::<u64>(), n in 1usize..6) {
        let netlist = random_netlist(&RandomNetlistConfig::default());
        let config = WorkloadConfig {
            num_workloads: n,
            vectors_per_workload: 16,
            reset_cycles: 1,
            seed,
        };
        let a = WorkloadSuite::generate(&netlist, &config);
        let b = WorkloadSuite::generate(&netlist, &config);
        for (wa, wb) in a.workloads().iter().zip(b.workloads()) {
            prop_assert_eq!(wa, wb);
        }
    }
}

mod lint_properties {
    use super::*;
    use fusa::faultsim::FaultSite;
    use fusa::lint::{lint_netlist, untestable_stuck_at_sites, LintSeverity};
    use fusa::netlist::{GateKind, NetlistBuilder};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Builder validation already rejects loops and undriven nets,
        /// so lint must never escalate a validated random netlist to
        /// the Error level — errors are reserved for defects the
        /// builder would have refused.
        #[test]
        fn validated_random_netlists_are_error_free(config in netlist_config()) {
            let netlist = random_netlist(&config);
            let report = lint_netlist(&netlist);
            for finding in &report.findings {
                prop_assert!(
                    finding.severity < LintSeverity::Error,
                    "unexpected lint error on validated netlist: {}",
                    finding
                );
            }
            prop_assert!(report.findings_for_pass("comb-loop").is_empty());
        }

        /// A gate whose only transitive drivers are tie cells can never
        /// toggle under any workload; the dead-gate pass must flag every
        /// gate of such an island no matter its shape.
        #[test]
        fn injected_dead_gate_is_always_flagged(
            chain in 1usize..5,
            use_tie1 in any::<bool>(),
            use_buf in any::<bool>(),
        ) {
            let mut b = NetlistBuilder::new("dead_inject");
            let a = b.primary_input("a");
            let c = b.primary_input("b");
            let live = b.gate(GateKind::Xor2, &[a, c]);
            b.primary_output("y", live);
            // Dead island: tie cell feeding a chain of one-input gates.
            let tie = if use_tie1 { GateKind::Tie1 } else { GateKind::Tie0 };
            let kind = if use_buf { GateKind::Buf } else { GateKind::Inv };
            let mut net = b.gate(tie, &[]);
            let mut last = String::new();
            for i in 0..chain {
                last = format!("DEAD{i}");
                net = b.gate_named(&last, kind, &[net]);
            }
            let netlist = b.finish().expect("dead logic still validates");
            let report = lint_netlist(&netlist);
            let dead = report.findings_for_pass("dead-gate");
            prop_assert!(
                dead.iter().any(|f| f.gate.as_deref() == Some(last.as_str())),
                "dead gate {} not flagged:\n{}",
                last,
                report.render_text()
            );
        }

        /// Fault-list sanitization drops exactly the listed output
        /// sites: every excluded site disappears, every other output
        /// fault survives, and order is preserved.
        #[test]
        fn untestable_exclusion_is_exact(config in netlist_config()) {
            let netlist = random_netlist(&config);
            let sites = untestable_stuck_at_sites(&netlist);
            for &(gate, _) in &sites {
                prop_assert!(gate.index() < netlist.gate_count());
            }
            let full = FaultList::all_gate_outputs(&netlist);
            let kept = full.clone().exclude_untestable(&sites);
            let site_set: std::collections::HashSet<_> = sites.iter().copied().collect();
            let mut expected = full.clone();
            expected.retain(|f| {
                !(f.site == FaultSite::Output
                    && site_set.contains(&(f.gate, f.stuck_at.value())))
            });
            prop_assert_eq!(kept.faults(), expected.faults());
            prop_assert_eq!(kept.len(), full.len() - site_set.len());
        }
    }
}

mod fault_equivalence {
    use super::*;
    use fusa::faultsim::{Fault, FaultSite, StuckAt};
    use fusa::netlist::GateKind;

    /// Structural fault collapsing is only sound if the dropped pin
    /// faults really behave identically to the output faults they are
    /// equivalent to. Verify on random netlists by running both and
    /// comparing outcome vectors.
    #[test]
    fn collapsed_pin_faults_match_their_output_equivalents() {
        let netlist = random_netlist(&RandomNetlistConfig {
            num_gates: 60,
            num_inputs: 6,
            num_outputs: 5,
            sequential_fraction: 0.1,
            seed: 4242,
        });
        let workloads = WorkloadSuite::generate(
            &netlist,
            &WorkloadConfig {
                num_workloads: 3,
                vectors_per_workload: 40,
                ..Default::default()
            },
        );
        // Build (pin fault, equivalent output fault) pairs per the
        // collapsing rules.
        let mut pairs: Vec<(Fault, Fault)> = Vec::new();
        for (i, gate) in netlist.gates().iter().enumerate() {
            let g = fusa::netlist::GateId(i as u32);
            for pin in 0..gate.inputs.len() as u8 {
                let equivalent = match gate.kind {
                    GateKind::And2 | GateKind::And3 | GateKind::And4 => {
                        Some((StuckAt::Zero, StuckAt::Zero))
                    }
                    GateKind::Nand2 | GateKind::Nand3 | GateKind::Nand4 => {
                        Some((StuckAt::Zero, StuckAt::One))
                    }
                    GateKind::Or2 | GateKind::Or3 | GateKind::Or4 => {
                        Some((StuckAt::One, StuckAt::One))
                    }
                    GateKind::Nor2 | GateKind::Nor3 | GateKind::Nor4 => {
                        Some((StuckAt::One, StuckAt::Zero))
                    }
                    GateKind::Buf => Some((StuckAt::Zero, StuckAt::Zero)),
                    GateKind::Inv => Some((StuckAt::Zero, StuckAt::One)),
                    _ => None,
                };
                if let Some((pin_polarity, output_polarity)) = equivalent {
                    pairs.push((
                        Fault::at_pin(&netlist, g, pin, pin_polarity),
                        Fault::at_output(&netlist, g, output_polarity),
                    ));
                }
            }
        }
        assert!(!pairs.is_empty(), "random netlist has collapsible gates");

        let faults: FaultList = pairs.iter().flat_map(|(a, b)| [*a, *b]).collect();
        let report = FaultCampaign::new(CampaignConfig {
            threads: 1,
            ..Default::default()
        })
        .run(&netlist, &faults, &workloads)
        .expect("campaign runs");
        for workload in report.workload_reports() {
            for (k, (pin_fault, _)) in pairs.iter().enumerate() {
                let pin_outcome = workload.outcomes[2 * k];
                let output_outcome = workload.outcomes[2 * k + 1];
                assert_eq!(
                    pin_outcome, output_outcome,
                    "{pin_fault} should be equivalent in {}",
                    workload.workload_name
                );
            }
        }
        // Keep the import used even if the pair list logic changes.
        let _ = FaultSite::Output;
    }
}

mod synth_semantics {
    use super::*;
    use fusa::netlist::{Synth, Word};

    /// Simulates a pure-combinational synthesized design for one input
    /// assignment and returns the output word value.
    fn eval_outputs(
        netlist: &fusa::netlist::Netlist,
        inputs: &[(usize, u64, usize)], // (pi offset, value, width)
        out_width: usize,
    ) -> u64 {
        let mut sim = BitSim::new(netlist);
        for &(offset, value, width) in inputs {
            for bit in 0..width {
                sim.set_input_broadcast(offset + bit, value & (1 << bit) != 0);
            }
        }
        sim.settle();
        let outputs = sim.output_lanes();
        let mut result = 0u64;
        for (bit, lanes) in outputs.iter().take(out_width).enumerate() {
            if lanes & 1 != 0 {
                result |= 1 << bit;
            }
        }
        result
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The synthesized ripple-carry adder computes real addition.
        #[test]
        fn synthesized_adder_adds(a in 0u64..256, b in 0u64..256) {
            let width = 8;
            let mut s = Synth::new("add_check");
            let wa = s.input_word("a", width);
            let wb = s.input_word("b", width);
            let zero = s.zero();
            let (sum, carry) = s.add(&wa, &wb, zero);
            s.output_word("s", &sum);
            s.output_bit("carry", carry);
            let netlist = s.finish().expect("valid");
            let got = eval_outputs(&netlist, &[(0, a, width), (width, b, width)], width + 1);
            prop_assert_eq!(got, a + b, "{} + {}", a, b);
        }

        /// The synthesized incrementer matches `+1` with wraparound
        /// overflow bit.
        #[test]
        fn synthesized_incrementer_increments(a in 0u64..64) {
            let width = 6;
            let mut s = Synth::new("inc_check");
            let wa = s.input_word("a", width);
            let (next, overflow) = s.inc(&wa);
            s.output_word("n", &next);
            s.output_bit("ov", overflow);
            let netlist = s.finish().expect("valid");
            let got = eval_outputs(&netlist, &[(0, a, width)], width + 1);
            prop_assert_eq!(got, a + 1, "{} + 1", a);
        }

        /// Word equality comparator agrees with `==`.
        #[test]
        fn synthesized_comparator_compares(a in 0u64..128, b in 0u64..128) {
            let width = 7;
            let mut s = Synth::new("eq_check");
            let wa = s.input_word("a", width);
            let wb = s.input_word("b", width);
            let eq = s.eq_word(&wa, &wb);
            s.output_bit("eq", eq);
            let netlist = s.finish().expect("valid");
            let got = eval_outputs(&netlist, &[(0, a, width), (width, b, width)], 1);
            prop_assert_eq!(got == 1, a == b);
        }

        /// Word mux selects the right side.
        #[test]
        fn synthesized_mux_selects(a in 0u64..32, b in 0u64..32, sel: bool) {
            let width = 5;
            let mut s = Synth::new("mux_check");
            let ws = s.input_bit("s");
            let wa = s.input_word("a", width);
            let wb = s.input_word("b", width);
            let out = s.mux_word(ws, &wa, &wb);
            s.output_word("o", &out);
            let netlist = s.finish().expect("valid");
            let got = eval_outputs(
                &netlist,
                &[(0, u64::from(sel), 1), (1, a, width), (1 + width, b, width)],
                width,
            );
            prop_assert_eq!(got, if sel { b } else { a });
        }

        /// One-hot decode produces exactly the selected line.
        #[test]
        fn synthesized_decoder_is_one_hot(a in 0u64..16) {
            let width = 4;
            let mut s = Synth::new("dec_check");
            let wa = s.input_word("a", width);
            let lines = s.decode(&wa);
            let word = Word(lines);
            s.output_word("y", &word);
            let netlist = s.finish().expect("valid");
            let got = eval_outputs(&netlist, &[(0, a, width)], 16);
            prop_assert_eq!(got, 1u64 << a);
        }

        /// XOR-reduce computes parity.
        #[test]
        fn synthesized_parity_is_parity(a in 0u64..512) {
            let width = 9;
            let mut s = Synth::new("par_check");
            let wa = s.input_word("a", width);
            let parity = s.reduce_xor(wa.bits());
            s.output_bit("p", parity);
            let netlist = s.finish().expect("valid");
            let got = eval_outputs(&netlist, &[(0, a, width)], 1);
            prop_assert_eq!(got == 1, a.count_ones() % 2 == 1);
        }
    }
}
