//! End-to-end integration tests: the paper's headline claims on a real
//! (reduced-cost) run of the full pipeline.

use fusa::baselines::all_baselines;
use fusa::gcn::pipeline::{FusaPipeline, PipelineConfig};
use fusa::gcn::{ExplainerConfig, TrainConfig};
use fusa::netlist::designs::or1200_icfsm;
use fusa::neuro::metrics::Confusion;

fn analysis() -> fusa::gcn::pipeline::FusaAnalysis {
    FusaPipeline::new(PipelineConfig::fast())
        .run(&or1200_icfsm())
        .expect("pipeline runs on or1200_icfsm")
}

#[test]
fn gcn_classifies_critical_nodes_well_above_chance() {
    let analysis = analysis();
    assert!(
        analysis.evaluation.accuracy >= 0.7,
        "accuracy {}",
        analysis.evaluation.accuracy
    );
    assert!(
        analysis.evaluation.auc >= 0.55,
        "auc {}",
        analysis.evaluation.auc
    );
}

#[test]
fn gcn_is_competitive_with_feature_only_baselines() {
    // Figure 3's claim, in soft form robust to the fast config: the GCN
    // must not lose badly to any feature-only model on the same split.
    let analysis = analysis();
    let labels = analysis.labels();
    for mut baseline in all_baselines(7) {
        baseline.fit(&analysis.features, labels, &analysis.split.train);
        let probabilities = baseline.predict_proba(&analysis.features);
        let val_predicted: Vec<bool> = analysis
            .split
            .validation
            .iter()
            .map(|&i| probabilities[i] >= 0.5)
            .collect();
        let val_actual: Vec<bool> = analysis
            .split
            .validation
            .iter()
            .map(|&i| labels[i])
            .collect();
        let baseline_accuracy = Confusion::from_predictions(&val_predicted, &val_actual).accuracy();
        assert!(
            analysis.evaluation.accuracy >= baseline_accuracy - 0.08,
            "{} at {baseline_accuracy} dominates GCN at {}",
            baseline.name(),
            analysis.evaluation.accuracy
        );
    }
}

#[test]
fn regression_scores_conform_with_classification() {
    // §4.2.2: the regressor's thresholded scores agree with the
    // classifier on most validation nodes.
    let analysis = analysis();
    let (_model, predicted) = analysis.train_regressor(&TrainConfig {
        epochs: 100,
        ..Default::default()
    });
    let conformity = analysis.regression_conformity(&predicted);
    assert!(conformity >= 0.7, "conformity {conformity}");
    // The unconstrained regression head may extrapolate slightly outside
    // [0, 1], but must stay finite and centred on the score range.
    assert!(predicted.iter().all(|s| s.is_finite()));
    let mean: f64 = predicted.iter().sum::<f64>() / predicted.len() as f64;
    assert!((0.0..=1.0).contains(&mean), "mean prediction {mean}");
}

#[test]
fn explanations_cover_every_feature_and_respect_locality() {
    let analysis = analysis();
    let explainer = analysis.explainer(ExplainerConfig {
        iterations: 25,
        ..Default::default()
    });
    let node = analysis.split.validation[1];
    let explanation = explainer.explain(node);
    assert_eq!(
        explanation.feature_importance.len(),
        fusa::graph::FEATURE_COUNT
    );
    assert!(explanation
        .feature_mask
        .iter()
        .all(|&m| (0.0..=1.0).contains(&m)));
    // Edges come from the node's computation neighbourhood.
    let hops = analysis.classifier.config().hidden.len() + 1;
    let hood: std::collections::HashSet<usize> = analysis
        .graph
        .k_hop_neighborhood(node, hops)
        .into_iter()
        .collect();
    for &(a, b, _) in &explanation.edge_importance {
        assert!(hood.contains(&a) && hood.contains(&b));
    }
}

#[test]
fn pipeline_is_deterministic() {
    let a = analysis();
    let b = analysis();
    assert_eq!(a.dataset.scores(), b.dataset.scores());
    assert_eq!(a.evaluation.predicted_labels, b.evaluation.predicted_labels);
    assert!((a.evaluation.accuracy - b.evaluation.accuracy).abs() < 1e-12);
}

#[test]
fn trained_model_predictions_align_with_probabilities() {
    let analysis = analysis();
    let predictions = analysis
        .classifier
        .predict(&analysis.adjacency, &analysis.features);
    for (p, &probability) in predictions
        .iter()
        .zip(&analysis.evaluation.critical_probability)
    {
        assert_eq!(*p == 1, probability >= 0.5);
    }
}

#[test]
fn uart_design_works_end_to_end() {
    // The extra (beyond-paper) benchmark also flows through the full
    // pipeline.
    let analysis = FusaPipeline::new(PipelineConfig::fast())
        .run(&fusa::netlist::designs::uart_ctrl())
        .expect("pipeline runs on uart_ctrl");
    assert!(
        analysis.evaluation.accuracy > 0.6,
        "accuracy {}",
        analysis.evaluation.accuracy
    );
    let critical = analysis.dataset.critical_count();
    let total = analysis.dataset.labels().len();
    assert!(critical > 0 && critical < total, "{critical}/{total}");
}

#[test]
fn average_precision_beats_base_rate() {
    // The GCN's ranking should beat random ordering (AP = base rate).
    let analysis = analysis();
    let val_scores: Vec<f64> = analysis
        .split
        .validation
        .iter()
        .map(|&i| analysis.evaluation.critical_probability[i])
        .collect();
    let val_labels: Vec<bool> = analysis
        .split
        .validation
        .iter()
        .map(|&i| analysis.labels()[i])
        .collect();
    let base_rate = val_labels.iter().filter(|&&l| l).count() as f64 / val_labels.len() as f64;
    let ap = fusa::neuro::metrics::average_precision(&val_scores, &val_labels);
    assert!(ap > base_rate, "AP {ap} vs base rate {base_rate}");
}
