//! `fusa` — command-line fault criticality analysis.
//!
//! The usage text is generated from [`COMMANDS`], the same table the
//! argument validator reads, so help and parser cannot drift. Run
//! `fusa` with no arguments to see it.
//!
//! `<design>` is a built-in name (`sdram_ctrl`, `or1200_if`,
//! `or1200_icfsm`, `uart_ctrl`) or a path to a structural-Verilog file.
//!
//! Every pipeline command (`analyze`, `faults`, `explain`, `seu`,
//! `harden`) records a run manifest — per-stage wall times, counters,
//! seeds, peak RSS and output digests — under
//! `results/<command>-<design>/manifest.json` (`--run-dir` overrides).
//! `fusa report <manifest.json>` renders one; `fusa compare` diffs two
//! (digests, stage times, histogram quantiles) and exits nonzero on
//! regression; `--trace-out PATH` streams JSONL trace events while the
//! run executes and `--progress` prints live heartbeat lines.

use fusa::faultsim::{
    DurabilityConfig, FaultCampaign, FaultList, QuarantinedUnit, SeuCampaign, SeuConfig, ShardSpec,
};
use fusa::gcn::pipeline::{FusaPipeline, PipelineConfig, PipelineError};
use fusa::gcn::report::{render_csv_report, render_text_report, ReportOptions};
use fusa::gcn::ExplainerConfig;
use fusa::logicsim::WorkloadSuite;
use fusa::netlist::{designs, parser::parse_verilog, Netlist, NetlistStats};
use fusa::obs::{
    discover_status_files, fnv1a64_hex, render_manifest_report, render_manifest_report_json,
    render_prometheus, set_status_target, FleetDamage, FleetOptions, FleetRun, FleetView,
    MergeSourceRecord, PromRun, QuarantinedUnitRecord, RunManifest, ShardRecord, StatusSnapshot,
    StatusTarget, TraceFilter, TraceReport,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// One flag a command accepts.
struct FlagSpec {
    name: &'static str,
    /// Value placeholder (`None` for boolean flags).
    value: Option<&'static str>,
    help: &'static str,
}

/// One CLI command: the single source of truth for the usage text and
/// the flag validator.
struct CommandSpec {
    name: &'static str,
    /// Positional-argument synopsis, e.g. `<design>`.
    positionals: &'static str,
    /// Number of required positional arguments; the exact count unless
    /// `variadic`, where it becomes the minimum.
    positional_count: usize,
    /// Whether extra positional arguments beyond `positional_count` are
    /// accepted (`fusa merge <checkpoint>...`).
    variadic: bool,
    flags: &'static [FlagSpec],
    /// Whether the shared run options (RUN_FLAGS) also apply.
    run_options: bool,
    help: &'static str,
}

/// Options shared by every pipeline command.
const RUN_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--fast",
        value: None,
        help: "reduced-cost preset (fewer workloads, cycles, epochs)",
    },
    FlagSpec {
        name: "--threads",
        value: Some("N"),
        help: "campaign worker threads (0 = one per CPU)",
    },
    FlagSpec {
        name: "--lanes",
        value: Some("N"),
        help: "fault lanes per simulation pass: 64, 256 or 512 (default 256); `scalar` selects the legacy kernel",
    },
    FlagSpec {
        name: "--no-cone",
        value: None,
        help: "disable cone-restricted fault simulation",
    },
    FlagSpec {
        name: "--no-early-exit",
        value: None,
        help: "disable campaign early exit",
    },
    FlagSpec {
        name: "--trace-out",
        value: Some("PATH"),
        help: "stream JSONL trace events (spans, epochs, campaign) to PATH",
    },
    FlagSpec {
        name: "--run-dir",
        value: Some("DIR"),
        help: "manifest directory (default results/<command>-<design>)",
    },
    FlagSpec {
        name: "--quiet-stats",
        value: None,
        help: "suppress the end-of-run manifest summary",
    },
    FlagSpec {
        name: "--progress",
        value: None,
        help: "live heartbeat lines on stderr (campaign units, train epochs)",
    },
    FlagSpec {
        name: "--checkpoint",
        value: Some("PATH"),
        help: "campaign checkpoint file (default <run-dir>/checkpoint.jsonl)",
    },
    FlagSpec {
        name: "--resume",
        value: None,
        help: "resume a previously interrupted campaign from its checkpoint",
    },
    FlagSpec {
        name: "--max-unit-retries",
        value: Some("N"),
        help: "retries before a panicking campaign unit is quarantined (default 2)",
    },
    FlagSpec {
        name: "--strict",
        value: None,
        help: "exit nonzero when any campaign unit was quarantined",
    },
    FlagSpec {
        name: "--strict-durability",
        value: None,
        help: "exit nonzero when storage writes degraded (results stay printed)",
    },
    FlagSpec {
        name: "--structural-features",
        value: None,
        help: "append SCOAP/centrality node-feature channels to the model input",
    },
    FlagSpec {
        name: "--no-status",
        value: None,
        help: "disable the live <run-dir>/status.json snapshots",
    },
];

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "designs",
        positionals: "",
        positional_count: 0,
        variadic: false,
        flags: &[],
        run_options: false,
        help: "list built-in benchmark designs",
    },
    CommandSpec {
        name: "stats",
        positionals: "<design>",
        positional_count: 1,
        variadic: false,
        flags: &[],
        run_options: false,
        help: "netlist statistics",
    },
    CommandSpec {
        name: "lint",
        positionals: "<design>",
        positional_count: 1,
        variadic: false,
        flags: &[
            FlagSpec {
                name: "--json",
                value: None,
                help: "JSON findings",
            },
            FlagSpec {
                name: "--csv",
                value: None,
                help: "CSV findings",
            },
            FlagSpec {
                name: "--deny",
                value: Some("LEVEL"),
                help: "fail at level (info|warnings|errors)",
            },
        ],
        run_options: false,
        help: "static analysis",
    },
    CommandSpec {
        name: "analyze",
        positionals: "<design>",
        positional_count: 1,
        variadic: false,
        flags: &[
            FlagSpec {
                name: "--report",
                value: Some("FILE"),
                help: "write the text report",
            },
            FlagSpec {
                name: "--csv",
                value: Some("FILE"),
                help: "write the per-node CSV",
            },
            FlagSpec {
                name: "--save-model",
                value: Some("FILE"),
                help: "save the trained classifier",
            },
            FlagSpec {
                name: "--shard",
                value: Some("i/n"),
                help: "run shard i of an n-way campaign partition (see `fusa merge`)",
            },
        ],
        run_options: true,
        help: "full pipeline: campaign, GCN training, report",
    },
    CommandSpec {
        name: "faults",
        positionals: "<design>",
        positional_count: 1,
        variadic: false,
        flags: &[
            FlagSpec {
                name: "--csv",
                value: Some("FILE"),
                help: "write the criticality CSV",
            },
            FlagSpec {
                name: "--shard",
                value: Some("i/n"),
                help: "run shard i of an n-way campaign partition (see `fusa merge`)",
            },
        ],
        run_options: true,
        help: "fault campaign + Algorithm 1 only",
    },
    CommandSpec {
        name: "rank",
        positionals: "<design>",
        positional_count: 1,
        variadic: false,
        flags: &[
            FlagSpec {
                name: "--csv",
                value: Some("FILE"),
                help: "write the per-gate static-rank CSV",
            },
            FlagSpec {
                name: "--ground-truth",
                value: Some("FILE"),
                help: "criticality CSV from `fusa faults --csv` to score against",
            },
            FlagSpec {
                name: "--min-rho",
                value: Some("RHO"),
                help: "fail when combined Spearman rho falls below RHO",
            },
            FlagSpec {
                name: "--top",
                value: Some("N"),
                help: "gates to print (default 10)",
            },
            FlagSpec {
                name: "--run-dir",
                value: Some("DIR"),
                help: "manifest directory (default results/rank-<design>)",
            },
            FlagSpec {
                name: "--quiet-stats",
                value: None,
                help: "suppress the end-of-run manifest summary",
            },
        ],
        run_options: false,
        help: "simulation-free structural criticality ranking",
    },
    CommandSpec {
        name: "explain",
        positionals: "<design> <gate-name>",
        positional_count: 2,
        variadic: false,
        flags: &[],
        run_options: true,
        help: "why is this node critical?",
    },
    CommandSpec {
        name: "seu",
        positionals: "<design>",
        positional_count: 1,
        variadic: false,
        flags: &[],
        run_options: true,
        help: "transient bit-flip vulnerability",
    },
    CommandSpec {
        name: "harden",
        positionals: "<design>",
        positional_count: 1,
        variadic: false,
        flags: &[
            FlagSpec {
                name: "--budget",
                value: Some("FRACTION"),
                help: "fraction of gates to protect (default 0.1)",
            },
            FlagSpec {
                name: "--out",
                value: Some("FILE.v"),
                help: "write the hardened netlist",
            },
        ],
        run_options: true,
        help: "TMR-protect the most critical gates",
    },
    CommandSpec {
        name: "synth",
        positionals: "<size>",
        positional_count: 1,
        variadic: false,
        flags: &[
            FlagSpec {
                name: "--seed",
                value: Some("N"),
                help: "generator seed (default 1)",
            },
            FlagSpec {
                name: "--out",
                value: Some("FILE.v"),
                help: "write the netlist (default synth_<size>.v)",
            },
        ],
        run_options: false,
        help: "generate a synthetic benchmark netlist (10k | 30k | 100k gates)",
    },
    CommandSpec {
        name: "merge",
        positionals: "<checkpoint>...",
        positional_count: 1,
        variadic: true,
        flags: &[
            FlagSpec {
                name: "--out",
                value: Some("FILE"),
                help: "merged checkpoint path (default <run-dir>/checkpoint.jsonl)",
            },
            FlagSpec {
                name: "--design",
                value: Some("NAME|FILE"),
                help: "design override (default: the design named in the checkpoint header)",
            },
            FlagSpec {
                name: "--fast",
                value: None,
                help: "match shards that ran with --fast (same workload preset)",
            },
            FlagSpec {
                name: "--csv",
                value: Some("FILE"),
                help: "write the merged criticality CSV",
            },
            FlagSpec {
                name: "--run-dir",
                value: Some("DIR"),
                help: "manifest directory (default results/merge-<design>)",
            },
            FlagSpec {
                name: "--quiet-stats",
                value: None,
                help: "suppress the end-of-run manifest summary",
            },
        ],
        run_options: false,
        help: "union shard checkpoints into one full-campaign report",
    },
    CommandSpec {
        name: "fsck",
        positionals: "<run-dir|checkpoint>",
        positional_count: 1,
        variadic: false,
        flags: &[FlagSpec {
            name: "--repair",
            value: None,
            help: "rewrite a damaged checkpoint keeping every intact unit record",
        }],
        run_options: false,
        help: "validate (and repair) campaign storage: checkpoint, manifest, status",
    },
    CommandSpec {
        name: "report",
        positionals: "<manifest.json>",
        positional_count: 1,
        variadic: false,
        flags: &[FlagSpec {
            name: "--json",
            value: None,
            help: "machine-readable report (fusa-obs/report/v1)",
        }],
        run_options: false,
        help: "render a run manifest",
    },
    CommandSpec {
        name: "top",
        positionals: "<results-root|run-dir>...",
        positional_count: 1,
        variadic: true,
        flags: &[
            FlagSpec {
                name: "--once",
                value: None,
                help: "render one frame and exit (no refresh loop)",
            },
            FlagSpec {
                name: "--json",
                value: None,
                help: "one fleet snapshot as JSON (implies --once)",
            },
            FlagSpec {
                name: "--interval",
                value: Some("SECS"),
                help: "refresh period (default 2)",
            },
            FlagSpec {
                name: "--stale",
                value: Some("SECS"),
                help: "flag live runs with older heartbeats as stalled (default 30)",
            },
        ],
        run_options: false,
        help: "live fleet dashboard over status.json snapshots",
    },
    CommandSpec {
        name: "export",
        positionals: "<run-dir>...",
        positional_count: 1,
        variadic: true,
        flags: &[
            FlagSpec {
                name: "--prometheus",
                value: None,
                help: "Prometheus textfile-exporter format (the only format so far)",
            },
            FlagSpec {
                name: "--out",
                value: Some("FILE"),
                help: "write the rendered metrics (default stdout)",
            },
        ],
        run_options: false,
        help: "export run status + manifest metrics for scrapers",
    },
    CommandSpec {
        name: "trace",
        positionals: "<trace.jsonl>",
        positional_count: 1,
        variadic: false,
        flags: &[
            FlagSpec {
                name: "--kind",
                value: Some("KIND"),
                help: "keep only events of this kind (span, progress, epoch, ...)",
            },
            FlagSpec {
                name: "--name",
                value: Some("SUBSTR"),
                help: "keep only events whose name contains SUBSTR",
            },
            FlagSpec {
                name: "--json",
                value: None,
                help: "machine-readable report (fusa-obs/trace/v1)",
            },
        ],
        run_options: false,
        help: "query a --trace-out JSONL stream (span tree, self time, quantiles)",
    },
    CommandSpec {
        name: "compare",
        positionals: "<baseline> <candidate>",
        positional_count: 2,
        variadic: false,
        flags: &[
            FlagSpec {
                name: "--tolerance-pct",
                value: Some("P"),
                help: "allowed slowdown before a regression (default 10)",
            },
            FlagSpec {
                name: "--min-seconds",
                value: Some("S"),
                help: "stages below this baseline never gate (default 0.05)",
            },
            FlagSpec {
                name: "--json",
                value: None,
                help: "JSON delta table",
            },
            FlagSpec {
                name: "--append-bench",
                value: None,
                help: "append a trajectory entry to the bench file",
            },
            FlagSpec {
                name: "--bench-file",
                value: Some("FILE"),
                help: "bench file for --append-bench (default BENCH_campaign.json)",
            },
        ],
        run_options: false,
        help: "diff two run manifests; exit 1 on regression",
    },
];

/// Renders the usage text from [`COMMANDS`].
fn usage() -> String {
    let mut lines: Vec<(String, &str)> = Vec::new();
    for command in COMMANDS {
        let mut synopsis = format!("fusa {}", command.name);
        if !command.positionals.is_empty() {
            let _ = write!(synopsis, " {}", command.positionals);
        }
        for flag in command.flags {
            match flag.value {
                Some(value) => {
                    let _ = write!(synopsis, " [{} {value}]", flag.name);
                }
                None => {
                    let _ = write!(synopsis, " [{}]", flag.name);
                }
            }
        }
        if command.run_options {
            synopsis.push_str(" [run options]");
        }
        lines.push((synopsis, command.help));
    }
    let width = lines.iter().map(|(s, _)| s.len()).max().unwrap_or(0);

    let mut out = String::from("usage:\n");
    for (synopsis, help) in &lines {
        let _ = writeln!(out, "  {synopsis:<width$}  {help}");
    }
    out.push_str("\nrun options (analyze, faults, explain, seu, harden):\n");
    let flag_width = RUN_FLAGS
        .iter()
        .map(|f| f.name.len() + f.value.map_or(0, |v| v.len() + 1))
        .max()
        .unwrap_or(0);
    for flag in RUN_FLAGS {
        let name = match flag.value {
            Some(value) => format!("{} {value}", flag.name),
            None => flag.name.to_string(),
        };
        let _ = writeln!(out, "  {name:<flag_width$}  {}", flag.help);
    }
    out.push_str(
        "\n<design>: sdram_ctrl | or1200_if | or1200_icfsm | uart_ctrl | path/to/netlist.v",
    );
    out
}

/// Validates `args` against the command's spec: every `--flag` must be
/// declared (here or in the shared run options), value-taking flags must
/// have a value, and the positional count must match.
fn validate_args(spec: &CommandSpec, args: &[String]) -> Result<(), String> {
    let find_flag = |name: &str| -> Option<&FlagSpec> {
        spec.flags.iter().find(|f| f.name == name).or_else(|| {
            spec.run_options
                .then(|| RUN_FLAGS.iter().find(|f| f.name == name))
                .flatten()
        })
    };
    let mut positionals = 0usize;
    let mut i = 1; // args[0] is the command itself
    while i < args.len() {
        let arg = &args[i];
        if let Some(stripped) = arg.strip_prefix("--") {
            let flag = find_flag(arg)
                .ok_or_else(|| format!("unknown flag `--{stripped}` for `fusa {}`", spec.name))?;
            if flag.value.is_some() {
                i += 1;
                if i >= args.len() {
                    return Err(format!("flag `{}` needs a value", flag.name));
                }
            }
        } else {
            positionals += 1;
        }
        i += 1;
    }
    if spec.variadic {
        if positionals < spec.positional_count {
            return Err(format!(
                "`fusa {}` takes at least {} positional argument(s) ({}), got {}",
                spec.name, spec.positional_count, spec.positionals, positionals
            ));
        }
    } else if positionals != spec.positional_count {
        return Err(format!(
            "`fusa {}` takes {} positional argument(s) ({}), got {}",
            spec.name, spec.positional_count, spec.positionals, positionals
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    let spec = COMMANDS
        .iter()
        .find(|c| c.name == command.as_str())
        .ok_or_else(|| format!("unknown command `{command}`"))?;
    validate_args(spec, args)?;
    match spec.name {
        "designs" => {
            for design in designs::all_designs() {
                println!("{design}");
            }
            Ok(())
        }
        "stats" => {
            let netlist = load_design(args.get(1).ok_or("missing design")?)?;
            println!("{}", NetlistStats::of(&netlist));
            Ok(())
        }
        "lint" => cmd_lint(args),
        "analyze" => cmd_analyze(args),
        "faults" => cmd_faults(args),
        "rank" => cmd_rank(args),
        "explain" => cmd_explain(args),
        "seu" => cmd_seu(args),
        "harden" => cmd_harden(args),
        "synth" => cmd_synth(args),
        "merge" => cmd_merge(args),
        "fsck" => cmd_fsck(args),
        "report" => cmd_report(args),
        "compare" => cmd_compare(args),
        "top" => cmd_top(args),
        "export" => cmd_export(args),
        "trace" => cmd_trace(args),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load_design(name: &str) -> Result<Netlist, String> {
    match name {
        "sdram_ctrl" => Ok(designs::sdram_ctrl()),
        "or1200_if" => Ok(designs::or1200_if()),
        "or1200_icfsm" => Ok(designs::or1200_icfsm()),
        "uart_ctrl" => Ok(designs::uart_ctrl()),
        path => {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            parse_verilog(&source).map_err(|e| format!("cannot parse `{path}`: {e}"))
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Positional arguments of a validated command line, in order: walks
/// `args` skipping each value-taking flag's value, mirroring
/// [`validate_args`].
fn positional_args<'a>(spec: &CommandSpec, args: &'a [String]) -> Vec<&'a str> {
    let takes_value = |name: &str| -> bool {
        spec.flags
            .iter()
            .chain(if spec.run_options { RUN_FLAGS } else { &[] })
            .any(|f| f.name == name && f.value.is_some())
    };
    let mut out = Vec::new();
    let mut i = 1; // args[0] is the command itself
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with("--") {
            if takes_value(arg) {
                i += 1;
            }
        } else {
            out.push(arg.as_str());
        }
        i += 1;
    }
    out
}

fn pipeline_config(args: &[String]) -> Result<PipelineConfig, String> {
    let mut config = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::default()
    };
    // Campaign accelerations are bit-identical to the naive path; these
    // knobs exist for benchmarking and cross-checking.
    if args.iter().any(|a| a == "--no-cone") {
        config.campaign.restrict_to_cone = false;
    }
    if args.iter().any(|a| a == "--no-early-exit") {
        config.campaign.early_exit = false;
    }
    if let Some(threads) = flag_value(args, "--threads").and_then(|t| t.parse().ok()) {
        config.campaign.threads = threads;
    }
    if let Some(lanes) = flag_value(args, "--lanes") {
        config.campaign.lane_words = match lanes {
            "scalar" => 0,
            "64" => 1,
            "256" => 4,
            "512" => 8,
            other => {
                return Err(format!(
                    "bad --lanes value `{other}`: use 64, 256, 512 or scalar"
                ))
            }
        };
    }
    if args.iter().any(|a| a == "--structural-features") {
        config.structural_features = true;
    }
    Ok(config)
}

/// One observed CLI run: resets the global recorder, optionally attaches
/// the `--trace-out` sink, and on [`ObsSession::finish`] assembles and
/// writes `<run-dir>/manifest.json`.
struct ObsSession {
    run_id: String,
    command_line: String,
    run_dir: PathBuf,
    quiet: bool,
    started: Instant,
    /// Set when the campaign drained early on SIGINT/SIGTERM; recorded
    /// in the manifest so `fusa report`/`compare` can tell a partial run
    /// from a complete one.
    interrupted: bool,
    /// Units the campaign quarantined after repeated panics.
    quarantined: Vec<QuarantinedUnitRecord>,
    /// The `--shard i/n` spec when this run covers one shard of a
    /// partitioned campaign; recorded in the manifest so `fusa compare`
    /// treats the run as a partial.
    shard: Option<ShardSpec>,
    /// Shard checkpoints unioned by `fusa merge`, recorded in the
    /// manifest as provenance.
    merge_sources: Vec<MergeSourceRecord>,
}

impl ObsSession {
    fn begin(command: &str, design_arg: &str, args: &[String]) -> Result<ObsSession, String> {
        let obs = fusa::obs::global();
        obs.reset();
        fusa::obs::reset_shutdown();
        fusa::obs::reset_degraded();
        // Storage chaos hooks (FUSA_IO_FAIL_*), mirroring the
        // FUSA_CAMPAIGN_* campaign hooks: no-ops unless the environment
        // schedules a failure.
        fusa::obs::arm_io_faults_from_env();
        fusa::obs::install_signal_handlers();
        fusa::obs::set_progress_stderr(args.iter().any(|a| a == "--progress"));
        if let Some(path) = flag_value(args, "--trace-out") {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?;
            obs.attach_sink(Box::new(std::io::BufWriter::new(file)));
        }
        let shard = match flag_value(args, "--shard") {
            Some(spec) => Some(ShardSpec::parse(spec)?),
            None => None,
        };
        // Design paths become slugs: `designs/foo.v` -> `foo`.
        let design_slug: String = std::path::Path::new(design_arg)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(design_arg)
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        // Shards get distinct run ids so N parallel shard processes
        // never race on one run directory.
        let run_id = match shard {
            Some(shard) => format!(
                "{command}-{design_slug}-shard{}of{}",
                shard.index, shard.total
            ),
            None => format!("{command}-{design_slug}"),
        };
        let run_dir = match flag_value(args, "--run-dir") {
            Some(dir) => PathBuf::from(dir),
            None => PathBuf::from("results").join(&run_id),
        };
        // Created up front so the default checkpoint path is writable
        // while the campaign runs. Failure degrades to a warning: an
        // unwritable results directory must not stop the analysis.
        if let Err(error) = std::fs::create_dir_all(&run_dir) {
            eprintln!(
                "fusa: cannot create run directory `{}` ({error}); manifest and checkpoint disabled",
                run_dir.display()
            );
        }
        // Arm live status.json snapshots for this run's progress phases
        // (campaign/train/lint heartbeats); `fusa top` watches these.
        if args.iter().any(|a| a == "--no-status") {
            set_status_target(None);
        } else {
            set_status_target(Some(StatusTarget {
                path: run_dir.join("status.json"),
                run_id: run_id.clone(),
                design: design_slug.clone(),
                shard: shard.map(|s| (s.index as u64, s.total as u64)),
            }));
        }
        Ok(ObsSession {
            run_id,
            command_line: format!("fusa {}", args.join(" ")),
            run_dir,
            quiet: args.iter().any(|a| a == "--quiet-stats"),
            started: Instant::now(),
            interrupted: false,
            quarantined: Vec::new(),
            shard,
            merge_sources: Vec::new(),
        })
    }

    /// Campaign durability options for this run: checkpoint under the
    /// run directory unless `--checkpoint` overrides, cooperative
    /// interruption through the process signal flag.
    fn durability(&self, args: &[String]) -> Result<DurabilityConfig, String> {
        let checkpoint = match flag_value(args, "--checkpoint") {
            Some(path) => PathBuf::from(path),
            None => self.run_dir.join("checkpoint.jsonl"),
        };
        let max_unit_retries = match flag_value(args, "--max-unit-retries") {
            Some(value) => value
                .parse()
                .map_err(|_| format!("bad --max-unit-retries value `{value}`"))?,
            None => DurabilityConfig::default().max_unit_retries,
        };
        Ok(DurabilityConfig {
            checkpoint: Some(checkpoint),
            resume: args.iter().any(|a| a == "--resume"),
            max_unit_retries,
            interrupt: Some(fusa::obs::shutdown_flag()),
            ..DurabilityConfig::default()
        })
    }

    /// Notes quarantined campaign units for the manifest and, under
    /// `--strict`, for the exit status.
    fn note_quarantined(&mut self, quarantined: &[QuarantinedUnit]) {
        self.quarantined = quarantined
            .iter()
            .map(|q| QuarantinedUnitRecord {
                unit: q.unit as u64,
                workload: q.workload.to_string(),
                chunk: q.chunk as u64,
                attempts: u64::from(q.attempts),
                panic: q.panic_message.clone(),
            })
            .collect();
    }

    /// Prints the interruption notice and the exact invocation that
    /// resumes this run, then exits with the conventional SIGINT status.
    fn exit_interrupted(self, design: &str, config: ConfigEntries, seeds: SeedEntries) -> ! {
        let resume = if self
            .command_line
            .split_whitespace()
            .any(|a| a == "--resume")
        {
            self.command_line.clone()
        } else {
            format!("{} --resume", self.command_line)
        };
        let mut session = self;
        session.interrupted = true;
        if let Err(error) = session.finish(design, config, seeds, vec![]) {
            eprintln!("fusa: {error}");
        }
        eprintln!("fusa: interrupted — partial results checkpointed; resume with:");
        eprintln!("  {resume}");
        std::process::exit(130);
    }

    /// Writes the manifest and (unless `--quiet-stats`) a one-screen
    /// summary. `design` is the parsed module name, not the CLI slug.
    fn finish(
        self,
        design: &str,
        config: Vec<(String, String)>,
        seeds: Vec<(String, u64)>,
        digests: Vec<(String, String)>,
    ) -> Result<(), String> {
        let obs = fusa::obs::global();
        // Disarm status snapshots: every progress phase has emitted its
        // final (finished) beat by now.
        set_status_target(None);
        obs.detach_sink();
        let snapshot = obs.snapshot();
        let mut manifest = RunManifest::new(&self.run_id, &self.command_line, design);
        manifest.wall_seconds = self.started.elapsed().as_secs_f64();
        manifest.absorb_snapshot(&snapshot);
        manifest.threads = manifest
            .gauges
            .iter()
            .find(|(name, _)| name == "campaign.threads")
            .map(|&(_, v)| v as usize)
            .unwrap_or(0);
        manifest.build = build_provenance();
        manifest.config = config;
        manifest.seeds = seeds;
        manifest.digests = digests;
        manifest.interrupted = self.interrupted;
        manifest.degraded = fusa::obs::durability_degraded();
        manifest.quarantined = self.quarantined.clone();
        manifest.shard = self.shard.map(|s| ShardRecord {
            index: s.index as u64,
            total: s.total as u64,
        });
        manifest.merged_from = self.merge_sources.clone();

        // Manifest I/O failures (disk full, read-only results dir) must
        // not turn a finished analysis into a nonzero exit: warn and
        // keep the run's stdout results.
        let path = self.run_dir.join("manifest.json");
        let written = std::fs::create_dir_all(&self.run_dir).and_then(|()| {
            fusa::obs::write_file_with_faults("manifest", &path, manifest.to_json().as_bytes())
        });
        if let Err(error) = written {
            let reason = format!("manifest write to `{}` failed: {error}", path.display());
            fusa::obs::mark_degraded(&reason);
            eprintln!("fusa: {reason}; continuing without it");
            return Ok(());
        }
        if !self.quiet {
            println!(
                "\nrun manifest: {} (wall {:.2}s, stages cover {:.0}%; `fusa report {}` for the breakdown)",
                path.display(),
                manifest.wall_seconds,
                manifest.stage_coverage() * 100.0,
                path.display(),
            );
        }
        Ok(())
    }
}

/// Build/toolchain provenance captured by `build.rs`, in sorted key
/// order. Annotates cross-build `fusa compare` runs; digests never
/// depend on these values.
fn build_provenance() -> Vec<(String, String)> {
    [
        ("git_commit", env!("FUSA_GIT_COMMIT")),
        ("opt_level", env!("FUSA_OPT_LEVEL")),
        ("rustc", env!("FUSA_RUSTC_VERSION")),
        ("target", env!("FUSA_TARGET")),
    ]
    .iter()
    .filter(|(_, value)| !value.is_empty())
    .map(|(key, value)| (key.to_string(), value.to_string()))
    .collect()
}

/// Manifest `config` entries: flattened key/value strings.
type ConfigEntries = Vec<(String, String)>;
/// Manifest `seeds` entries: named RNG seeds.
type SeedEntries = Vec<(String, u64)>;

/// Flattens the pipeline configuration into manifest `config` and
/// `seeds` key/value pairs.
fn manifest_config(config: &PipelineConfig) -> (ConfigEntries, SeedEntries) {
    let kv = vec![
        (
            "workloads.num_workloads".to_string(),
            config.workloads.num_workloads.to_string(),
        ),
        (
            "workloads.vectors_per_workload".to_string(),
            config.workloads.vectors_per_workload.to_string(),
        ),
        (
            "signal_stats.cycles".to_string(),
            config.signal_stats.cycles.to_string(),
        ),
        (
            "campaign.min_divergence_fraction".to_string(),
            config.campaign.min_divergence_fraction.to_string(),
        ),
        (
            "campaign.restrict_to_cone".to_string(),
            config.campaign.restrict_to_cone.to_string(),
        ),
        (
            "campaign.early_exit".to_string(),
            config.campaign.early_exit.to_string(),
        ),
        (
            "campaign.lane_words".to_string(),
            config.campaign.lane_words.to_string(),
        ),
        // The checkpoint unit is always a 64-fault chunk, whatever the
        // lane width packs into one pass.
        ("campaign.chunk_faults".to_string(), "64".to_string()),
        (
            "campaign.faults_per_pass".to_string(),
            (64 * config.campaign.lane_words.max(1)).to_string(),
        ),
        (
            "criticality_threshold".to_string(),
            config.criticality_threshold.to_string(),
        ),
        (
            "train_fraction".to_string(),
            config.train_fraction.to_string(),
        ),
        (
            "exclude_untestable_faults".to_string(),
            config.exclude_untestable_faults.to_string(),
        ),
        (
            "structural_features".to_string(),
            config.structural_features.to_string(),
        ),
        (
            "model.hidden".to_string(),
            format!("{:?}", config.model.hidden),
        ),
        (
            "model.dropout".to_string(),
            config.model.dropout.to_string(),
        ),
        ("train.epochs".to_string(), config.train.epochs.to_string()),
        (
            "train.learning_rate".to_string(),
            config.train.learning_rate.to_string(),
        ),
    ];
    let seeds = vec![
        ("split".to_string(), config.split_seed),
        ("workloads".to_string(), config.workloads.seed),
        ("signal_stats".to_string(), config.signal_stats.seed),
        ("model".to_string(), config.model.seed),
    ];
    (kv, seeds)
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    use fusa::lint::{lint_netlist, LintSeverity};

    let netlist = load_design(args.get(1).ok_or("missing design")?)?;
    let deny = match flag_value(args, "--deny") {
        Some(level) => LintSeverity::parse(level)
            .ok_or_else(|| format!("bad --deny level `{level}` (info|warnings|errors)"))?,
        None => LintSeverity::Error,
    };
    let report = lint_netlist(&netlist);
    if args.iter().any(|a| a == "--json") {
        print!("{}", report.render_json());
    } else if args.iter().any(|a| a == "--csv") {
        print!("{}", report.render_csv());
    } else {
        print!("{}", report.render_text());
    }
    if report.has_at_least(deny) {
        let denied = report
            .findings
            .iter()
            .filter(|f| f.severity >= deny)
            .count();
        eprintln!("lint failed: {denied} finding(s) at or above `{deny}`");
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let design_arg = args.get(1).ok_or("missing design")?;
    let mut session = ObsSession::begin("analyze", design_arg, args)?;
    let netlist = load_design(design_arg)?;
    let mut config = pipeline_config(args)?;
    config.campaign.shard = session.shard;
    let (config_kv, seeds) = manifest_config(&config);
    let lint = lint_digest(&netlist);
    let analysis = match FusaPipeline::new(config)
        .with_campaign_durability(session.durability(args)?)
        .run(&netlist)
    {
        Ok(analysis) => analysis,
        Err(PipelineError::Interrupted { .. }) => {
            session.exit_interrupted(netlist.name(), config_kv, seeds)
        }
        Err(error) => return Err(error.to_string()),
    };
    session.note_quarantined(&analysis.campaign_quarantined);

    let text = render_text_report(&analysis, &netlist, &ReportOptions::default());
    println!("{text}");

    // Digests cover only deterministic artifacts: the stats-free text
    // report and the per-node CSV are identical across same-seed runs.
    let stable_text = render_text_report(
        &analysis,
        &netlist,
        &ReportOptions {
            include_stats: false,
            ..ReportOptions::default()
        },
    );
    let csv = render_csv_report(&analysis, &netlist);
    let digests = vec![
        (
            "report.txt".to_string(),
            fnv1a64_hex(stable_text.as_bytes()),
        ),
        ("nodes.csv".to_string(), fnv1a64_hex(csv.as_bytes())),
        lint,
    ];

    if let Some(path) = flag_value(args, "--report") {
        std::fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("report written to {path}");
    }
    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, &csv).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("per-node CSV written to {path}");
    }
    if let Some(path) = flag_value(args, "--save-model") {
        let file =
            std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
        fusa::gcn::persist::save_classifier(&analysis.classifier, file)
            .map_err(|e| e.to_string())?;
        println!("trained model written to {path}");
    }
    session.finish(netlist.name(), config_kv, seeds, digests)?;
    exit_strict(args, analysis.campaign_quarantined.len());
    exit_strict_durability(args);
    Ok(())
}

fn cmd_faults(args: &[String]) -> Result<(), String> {
    let design_arg = args.get(1).ok_or("missing design")?;
    let mut session = ObsSession::begin("faults", design_arg, args)?;
    let netlist = load_design(design_arg)?;
    let mut config = pipeline_config(args)?;
    config.campaign.shard = session.shard;
    let (config_kv, seeds) = manifest_config(&config);
    let faults = FaultList::all_gate_outputs(&netlist);
    let workloads = WorkloadSuite::generate(&netlist, &config.workloads);
    let lint = lint_digest(&netlist);
    let report = FaultCampaign::new(config.campaign)
        .with_durability(session.durability(args)?)
        .run(&netlist, &faults, &workloads)
        .map_err(|e| e.to_string())?;
    session.note_quarantined(report.quarantined());
    if report.interrupted() {
        session.exit_interrupted(netlist.name(), config_kv, seeds);
    }
    print!("{}", report.summary());
    let stable_summary = report.summary_opts(false);
    let quarantined_count = report.quarantined().len();
    let dataset = report.into_dataset(config.criticality_threshold);
    println!(
        "\nAlgorithm 1: {} / {} nodes critical at th={}",
        dataset.critical_count(),
        dataset.labels().len(),
        dataset.threshold()
    );
    let csv = dataset.to_csv(&netlist);
    let digests = vec![
        (
            "summary.txt".to_string(),
            fnv1a64_hex(stable_summary.as_bytes()),
        ),
        ("criticality.csv".to_string(), fnv1a64_hex(csv.as_bytes())),
        lint,
    ];
    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, &csv).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("criticality CSV written to {path}");
    }
    session.finish(netlist.name(), config_kv, seeds, digests)?;
    exit_strict(args, quarantined_count);
    exit_strict_durability(args);
    Ok(())
}

/// Lints the design and returns the digest entry pinning its findings.
/// Run inside an [`ObsSession`] so the `lint.findings.*` severity
/// counters land in the manifest too; `fusa compare` hard-fails on the
/// digest and annotates counter deltas without gating on them.
///
/// Call this *before* the campaign/train phase: each phase republishes
/// `status.json`, and the run's final snapshot should come from its
/// dominant phase, not a trailing sub-second lint pass.
fn lint_digest(netlist: &Netlist) -> (String, String) {
    let report = fusa::lint::lint_netlist(netlist);
    (
        "lint.csv".to_string(),
        fnv1a64_hex(report.render_csv().as_bytes()),
    )
}

fn cmd_rank(args: &[String]) -> Result<(), String> {
    use fusa::gcn::{parse_ground_truth, StaticRank, CHANNEL_WEIGHTS, RANK_CHANNEL_NAMES};

    let design_arg = args.get(1).ok_or("missing design")?;
    let session = ObsSession::begin("rank", design_arg, args)?;
    let netlist = load_design(design_arg)?;
    let rank = StaticRank::compute(&netlist);

    let top: usize = match flag_value(args, "--top") {
        Some(value) => value
            .parse()
            .map_err(|_| format!("bad --top value `{value}`"))?,
        None => 10,
    };
    let ranking = rank.ranking();
    println!(
        "static criticality ranking of {} ({} gates, no simulation):",
        netlist.name(),
        ranking.len()
    );
    println!("  {:>4}  {:<24} {:>9}", "rank", "gate", "combined");
    for (position, &gate) in ranking.iter().take(top).enumerate() {
        println!(
            "  {:>4}  {:<24} {:>9.4}",
            position + 1,
            netlist.gates()[gate].name,
            rank.combined[gate],
        );
    }

    // The CSV is deterministic (pure structure, no RNG), so its digest
    // pins the whole ranking in the manifest.
    let csv = rank.to_csv(&netlist);
    let digests = vec![("rank.csv".to_string(), fnv1a64_hex(csv.as_bytes()))];
    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, &csv).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("static-rank CSV written to {path}");
    }

    let config_kv: ConfigEntries = RANK_CHANNEL_NAMES
        .iter()
        .zip(&CHANNEL_WEIGHTS)
        .map(|(name, weight)| (format!("rank.weight.{name}"), weight.to_string()))
        .collect();

    let mut failed_min_rho = None;
    if let Some(path) = flag_value(args, "--ground-truth") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let truth = parse_ground_truth(&netlist, &text)
            .map_err(|e| format!("bad ground truth `{path}`: {e}"))?;
        let evaluation = rank.evaluate(&truth);
        let obs = fusa::obs::global();
        println!("\nSpearman rho vs campaign ground truth ({path}):");
        for &(name, rho) in &evaluation.channel_rho {
            println!("  {name:<16} {rho:>7.4}");
            obs.gauge_set(&format!("rank.rho.{name}"), rho);
        }
        println!("  {:<16} {:>7.4}", "combined", evaluation.combined_rho);
        obs.gauge_set("rank.rho.combined", evaluation.combined_rho);
        if let Some(value) = flag_value(args, "--min-rho") {
            let min: f64 = value
                .parse()
                .map_err(|_| format!("bad --min-rho value `{value}`"))?;
            // NaN rho (degenerate ground truth) must fail the gate too.
            if evaluation.combined_rho < min || evaluation.combined_rho.is_nan() {
                failed_min_rho = Some((evaluation.combined_rho, min));
            }
        }
    } else if flag_value(args, "--min-rho").is_some() {
        return Err("--min-rho needs --ground-truth".to_string());
    }

    // The manifest is written even on a --min-rho failure so the rho
    // gauges of the failing run stay inspectable.
    session.finish(netlist.name(), config_kv, Vec::new(), digests)?;
    if let Some((rho, min)) = failed_min_rho {
        eprintln!("rank failed: combined Spearman rho {rho:.4} below --min-rho {min}");
        std::process::exit(1);
    }
    Ok(())
}

/// Under `--strict`, quarantined units make the whole run fail (after
/// the manifest was written, so the partial ground truth stays
/// inspectable).
fn exit_strict(args: &[String], quarantined: usize) {
    if quarantined > 0 && args.iter().any(|a| a == "--strict") {
        eprintln!("fusa: --strict: {quarantined} campaign unit(s) quarantined");
        std::process::exit(1);
    }
}

/// Under `--strict-durability`, a degraded run — a checkpoint, trace or
/// manifest write that outlived its retry budget — fails the command
/// (after the results and manifest are out, so nothing is lost twice).
fn exit_strict_durability(args: &[String]) {
    if fusa::obs::durability_degraded() && args.iter().any(|a| a == "--strict-durability") {
        let reason = fusa::obs::degraded_reason()
            .unwrap_or_else(|| "a storage write outlived its retry budget".to_string());
        eprintln!("fusa: --strict-durability: {reason}");
        std::process::exit(1);
    }
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let design_arg = args.get(1).ok_or("missing design")?;
    let mut session = ObsSession::begin("explain", design_arg, args)?;
    let netlist = load_design(design_arg)?;
    let gate_name = args.get(2).ok_or("missing gate name")?;
    let gate = netlist
        .find_gate(gate_name)
        .ok_or_else(|| format!("no gate named `{gate_name}`"))?;
    let config = pipeline_config(args)?;
    let (config_kv, seeds) = manifest_config(&config);
    let analysis = match FusaPipeline::new(config)
        .with_campaign_durability(session.durability(args)?)
        .run(&netlist)
    {
        Ok(analysis) => analysis,
        Err(PipelineError::Interrupted { .. }) => {
            session.exit_interrupted(netlist.name(), config_kv, seeds)
        }
        Err(error) => return Err(error.to_string()),
    };
    session.note_quarantined(&analysis.campaign_quarantined);
    let explainer = analysis.explainer(ExplainerConfig::default());
    let explanation = explainer.explain(gate.index());
    let mut text = format!(
        "{gate_name}: predicted {} (P(critical) = {:.3}, ground truth score {:.2})\n",
        if explanation.predicted_class == 1 {
            "CRITICAL"
        } else {
            "non-critical"
        },
        analysis.evaluation.critical_probability[gate.index()],
        analysis.dataset.scores()[gate.index()],
    );
    text.push_str("\nfeature importance:\n");
    for (feature, score) in explanation.ranked_features() {
        let _ = writeln!(text, "  {feature:<36} {score:.2}");
    }
    text.push_str("\nmost influential wires:\n");
    for (a, b, weight) in explanation.edge_importance.iter().take(8) {
        let _ = writeln!(
            text,
            "  {} -- {}  (mask {weight:.2})",
            netlist.gates()[*a].name,
            netlist.gates()[*b].name,
        );
    }
    print!("{text}");
    let digests = vec![("explanation.txt".to_string(), fnv1a64_hex(text.as_bytes()))];
    session.finish(netlist.name(), config_kv, seeds, digests)?;
    exit_strict(args, analysis.campaign_quarantined.len());
    exit_strict_durability(args);
    Ok(())
}

fn cmd_harden(args: &[String]) -> Result<(), String> {
    use fusa::netlist::harden::{tmr_overhead, tmr_protect};
    use fusa::netlist::GateId;

    let design_arg = args.get(1).ok_or("missing design")?;
    let mut session = ObsSession::begin("harden", design_arg, args)?;
    let netlist = load_design(design_arg)?;
    let budget: f64 = flag_value(args, "--budget")
        .map(|v| v.parse().map_err(|_| "bad --budget value".to_string()))
        .transpose()?
        .unwrap_or(0.1);
    if !(0.0..=1.0).contains(&budget) {
        return Err("--budget must be in [0, 1]".into());
    }
    let config = pipeline_config(args)?;
    let (config_kv, seeds) = manifest_config(&config);
    let analysis = match FusaPipeline::new(config)
        .with_campaign_durability(session.durability(args)?)
        .run(&netlist)
    {
        Ok(analysis) => analysis,
        Err(PipelineError::Interrupted { .. }) => {
            session.exit_interrupted(netlist.name(), config_kv, seeds)
        }
        Err(error) => return Err(error.to_string()),
    };
    session.note_quarantined(&analysis.campaign_quarantined);

    let count = ((netlist.gate_count() as f64) * budget) as usize;
    let mut ranked: Vec<(usize, f64)> = analysis
        .evaluation
        .critical_probability
        .iter()
        .copied()
        .enumerate()
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    let selection: Vec<GateId> = ranked
        .iter()
        .take(count)
        .map(|&(i, _)| GateId(i as u32))
        .collect();

    let hardened = tmr_protect(&netlist, &selection).map_err(|e| e.to_string())?;
    println!(
        "protected {} gates ({}% budget): {} -> {} gates ({:.2}x area)",
        selection.len(),
        (budget * 100.0).round(),
        netlist.gate_count(),
        hardened.gate_count(),
        tmr_overhead(netlist.gate_count(), selection.len()),
    );
    for &gate in selection.iter().take(10) {
        println!(
            "  {:<24} P(critical) = {:.3}",
            netlist.gate(gate).name,
            analysis.evaluation.critical_probability[gate.index()],
        );
    }
    if selection.len() > 10 {
        println!("  ... and {} more", selection.len() - 10);
    }
    let hardened_verilog = fusa::netlist::writer::write_verilog(&hardened);
    let digests = vec![(
        "hardened.v".to_string(),
        fnv1a64_hex(hardened_verilog.as_bytes()),
    )];
    if let Some(path) = flag_value(args, "--out") {
        std::fs::write(path, &hardened_verilog)
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("hardened netlist written to {path}");
    }
    session.finish(netlist.name(), config_kv, seeds, digests)?;
    exit_strict(args, analysis.campaign_quarantined.len());
    exit_strict_durability(args);
    Ok(())
}

fn cmd_seu(args: &[String]) -> Result<(), String> {
    let design_arg = args.get(1).ok_or("missing design")?;
    let session = ObsSession::begin("seu", design_arg, args)?;
    let netlist = load_design(design_arg)?;
    if args.iter().any(|a| a == "--resume") || flag_value(args, "--checkpoint").is_some() {
        eprintln!("fusa: note: seu campaigns re-run from scratch; --checkpoint/--resume ignored");
    }
    let config = pipeline_config(args)?;
    let (config_kv, seeds) = manifest_config(&config);
    let workloads = WorkloadSuite::generate(&netlist, &config.workloads);
    let report = SeuCampaign::new(SeuConfig {
        lane_words: config.campaign.lane_words,
        ..SeuConfig::default()
    })
    .with_interrupt(fusa::obs::shutdown_flag())
    .run(&netlist, &workloads);
    if report.interrupted {
        session.exit_interrupted(netlist.name(), config_kv, seeds);
    }
    let mut text = format!(
        "{}: {} flip-flops, mean SEU corruption rate {:.3}\n",
        netlist.name(),
        report.flops.len(),
        report.mean_corruption_rate(),
    );
    text.push_str("\nmost vulnerable registers:\n");
    for (gate, rate) in report.ranking().into_iter().take(15) {
        let _ = writeln!(text, "  {:<28} {rate:.2}", netlist.gate(gate).name);
    }
    print!("{text}");
    let digests = vec![("seu.txt".to_string(), fnv1a64_hex(text.as_bytes()))];
    session.finish(netlist.name(), config_kv, seeds, digests)?;
    exit_strict_durability(args);
    Ok(())
}

/// `fusa synth <size>`: writes a seeded synthetic benchmark netlist.
/// Generation is deterministic, so the printed digest is stable for a
/// given (size, seed) across machines and releases.
fn cmd_synth(args: &[String]) -> Result<(), String> {
    let spec = COMMANDS
        .iter()
        .find(|c| c.name == "synth")
        .expect("synth spec");
    let positionals = positional_args(spec, args);
    let size = *positionals.first().ok_or("missing size")?;
    let seed: u64 = match flag_value(args, "--seed") {
        Some(value) => value
            .parse()
            .map_err(|_| format!("bad --seed value `{value}`"))?,
        None => 1,
    };
    let netlist = match size {
        "10k" => designs::synth_10k(seed),
        "30k" => designs::synth_30k(seed),
        "100k" => designs::synth_100k(seed),
        other => return Err(format!("unknown size `{other}`: use 10k, 30k or 100k")),
    };
    let verilog = fusa::netlist::writer::write_verilog(&netlist);
    let out = flag_value(args, "--out")
        .map(str::to_string)
        .unwrap_or_else(|| format!("synth_{size}.v"));
    std::fs::write(&out, &verilog).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!("{}", NetlistStats::of(&netlist));
    println!(
        "seed {seed}, netlist digest {}, written to {out}",
        fnv1a64_hex(verilog.as_bytes())
    );
    Ok(())
}

/// `fusa merge <checkpoint>... [--out FILE]`: unions shard checkpoints
/// into one complete checkpoint, then replays the campaign from it.
/// Every unit is already complete after a valid merge, so no simulation
/// runs and the resulting summary and criticality CSV digests are
/// bit-identical to an uninterrupted single-process run.
fn cmd_merge(args: &[String]) -> Result<(), String> {
    use fusa::faultsim::{merge_checkpoints, read_header, CheckpointHeader};

    let spec = COMMANDS
        .iter()
        .find(|c| c.name == "merge")
        .expect("merge spec");
    let inputs: Vec<PathBuf> = positional_args(spec, args)
        .into_iter()
        .map(PathBuf::from)
        .collect();
    // Peek the first header for the design name; `fusa merge` wants no
    // mandatory <design> positional because the checkpoints know it.
    let first = inputs.first().ok_or("missing checkpoint")?;
    let header = read_header(first).map_err(|e| e.to_string())?;
    let design_arg = flag_value(args, "--design")
        .unwrap_or(&header.design)
        .to_string();
    let mut session = ObsSession::begin("merge", &design_arg, args)?;
    let netlist = load_design(&design_arg)?;

    let out = match flag_value(args, "--out") {
        Some(path) => PathBuf::from(path),
        None => session.run_dir.join("checkpoint.jsonl"),
    };
    if inputs.iter().any(|input| input == &out) {
        return Err(format!(
            "--out `{}` is also a merge input; pick a fresh path",
            out.display()
        ));
    }

    let outcome = {
        let _span = fusa::obs::global().span("merge");
        merge_checkpoints(&inputs, &out).map_err(|e| e.to_string())?
    };
    session.merge_sources = outcome
        .sources
        .iter()
        .map(|source| MergeSourceRecord {
            path: source.path.display().to_string(),
            shard_index: source.shard.map(|s| s.index as u64),
            shard_total: source.shard.map(|s| s.total as u64),
            units: source.units as u64,
        })
        .collect();
    println!(
        "merged {} checkpoint(s) into {}: {} units ({} duplicate unit(s) deduped, {} torn line(s) skipped)",
        outcome.sources.len(),
        out.display(),
        outcome.unit_count,
        outcome.duplicate_units,
        outcome.skipped_lines,
    );
    for source in &outcome.sources {
        let shard = match source.shard {
            Some(s) => format!("shard {s}"),
            None => "unsharded".to_string(),
        };
        println!(
            "  {} ({shard}, {} units)",
            source.path.display(),
            source.units
        );
    }

    // Reconstruct the campaign inputs the shards ran with. The merged
    // header pins the outcome-affecting configuration; the fault list
    // is rebuilt as every gate output first and with untestable sites
    // excluded (the `analyze` pipeline default) second, whichever
    // matches the header's fault digest.
    let mut config = pipeline_config(args)?;
    config.campaign.classify_latent = header.classify_latent;
    config.campaign.min_divergence_fraction = header.min_divergence_fraction;
    config.campaign.shard = None;
    let (config_kv, seeds) = manifest_config(&config);
    let workloads = WorkloadSuite::generate(&netlist, &config.workloads);
    let merged_header = &outcome.header;
    let faults = {
        let all = FaultList::all_gate_outputs(&netlist);
        let captured = CheckpointHeader::capture(&netlist, &all, &workloads, &config.campaign);
        if merged_header
            .check_compatible_ignoring_shard(&captured)
            .is_ok()
        {
            all
        } else {
            all.exclude_untestable(&fusa::lint::untestable_stuck_at_sites(&netlist))
        }
    };
    let captured = CheckpointHeader::capture(&netlist, &faults, &workloads, &config.campaign);
    if let Err(error) = merged_header.check_compatible_ignoring_shard(&captured) {
        return Err(format!(
            "merged checkpoint does not match the reconstructed campaign: {error}\n\
             hint: pass the preset flags the shards ran with (e.g. --fast) \
             and, for file designs, the same netlist via --design"
        ));
    }

    // Resume from the merged checkpoint: the pending set is empty, so
    // this replays zero units and emits the single-run report.
    let lint = lint_digest(&netlist);
    let report = FaultCampaign::new(config.campaign)
        .with_durability(DurabilityConfig {
            checkpoint: Some(out.clone()),
            resume: true,
            interrupt: Some(fusa::obs::shutdown_flag()),
            ..DurabilityConfig::default()
        })
        .run(&netlist, &faults, &workloads)
        .map_err(|e| e.to_string())?;
    print!("{}", report.summary());
    let stable_summary = report.summary_opts(false);
    let dataset = report.into_dataset(config.criticality_threshold);
    println!(
        "\nAlgorithm 1: {} / {} nodes critical at th={}",
        dataset.critical_count(),
        dataset.labels().len(),
        dataset.threshold()
    );
    let csv = dataset.to_csv(&netlist);
    let digests = vec![
        (
            "summary.txt".to_string(),
            fnv1a64_hex(stable_summary.as_bytes()),
        ),
        ("criticality.csv".to_string(), fnv1a64_hex(csv.as_bytes())),
        lint,
    ];
    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, &csv).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("criticality CSV written to {path}");
    }
    session.finish(netlist.name(), config_kv, seeds, digests)
}

/// `fusa fsck <run-dir|checkpoint> [--repair]`: validates campaign
/// storage line by line, reporting exact damage (file, line, unit,
/// cause); `--repair` rewrites the checkpoint keeping the valid header
/// and every intact, digest-passing unit record. Exits 1 when damage
/// remains unrepaired.
fn cmd_fsck(args: &[String]) -> Result<(), String> {
    use fusa::faultsim::{fsck_path, FsckOptions};

    let spec = COMMANDS
        .iter()
        .find(|c| c.name == "fsck")
        .expect("fsck spec");
    let positionals = positional_args(spec, args);
    let path = PathBuf::from(*positionals.first().ok_or("missing path")?);
    let options = FsckOptions {
        repair: args.iter().any(|a| a == "--repair"),
    };
    let report = fsck_path(&path, &options).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    if !report.sound() {
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let spec = COMMANDS
        .iter()
        .find(|c| c.name == "report")
        .expect("report spec");
    let positionals = positional_args(spec, args);
    let path = positionals.first().ok_or("missing manifest path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let manifest = RunManifest::parse(&text).map_err(|e| format!("`{path}`: {e}"))?;
    if args.iter().any(|a| a == "--json") {
        println!("{}", render_manifest_report_json(&manifest).render_pretty());
    } else {
        print!("{}", render_manifest_report(&manifest));
    }
    Ok(())
}

/// Builds the fleet view `fusa top` renders: discovers `status.json`
/// snapshots under the given roots and derives each run's shard-family
/// key from its checkpoint header (when one exists and parses).
fn collect_fleet(roots: &[PathBuf], stale_seconds: f64) -> Result<FleetView, String> {
    let mut runs = Vec::new();
    let mut damaged = Vec::new();
    for status_path in discover_status_files(roots) {
        let status = match StatusSnapshot::read(&status_path) {
            Ok(status) => status,
            // An unreadable or corrupt snapshot is an operational signal
            // (torn write, disk fault), not ours to crash on — and not
            // ours to hide either: it becomes a flagged DAMAGED row.
            Err(error) => {
                damaged.push(FleetDamage {
                    path: status_path,
                    error,
                });
                continue;
            }
        };
        let dir = status_path
            .parent()
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        let family = fusa::faultsim::read_header(&dir.join("checkpoint.jsonl"))
            .ok()
            .map(|header| header.family_key());
        runs.push(FleetRun {
            dir,
            status,
            family,
        });
    }
    if runs.is_empty() && damaged.is_empty() {
        return Err(format!(
            "no status.json snapshots under {} (runs write them unless --no-status; old runs predate them)",
            roots
                .iter()
                .map(|r| format!("`{}`", r.display()))
                .collect::<Vec<_>>()
                .join(", "),
        ));
    }
    Ok(FleetView::build(
        runs,
        damaged,
        FleetOptions {
            stale_seconds,
            now_unix: fusa::obs::unix_now(),
        },
    ))
}

/// `fusa top <results-root|run-dir>...`: the live fleet dashboard.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let spec = COMMANDS.iter().find(|c| c.name == "top").expect("top spec");
    let roots: Vec<PathBuf> = positional_args(spec, args)
        .iter()
        .map(PathBuf::from)
        .collect();
    let json = args.iter().any(|a| a == "--json");
    let once = json || args.iter().any(|a| a == "--once");
    let interval = match flag_value(args, "--interval") {
        Some(value) => value
            .parse::<f64>()
            .ok()
            .filter(|s| *s > 0.0)
            .ok_or_else(|| format!("bad --interval value `{value}`"))?,
        None => 2.0,
    };
    let stale_seconds = match flag_value(args, "--stale") {
        Some(value) => value
            .parse::<f64>()
            .ok()
            .filter(|s| *s > 0.0)
            .ok_or_else(|| format!("bad --stale value `{value}`"))?,
        None => FleetOptions::DEFAULT_STALE_SECONDS,
    };

    loop {
        let view = collect_fleet(&roots, stale_seconds)?;
        if json {
            println!("{}", view.to_json().render_pretty());
        } else {
            if !once {
                // ANSI clear + home keeps the dashboard in place.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", view.render_text());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        if once {
            return Ok(());
        }
        // Every run finished and none stalled: the fleet is done,
        // leave the final frame on screen.
        if view.live == 0 && view.stalled == 0 {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

/// `fusa export --prometheus <run-dir>...`: render status snapshots and
/// manifests as a Prometheus textfile for node_exporter to scrape.
fn cmd_export(args: &[String]) -> Result<(), String> {
    if !args.iter().any(|a| a == "--prometheus") {
        return Err("`fusa export` needs a format; pass --prometheus".into());
    }
    let spec = COMMANDS
        .iter()
        .find(|c| c.name == "export")
        .expect("export spec");
    let mut runs = Vec::new();
    for root in positional_args(spec, args) {
        let dir = PathBuf::from(root);
        let status = StatusSnapshot::read(&dir.join("status.json")).ok();
        let manifest = std::fs::read_to_string(dir.join("manifest.json"))
            .ok()
            .and_then(|text| RunManifest::parse(&text).ok());
        if status.is_none() && manifest.is_none() {
            return Err(format!(
                "`{root}` has neither a status.json nor a manifest.json"
            ));
        }
        runs.push(PromRun { status, manifest });
    }
    let rendered = render_prometheus(&runs);
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, rendered).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("fusa: metrics written to {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// `fusa trace <trace.jsonl>`: offline span/event query over a
/// `--trace-out` stream.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let spec = COMMANDS
        .iter()
        .find(|c| c.name == "trace")
        .expect("trace spec");
    let positionals = positional_args(spec, args);
    let path = positionals.first().ok_or("missing trace path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let filter = TraceFilter {
        kind: flag_value(args, "--kind").map(str::to_string),
        name_substring: flag_value(args, "--name").map(str::to_string),
    };
    let report = TraceReport::scan(&text, &filter);
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json().render_pretty());
    } else {
        print!("{}", report.render_text());
    }
    Ok(())
}

/// `fusa compare <baseline> <candidate>`: the cross-run regression
/// gate. Arguments are manifest files or run directories. Exits 1 when
/// the candidate regressed (digest mismatch on same-seed runs, or a
/// time metric beyond tolerance).
fn cmd_compare(args: &[String]) -> Result<(), String> {
    use fusa::obs::{
        append_bench_trajectory, compare_manifests, load_manifest_arg, CompareOptions,
    };

    let spec = COMMANDS
        .iter()
        .find(|c| c.name == "compare")
        .expect("compare spec");
    let positionals = positional_args(spec, args);
    let baseline_arg = positionals.first().ok_or("missing baseline")?;
    let candidate_arg = positionals.get(1).ok_or("missing candidate")?;
    let baseline = load_manifest_arg(std::path::Path::new(baseline_arg))?;
    let candidate = load_manifest_arg(std::path::Path::new(candidate_arg))?;

    let mut options = CompareOptions::default();
    if let Some(value) = flag_value(args, "--tolerance-pct") {
        options.tolerance_pct = value
            .parse()
            .map_err(|_| format!("bad --tolerance-pct value `{value}`"))?;
    }
    if let Some(value) = flag_value(args, "--min-seconds") {
        options.min_seconds = value
            .parse()
            .map_err(|_| format!("bad --min-seconds value `{value}`"))?;
    }
    let comparison = compare_manifests(&baseline, &candidate, options);

    if args.iter().any(|a| a == "--json") {
        println!("{}", comparison.to_json().render());
    } else {
        print!("{}", comparison.render_text());
    }

    if args.iter().any(|a| a == "--append-bench") {
        let path = flag_value(args, "--bench-file").unwrap_or("BENCH_campaign.json");
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        let updated = append_bench_trajectory(&existing, &comparison, &baseline, &candidate)?;
        std::fs::write(path, updated).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("trajectory entry appended to {path}");
    }

    if comparison.has_regression() {
        std::process::exit(1);
    }
    Ok(())
}
