//! `fusa` — command-line fault criticality analysis.
//!
//! ```text
//! fusa designs                          list built-in benchmark designs
//! fusa stats <design>                   netlist statistics
//! fusa lint <design> [--json] [--csv] [--deny LEVEL]   static analysis
//! fusa analyze <design> [--fast] [--report FILE] [--csv FILE] [--save-model FILE]
//! fusa faults <design> [--fast] [--csv FILE] [--threads N] [--no-cone] [--no-early-exit]
//! fusa explain <design> <gate> [--fast]          why is this node critical?
//! fusa seu <design> [--fast]                     transient bit-flip vulnerability
//! fusa harden <design> [--budget 0.1] [--fast] [--out FILE.v]
//! ```
//!
//! `<design>` is a built-in name (`sdram_ctrl`, `or1200_if`,
//! `or1200_icfsm`, `uart_ctrl`) or a path to a structural-Verilog file.

use fusa::faultsim::{FaultCampaign, FaultList, SeuCampaign, SeuConfig};
use fusa::gcn::pipeline::{FusaPipeline, PipelineConfig};
use fusa::gcn::report::{render_csv_report, render_text_report, ReportOptions};
use fusa::gcn::ExplainerConfig;
use fusa::logicsim::WorkloadSuite;
use fusa::netlist::{designs, parser::parse_verilog, Netlist, NetlistStats};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fusa designs
  fusa stats   <design>
  fusa lint    <design> [--json] [--csv] [--deny LEVEL]
  fusa analyze <design> [--fast] [--report FILE] [--csv FILE] [--save-model FILE]
  fusa faults  <design> [--fast] [--csv FILE] [--threads N] [--no-cone] [--no-early-exit]
  fusa explain <design> <gate-name> [--fast]
  fusa seu     <design> [--fast]
  fusa harden  <design> [--budget FRACTION] [--fast] [--out FILE.v]

<design>: sdram_ctrl | or1200_if | or1200_icfsm | uart_ctrl | path/to/netlist.v";

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "designs" => {
            for design in designs::all_designs() {
                println!("{design}");
            }
            Ok(())
        }
        "stats" => {
            let netlist = load_design(args.get(1).ok_or("missing design")?)?;
            println!("{}", NetlistStats::of(&netlist));
            Ok(())
        }
        "lint" => cmd_lint(args),
        "analyze" => cmd_analyze(args),
        "faults" => cmd_faults(args),
        "explain" => cmd_explain(args),
        "seu" => cmd_seu(args),
        "harden" => cmd_harden(args),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load_design(name: &str) -> Result<Netlist, String> {
    match name {
        "sdram_ctrl" => Ok(designs::sdram_ctrl()),
        "or1200_if" => Ok(designs::or1200_if()),
        "or1200_icfsm" => Ok(designs::or1200_icfsm()),
        "uart_ctrl" => Ok(designs::uart_ctrl()),
        path => {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            parse_verilog(&source).map_err(|e| format!("cannot parse `{path}`: {e}"))
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn pipeline_config(args: &[String]) -> PipelineConfig {
    let mut config = if args.iter().any(|a| a == "--fast") {
        PipelineConfig::fast()
    } else {
        PipelineConfig::default()
    };
    // Campaign accelerations are bit-identical to the naive path; these
    // knobs exist for benchmarking and cross-checking.
    if args.iter().any(|a| a == "--no-cone") {
        config.campaign.restrict_to_cone = false;
    }
    if args.iter().any(|a| a == "--no-early-exit") {
        config.campaign.early_exit = false;
    }
    if let Some(threads) = flag_value(args, "--threads").and_then(|t| t.parse().ok()) {
        config.campaign.threads = threads;
    }
    config
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    use fusa::lint::{lint_netlist, LintSeverity};

    let netlist = load_design(args.get(1).ok_or("missing design")?)?;
    let deny = match flag_value(args, "--deny") {
        Some(level) => LintSeverity::parse(level)
            .ok_or_else(|| format!("bad --deny level `{level}` (info|warnings|errors)"))?,
        None => LintSeverity::Error,
    };
    let report = lint_netlist(&netlist);
    if args.iter().any(|a| a == "--json") {
        print!("{}", report.render_json());
    } else if args.iter().any(|a| a == "--csv") {
        print!("{}", report.render_csv());
    } else {
        print!("{}", report.render_text());
    }
    if report.has_at_least(deny) {
        let denied = report
            .findings
            .iter()
            .filter(|f| f.severity >= deny)
            .count();
        eprintln!("lint failed: {denied} finding(s) at or above `{deny}`");
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let netlist = load_design(args.get(1).ok_or("missing design")?)?;
    let config = pipeline_config(args);
    let analysis = FusaPipeline::new(config)
        .run(&netlist)
        .map_err(|e| e.to_string())?;

    let text = render_text_report(&analysis, &netlist, &ReportOptions::default());
    println!("{text}");

    if let Some(path) = flag_value(args, "--report") {
        std::fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("report written to {path}");
    }
    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, render_csv_report(&analysis, &netlist))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("per-node CSV written to {path}");
    }
    if let Some(path) = flag_value(args, "--save-model") {
        let file =
            std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
        fusa::gcn::persist::save_classifier(&analysis.classifier, file)
            .map_err(|e| e.to_string())?;
        println!("trained model written to {path}");
    }
    Ok(())
}

fn cmd_faults(args: &[String]) -> Result<(), String> {
    let netlist = load_design(args.get(1).ok_or("missing design")?)?;
    let config = pipeline_config(args);
    let faults = FaultList::all_gate_outputs(&netlist);
    let workloads = WorkloadSuite::generate(&netlist, &config.workloads);
    let report = FaultCampaign::new(config.campaign).run(&netlist, &faults, &workloads);
    print!("{}", report.summary());
    let dataset = report.into_dataset(config.criticality_threshold);
    println!(
        "\nAlgorithm 1: {} / {} nodes critical at th={}",
        dataset.critical_count(),
        dataset.labels().len(),
        dataset.threshold()
    );
    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, dataset.to_csv(&netlist))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("criticality CSV written to {path}");
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let netlist = load_design(args.get(1).ok_or("missing design")?)?;
    let gate_name = args.get(2).ok_or("missing gate name")?;
    let gate = netlist
        .find_gate(gate_name)
        .ok_or_else(|| format!("no gate named `{gate_name}`"))?;
    let config = pipeline_config(args);
    let analysis = FusaPipeline::new(config)
        .run(&netlist)
        .map_err(|e| e.to_string())?;
    let explainer = analysis.explainer(ExplainerConfig::default());
    let explanation = explainer.explain(gate.index());
    println!(
        "{gate_name}: predicted {} (P(critical) = {:.3}, ground truth score {:.2})",
        if explanation.predicted_class == 1 {
            "CRITICAL"
        } else {
            "non-critical"
        },
        analysis.evaluation.critical_probability[gate.index()],
        analysis.dataset.scores()[gate.index()],
    );
    println!("\nfeature importance:");
    for (feature, score) in explanation.ranked_features() {
        println!("  {feature:<36} {score:.2}");
    }
    println!("\nmost influential wires:");
    for (a, b, weight) in explanation.edge_importance.iter().take(8) {
        println!(
            "  {} -- {}  (mask {weight:.2})",
            netlist.gates()[*a].name,
            netlist.gates()[*b].name,
        );
    }
    Ok(())
}

fn cmd_harden(args: &[String]) -> Result<(), String> {
    use fusa::netlist::harden::{tmr_overhead, tmr_protect};
    use fusa::netlist::GateId;

    let netlist = load_design(args.get(1).ok_or("missing design")?)?;
    let budget: f64 = flag_value(args, "--budget")
        .map(|v| v.parse().map_err(|_| "bad --budget value".to_string()))
        .transpose()?
        .unwrap_or(0.1);
    if !(0.0..=1.0).contains(&budget) {
        return Err("--budget must be in [0, 1]".into());
    }
    let config = pipeline_config(args);
    let analysis = FusaPipeline::new(config)
        .run(&netlist)
        .map_err(|e| e.to_string())?;

    let count = ((netlist.gate_count() as f64) * budget) as usize;
    let mut ranked: Vec<(usize, f64)> = analysis
        .evaluation
        .critical_probability
        .iter()
        .copied()
        .enumerate()
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    let selection: Vec<GateId> = ranked
        .iter()
        .take(count)
        .map(|&(i, _)| GateId(i as u32))
        .collect();

    let hardened = tmr_protect(&netlist, &selection).map_err(|e| e.to_string())?;
    println!(
        "protected {} gates ({}% budget): {} -> {} gates ({:.2}x area)",
        selection.len(),
        (budget * 100.0).round(),
        netlist.gate_count(),
        hardened.gate_count(),
        tmr_overhead(netlist.gate_count(), selection.len()),
    );
    for &gate in selection.iter().take(10) {
        println!(
            "  {:<24} P(critical) = {:.3}",
            netlist.gate(gate).name,
            analysis.evaluation.critical_probability[gate.index()],
        );
    }
    if selection.len() > 10 {
        println!("  ... and {} more", selection.len() - 10);
    }
    if let Some(path) = flag_value(args, "--out") {
        std::fs::write(path, fusa::netlist::writer::write_verilog(&hardened))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("hardened netlist written to {path}");
    }
    Ok(())
}

fn cmd_seu(args: &[String]) -> Result<(), String> {
    let netlist = load_design(args.get(1).ok_or("missing design")?)?;
    let config = pipeline_config(args);
    let workloads = WorkloadSuite::generate(&netlist, &config.workloads);
    let report = SeuCampaign::new(SeuConfig::default()).run(&netlist, &workloads);
    println!(
        "{}: {} flip-flops, mean SEU corruption rate {:.3}",
        netlist.name(),
        report.flops.len(),
        report.mean_corruption_rate(),
    );
    println!("\nmost vulnerable registers:");
    for (gate, rate) in report.ranking().into_iter().take(15) {
        println!("  {:<28} {rate:.2}", netlist.gate(gate).name);
    }
    Ok(())
}
