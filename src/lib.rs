//! Umbrella crate for the DAC'24 fault-criticality reproduction.
//!
//! Re-exports every subsystem so examples and downstream users can depend
//! on a single crate:
//!
//! * [`netlist`] — gate library, netlist IR, parser/writer, synthesis
//!   builder and the three benchmark designs;
//! * [`logicsim`] — scalar and bit-parallel simulators, workloads,
//!   signal probability;
//! * [`faultsim`] — stuck-at fault-injection campaigns and Algorithm-1
//!   dataset generation;
//! * [`graph`] — netlist-to-graph conversion and node feature extraction;
//! * [`neuro`] — tensors, autograd, layers, optimizers and metrics;
//! * [`gcn`] — the paper's GCN classifier/regressor, trainer, explainer
//!   and the end-to-end [`gcn::pipeline`];
//! * [`baselines`] — MLP/LoR/RFC/SVM/EBM comparators;
//! * [`lint`] — pass-based netlist static analysis and untestable-fault
//!   site detection feeding campaign sanitization;
//! * [`obs`] — spans, counters, trace events and run manifests (every
//!   CLI run records provenance under `results/<run>/manifest.json`).
//!
//! # Quickstart
//!
//! ```no_run
//! use fusa::gcn::pipeline::{FusaPipeline, PipelineConfig};
//! use fusa::netlist::designs::or1200_icfsm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = or1200_icfsm();
//! let report = FusaPipeline::new(PipelineConfig::default()).run(&design)?;
//! println!("GCN validation accuracy: {:.1}%", report.evaluation.accuracy * 100.0);
//! # Ok(())
//! # }
//! ```

pub use fusa_baselines as baselines;
pub use fusa_faultsim as faultsim;
pub use fusa_gcn as gcn;
pub use fusa_graph as graph;
pub use fusa_lint as lint;
pub use fusa_logicsim as logicsim;
pub use fusa_netlist as netlist;
pub use fusa_neuro as neuro;
pub use fusa_obs as obs;
