//! The end-to-end flow of Figure 2: netlist → graph → features → fault
//! injection → GCN training → classification / scoring / explanation.

use crate::explain::{Explainer, ExplainerConfig};
use crate::model::{GcnConfig, GcnRegressor};
use crate::train::{
    train_classifier, train_regressor, EvaluationReport, TrainConfig, TrainHistory,
};
use fusa_faultsim::{
    CampaignConfig, CampaignError, CampaignStats, CriticalityDataset, DurabilityConfig,
    FaultCampaign, FaultList, QuarantinedUnit,
};
use fusa_graph::{normalized_adjacency, CircuitGraph, FeatureMatrix, Standardizer};
use fusa_logicsim::{SignalStats, SignalStatsConfig, WorkloadConfig, WorkloadSuite};
use fusa_netlist::{Netlist, StructuralProfile};
use fusa_neuro::split::Split;
use fusa_neuro::{CsrMatrix, Matrix};
use std::error::Error;
use std::fmt;

/// Configuration of the full pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Workload suite parameters (`N` workloads of §3.2).
    pub workloads: WorkloadConfig,
    /// Monte-Carlo signal-probability estimation parameters (§3.1).
    pub signal_stats: SignalStatsConfig,
    /// Fault campaign execution parameters.
    pub campaign: CampaignConfig,
    /// Criticality threshold `th` of Algorithm 1 (the paper uses 0.5).
    pub criticality_threshold: f64,
    /// Training fraction of the node split (the paper uses 0.8).
    pub train_fraction: f64,
    /// Seed of the stratified split.
    pub split_seed: u64,
    /// Drop statically untestable fault sites (constant or unobservable
    /// gates, found by `fusa-lint`) from the campaign fault list before
    /// simulation. The excluded gates keep criticality score 0 — the
    /// same label simulating them would produce — at zero cost.
    pub exclude_untestable_faults: bool,
    /// Append the simulation-free structural channels (SCOAP
    /// testability, graph centralities) to the node features fed to the
    /// GCN and the baselines. Off by default: the base layout is the
    /// paper's five features and keeps artifact digests stable.
    pub structural_features: bool,
    /// GCN architecture (`in_features` is set from the feature matrix).
    pub model: GcnConfig,
    /// Training hyper-parameters.
    pub train: TrainConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workloads: WorkloadConfig::default(),
            signal_stats: SignalStatsConfig::default(),
            campaign: CampaignConfig {
                // Grade danger by divergence rate (§3.2 framing:
                // "functional errors for more than X% of the time");
                // single-cycle glitches classify as latent instead.
                min_divergence_fraction: 0.2,
                ..CampaignConfig::default()
            },
            criticality_threshold: 0.5,
            train_fraction: 0.8,
            split_seed: 0x5117,
            exclude_untestable_faults: true,
            structural_features: false,
            model: GcnConfig::default(),
            train: TrainConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// A reduced-cost preset for tests and smoke runs: fewer workloads,
    /// shorter vectors, fewer estimation cycles and epochs.
    pub fn fast() -> PipelineConfig {
        PipelineConfig {
            workloads: WorkloadConfig {
                num_workloads: 8,
                vectors_per_workload: 64,
                ..Default::default()
            },
            signal_stats: SignalStatsConfig {
                cycles: 128,
                warmup: 8,
                ..Default::default()
            },
            train: TrainConfig {
                epochs: 80,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Errors from [`FusaPipeline::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Every node got the same label; no classifier can be trained.
    /// Usually means the threshold or workload suite needs adjusting.
    DegenerateLabels {
        /// Number of critical nodes found.
        critical: usize,
        /// Total number of nodes.
        total: usize,
    },
    /// The fault campaign itself failed (lost unit result, checkpoint
    /// I/O or a resume/checkpoint mismatch).
    Campaign(CampaignError),
    /// The campaign drained early on an interruption request; ground
    /// truth is partial and no model was trained. Resume the run with
    /// `--resume` to finish the remaining units.
    Interrupted {
        /// Units whose verdicts were completed (including checkpointed).
        completed: usize,
        /// Total scheduled units.
        total: usize,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::DegenerateLabels { critical, total } => write!(
                f,
                "degenerate labels: {critical}/{total} nodes critical; adjust threshold or workloads"
            ),
            PipelineError::Campaign(error) => write!(f, "fault campaign failed: {error}"),
            PipelineError::Interrupted { completed, total } => write!(
                f,
                "campaign interrupted after {completed}/{total} units; resume with --resume"
            ),
        }
    }
}

impl Error for PipelineError {}

/// Everything the pipeline produced for one design.
pub struct FusaAnalysis {
    /// Module name of the analyzed design.
    pub design_name: String,
    /// The circuit graph.
    pub graph: CircuitGraph,
    /// The normalized adjacency `Â` (Eq. 2).
    pub adjacency: CsrMatrix,
    /// Raw (unstandardized) node features.
    pub raw_features: FeatureMatrix,
    /// Standardized node features fed to the models.
    pub features: Matrix,
    /// The fitted standardizer.
    pub standardizer: Standardizer,
    /// Ground-truth criticality scores and labels (Algorithm 1).
    pub dataset: CriticalityDataset,
    /// The 80/20 stratified node split.
    pub split: Split,
    /// The trained classifier.
    pub classifier: crate::model::GcnClassifier,
    /// Training trace.
    pub history: TrainHistory,
    /// Validation evaluation (accuracy, ROC, AUC, …).
    pub evaluation: EvaluationReport,
    /// Number of statically untestable fault sites excluded from the
    /// campaign (0 when exclusion is disabled).
    pub excluded_fault_sites: usize,
    /// Timing/throughput statistics of the fault-injection campaign —
    /// the dominant cost of the pipeline.
    pub campaign_stats: CampaignStats,
    /// Units the campaign quarantined after repeated panics (empty on a
    /// clean run). Their faults default to benign in the ground truth.
    pub campaign_quarantined: Vec<QuarantinedUnit>,
}

impl fmt::Debug for FusaAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FusaAnalysis")
            .field("design_name", &self.design_name)
            .field("nodes", &self.graph.node_count())
            .field("accuracy", &self.evaluation.accuracy)
            .field("auc", &self.evaluation.auc)
            .finish()
    }
}

impl FusaAnalysis {
    /// Ground-truth labels, one per node.
    pub fn labels(&self) -> &[bool] {
        self.dataset.labels()
    }

    /// Builds a GNN explainer over the trained classifier.
    pub fn explainer(&self, config: ExplainerConfig) -> Explainer<'_> {
        Explainer::new(&self.classifier, &self.graph, &self.features, config)
    }

    /// Trains the §3.4 regression variant against the Algorithm-1
    /// criticality scores; returns the regressor and per-node predicted
    /// scores.
    pub fn train_regressor(&self, train: &TrainConfig) -> (GcnRegressor, Vec<f64>) {
        let model_config = GcnConfig {
            in_features: self.features.cols(),
            ..self.classifier.config().clone()
        };
        let (model, _history, predictions) = train_regressor(
            &self.adjacency,
            &self.features,
            self.dataset.scores(),
            &self.split,
            model_config,
            train,
        );
        (model, predictions)
    }

    /// Conformity between regression scores and classifier predictions:
    /// fraction of validation nodes where thresholding the regression
    /// score agrees with the classifier's predicted class (§4.2.2
    /// reports > 85%).
    pub fn regression_conformity(&self, predicted_scores: &[f64]) -> f64 {
        let threshold = self.dataset.threshold();
        if self.split.validation.is_empty() {
            return 0.0;
        }
        let agree = self
            .split
            .validation
            .iter()
            .filter(|&&i| (predicted_scores[i] >= threshold) == self.evaluation.predicted_labels[i])
            .count();
        agree as f64 / self.split.validation.len() as f64
    }
}

/// The end-to-end pipeline (Figure 2 of the paper).
///
/// # Example
///
/// ```no_run
/// use fusa_gcn::pipeline::{FusaPipeline, PipelineConfig};
/// use fusa_netlist::designs::sdram_ctrl;
///
/// # fn main() -> Result<(), fusa_gcn::pipeline::PipelineError> {
/// let analysis = FusaPipeline::new(PipelineConfig::default()).run(&sdram_ctrl())?;
/// println!("{} critical nodes", analysis.dataset.critical_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FusaPipeline {
    config: PipelineConfig,
    campaign_durability: DurabilityConfig,
}

impl FusaPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> FusaPipeline {
        FusaPipeline {
            config,
            campaign_durability: DurabilityConfig::default(),
        }
    }

    /// Installs campaign durability options (checkpointing, resume,
    /// retry budget, interruption flag). `PipelineConfig` stays `Clone +
    /// PartialEq`-comparable; the durability knobs ride alongside it.
    pub fn with_campaign_durability(mut self, durability: DurabilityConfig) -> Self {
        self.campaign_durability = durability;
        self
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full flow on one design.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::DegenerateLabels`] if the fault campaign
    /// labels every node identically (no classification task exists).
    pub fn run(&self, netlist: &Netlist) -> Result<FusaAnalysis, PipelineError> {
        let obs = fusa_obs::global();

        // 1. Graph generation (§3.1).
        let (graph, adjacency) = {
            let _span = obs.span("graph");
            let graph = CircuitGraph::from_netlist(netlist);
            let adjacency = normalized_adjacency(&graph);
            (graph, adjacency)
        };

        // 2. Feature extraction (§3.1), optionally extended with the
        // simulation-free structural channels.
        let (raw_features, standardizer, features) = {
            let _span = obs.span("features");
            let stats = SignalStats::estimate(netlist, &self.config.signal_stats);
            let raw_features = if self.config.structural_features {
                let profile = StructuralProfile::analyze(netlist);
                FeatureMatrix::extract_with_structure(netlist, &stats, &profile)
            } else {
                FeatureMatrix::extract(netlist, &stats)
            };
            let standardizer = Standardizer::fit(raw_features.matrix());
            let features = standardizer.transform(raw_features.matrix());
            (raw_features, standardizer, features)
        };

        // 3. Fault-injection ground truth (§3.2, Algorithm 1).
        // Statically untestable sites (constant or unobservable gates)
        // are dropped up front: no workload can expose them, so their
        // gates score 0 either way and the campaign shrinks for free.
        let (faults, excluded_fault_sites) = {
            let _span = obs.span("fault-list");
            let full_faults = FaultList::all_gate_outputs(netlist);
            if self.config.exclude_untestable_faults {
                let untestable = fusa_lint::untestable_stuck_at_sites(netlist);
                let total = full_faults.len();
                let kept = full_faults.exclude_untestable(&untestable);
                let excluded = total - kept.len();
                (kept, excluded)
            } else {
                (full_faults, 0)
            }
        };
        obs.add("pipeline.faults", faults.len() as u64);
        obs.add("pipeline.excluded_fault_sites", excluded_fault_sites as u64);
        let workloads = WorkloadSuite::generate(netlist, &self.config.workloads);
        // FaultCampaign::run opens its own top-level "campaign" span so
        // direct callers (`fusa faults`) get the same breakdown.
        let report = FaultCampaign::new(self.config.campaign)
            .with_durability(self.campaign_durability.clone())
            .run(netlist, &faults, &workloads)
            .map_err(PipelineError::Campaign)?;
        if report.interrupted() {
            let stats = report.stats();
            return Err(PipelineError::Interrupted {
                completed: stats.units - stats.units_skipped - stats.units_quarantined,
                total: stats.units,
            });
        }
        let campaign_stats = report.stats().clone();
        let campaign_quarantined = report.quarantined().to_vec();
        let dataset = report.into_dataset(self.config.criticality_threshold);

        let critical = dataset.critical_count();
        let total = dataset.labels().len();
        if critical == 0 || critical == total {
            return Err(PipelineError::DegenerateLabels { critical, total });
        }

        // 4. Split and train (§3.3).
        let split = Split::stratified(
            dataset.labels(),
            self.config.train_fraction,
            self.config.split_seed,
        );
        let model_config = GcnConfig {
            in_features: features.cols(),
            ..self.config.model.clone()
        };
        let (classifier, history, evaluation) = obs.time("train", || {
            train_classifier(
                &adjacency,
                &features,
                dataset.labels(),
                &split,
                model_config,
                &self.config.train,
            )
        });

        Ok(FusaAnalysis {
            design_name: netlist.name().to_string(),
            graph,
            adjacency,
            raw_features,
            features,
            standardizer,
            dataset,
            split,
            classifier,
            history,
            evaluation,
            excluded_fault_sites,
            campaign_stats,
            campaign_quarantined,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusa_netlist::designs::or1200_icfsm;

    fn fast_analysis() -> FusaAnalysis {
        FusaPipeline::new(PipelineConfig::fast())
            .run(&or1200_icfsm())
            .expect("pipeline runs on icfsm")
    }

    #[test]
    fn pipeline_produces_consistent_shapes() {
        let analysis = fast_analysis();
        let n = analysis.graph.node_count();
        assert_eq!(analysis.features.rows(), n);
        assert_eq!(analysis.dataset.labels().len(), n);
        assert_eq!(analysis.evaluation.predicted_labels.len(), n);
        assert_eq!(analysis.split.len(), n);
    }

    #[test]
    fn pipeline_learns_something() {
        let analysis = fast_analysis();
        // Much better than chance on a balanced-ish task.
        assert!(
            analysis.evaluation.accuracy > 0.6,
            "accuracy {}",
            analysis.evaluation.accuracy
        );
        assert!(
            analysis.evaluation.auc > 0.6,
            "auc {}",
            analysis.evaluation.auc
        );
    }

    #[test]
    fn untestable_sites_are_excluded_by_default() {
        let analysis = fast_analysis();
        assert!(
            analysis.excluded_fault_sites > 0,
            "icfsm has unobservable logic; some sites must be excluded"
        );
        assert!(analysis.excluded_fault_sites < 2 * analysis.graph.node_count());
        // Gates with excluded faults still get labels (score 0).
        assert_eq!(analysis.dataset.labels().len(), analysis.graph.node_count());
    }

    #[test]
    fn exclusion_can_be_disabled() {
        let config = PipelineConfig {
            exclude_untestable_faults: false,
            ..PipelineConfig::fast()
        };
        let analysis = FusaPipeline::new(config)
            .run(&or1200_icfsm())
            .expect("pipeline runs without exclusion");
        assert_eq!(analysis.excluded_fault_sites, 0);
    }

    #[test]
    fn structural_features_widen_the_model_input() {
        let config = PipelineConfig {
            structural_features: true,
            ..PipelineConfig::fast()
        };
        let analysis = FusaPipeline::new(config)
            .run(&or1200_icfsm())
            .expect("pipeline runs with structural features");
        let expected = fusa_graph::FEATURE_COUNT + fusa_graph::STRUCTURAL_FEATURE_COUNT;
        assert_eq!(analysis.features.cols(), expected);
        assert_eq!(analysis.classifier.config().in_features, expected);
        assert!(
            analysis.evaluation.accuracy > 0.6,
            "accuracy {}",
            analysis.evaluation.accuracy
        );
    }

    #[test]
    fn campaign_stats_are_populated() {
        let analysis = fast_analysis();
        let stats = &analysis.campaign_stats;
        assert!(stats.wall_seconds > 0.0);
        assert!(stats.fault_cycles > 0);
        assert!(stats.fault_cycles_per_second() > 0.0);
        assert!(
            stats.gate_evals < stats.gate_evals_full,
            "cone restriction should save work on icfsm"
        );
    }

    #[test]
    fn labels_are_mixed() {
        let analysis = fast_analysis();
        let critical = analysis.dataset.critical_count();
        let total = analysis.dataset.labels().len();
        assert!(critical > 0 && critical < total, "{critical}/{total}");
    }

    #[test]
    fn regressor_conforms_with_classifier() {
        let analysis = fast_analysis();
        let (_regressor, scores) = analysis.train_regressor(&TrainConfig {
            epochs: 80,
            ..Default::default()
        });
        let conformity = analysis.regression_conformity(&scores);
        assert!(conformity > 0.6, "conformity {conformity}");
    }

    #[test]
    fn explainer_runs_on_pipeline_output() {
        let analysis = fast_analysis();
        let explainer = analysis.explainer(ExplainerConfig {
            iterations: 10,
            ..Default::default()
        });
        let node = analysis.split.validation[0];
        let explanation = explainer.explain(node);
        assert_eq!(explanation.feature_importance.len(), 5);
    }

    #[test]
    fn debug_format_mentions_design() {
        let analysis = fast_analysis();
        let text = format!("{analysis:?}");
        assert!(text.contains("or1200_icfsm"));
    }
}
