//! GNNExplainer-style interpretation of GCN predictions (§3.5).
//!
//! For a target node the explainer learns, by gradient descent against
//! the *trained, frozen* model:
//!
//! * a **feature mask** `σ(φ) ∈ (0,1)^F` multiplying every feature
//!   column, and
//! * an **edge mask** `σ(θ) ∈ (0,1)^E` multiplying every undirected
//!   edge's weight in the normalized adjacency (self-loops stay fixed),
//!
//! maximizing the model's log-probability of its original prediction
//! while size and entropy penalties push both masks towards sparse,
//! binary explanations — the mutual-information objective of
//! GNNExplainer (Ying et al., NeurIPS 2019).
//!
//! Aggregating per-node explanations yields the global feature ranking of
//! Equation 3 / Figure 5(b).

use crate::model::GcnClassifier;
use fusa_graph::{feature_names, masked_adjacency, CircuitGraph};
use fusa_neuro::layers::sigmoid;
use fusa_neuro::optim::Adam;
use fusa_neuro::{Matrix, Param};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Hyper-parameters of the mask optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainerConfig {
    /// Gradient-descent iterations per node (the paper passes an
    /// iteration count when building the explainer object).
    pub iterations: usize,
    /// Adam learning rate for the mask logits.
    pub learning_rate: f64,
    /// Size penalty on the edge mask (λ · Σ σ(θ)).
    pub edge_size_penalty: f64,
    /// Size penalty on the feature mask.
    pub feature_size_penalty: f64,
    /// Entropy penalty pushing masks towards 0/1.
    pub entropy_penalty: f64,
    /// Seed for mask initialization.
    pub seed: u64,
}

impl Default for ExplainerConfig {
    fn default() -> Self {
        ExplainerConfig {
            iterations: 100,
            learning_rate: 0.1,
            edge_size_penalty: 0.005,
            feature_size_penalty: 0.05,
            entropy_penalty: 0.05,
            seed: 0xE81A,
        }
    }
}

/// The explanation of one node's classification.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The explained node (gate index).
    pub node: usize,
    /// The model's predicted class (0 = Non-critical, 1 = Critical).
    pub predicted_class: usize,
    /// Optimized feature mask values `σ(φ)` in `(0,1)`, one per feature.
    pub feature_mask: Vec<f64>,
    /// Feature importance scores scaled so that the average feature has
    /// score 1 (Table 2 / Figure 5(a) style): `F · σ(φ_c) / Σ σ(φ)`.
    pub feature_importance: Vec<f64>,
    /// Edges of the node's computation subgraph with their mask values,
    /// sorted by descending importance.
    pub edge_importance: Vec<(usize, usize, f64)>,
    /// Prediction-loss trace over the optimization.
    pub loss_trace: Vec<f64>,
}

impl Explanation {
    /// Features ranked most-important first, as `(name, score)` pairs.
    pub fn ranked_features(&self) -> Vec<(&'static str, f64)> {
        let mut ranked: Vec<(usize, f64)> = self
            .feature_importance
            .iter()
            .copied()
            .enumerate()
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN scores"));
        let names = feature_names(self.feature_importance.len());
        ranked.into_iter().map(|(i, s)| (names[i], s)).collect()
    }

    /// 1-based rank of each feature (rank 1 = most important), in
    /// feature-column order. Used by Equation 3.
    pub fn feature_ranks(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.feature_importance.len()).collect();
        order.sort_by(|&a, &b| {
            self.feature_importance[b]
                .partial_cmp(&self.feature_importance[a])
                .expect("no NaN scores")
        });
        let mut ranks = vec![0usize; self.feature_importance.len()];
        for (rank, &feature) in order.iter().enumerate() {
            ranks[feature] = rank + 1;
        }
        ranks
    }
}

/// Globally aggregated feature importance (Figure 5(b), Equation 3).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalFeatureImportance {
    /// Mean importance score per feature.
    pub mean_scores: Vec<f64>,
    /// Mean 1-based rank per feature (`Avg_FeatureRank` of Eq. 3 —
    /// lower is more important).
    pub mean_ranks: Vec<f64>,
    /// Number of nodes aggregated.
    pub nodes_explained: usize,
}

impl GlobalFeatureImportance {
    /// Features ordered most-important first by mean rank.
    pub fn ranking(&self) -> Vec<(&'static str, f64)> {
        let mut order: Vec<usize> = (0..self.mean_ranks.len()).collect();
        order.sort_by(|&a, &b| {
            self.mean_ranks[a]
                .partial_cmp(&self.mean_ranks[b])
                .expect("no NaN ranks")
        });
        let names = feature_names(self.mean_ranks.len());
        order
            .into_iter()
            .map(|i| (names[i], self.mean_ranks[i]))
            .collect()
    }
}

/// Post-hoc explainer bound to a trained model and its graph inputs.
pub struct Explainer<'a> {
    model: &'a GcnClassifier,
    graph: &'a CircuitGraph,
    features: &'a Matrix,
    config: ExplainerConfig,
    /// CSR entry index → undirected edge index (None for self-loops).
    entry_to_edge: Vec<Option<usize>>,
    /// Unmasked normalization value of every CSR entry.
    base_values: Vec<f64>,
}

impl<'a> Explainer<'a> {
    /// Builds an explainer for the given trained model.
    pub fn new(
        model: &'a GcnClassifier,
        graph: &'a CircuitGraph,
        features: &'a Matrix,
        config: ExplainerConfig,
    ) -> Explainer<'a> {
        // Precompute the CSR-entry → edge mapping on the fully-unmasked
        // adjacency (same sparsity pattern as every masked variant).
        let full = masked_adjacency(graph, &vec![1.0; graph.edge_count()]);
        let mut edge_index: HashMap<(usize, usize), usize> = HashMap::new();
        for (i, &(a, b)) in graph.edges().iter().enumerate() {
            edge_index.insert((a, b), i);
        }
        let mut entry_to_edge = Vec::with_capacity(full.nnz());
        let mut base_values = Vec::with_capacity(full.nnz());
        for (r, c, v) in full.triplets() {
            base_values.push(v);
            if r == c {
                entry_to_edge.push(None);
            } else {
                let key = (r.min(c), r.max(c));
                entry_to_edge.push(Some(edge_index[&key]));
            }
        }
        Explainer {
            model,
            graph,
            features,
            config,
            entry_to_edge,
            base_values,
        }
    }

    /// Explains the classification of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node >= graph.node_count()`.
    pub fn explain(&self, node: usize) -> Explanation {
        assert!(node < self.graph.node_count(), "node out of range");
        let obs = fusa_obs::global();
        let _span = obs.span("explain");
        obs.add("explain.nodes", 1);
        obs.add("explain.iterations", self.config.iterations as u64);
        let num_edges = self.graph.edge_count();
        let num_features = self.features.cols();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ node as u64);

        // Mask logits initialized near σ≈0.5 (maximum gradient flow,
        // GNNExplainer's recommended regime) with slight noise so
        // symmetric edges can differentiate.
        let mut edge_logits = Param::new(Matrix::from_vec(
            1,
            num_edges.max(1),
            (0..num_edges.max(1))
                .map(|_| rng.gen_range(-0.1..0.1))
                .collect(),
        ));
        let mut feature_logits = Param::new(Matrix::from_vec(
            1,
            num_features,
            (0..num_features)
                .map(|_| rng.gen_range(-0.1..0.1))
                .collect(),
        ));
        let mut optimizer = Adam::new(self.config.learning_rate);
        let mut model = self.model.clone();

        // The explanation targets the model's own unmasked prediction.
        let baseline = masked_adjacency(self.graph, &vec![1.0; num_edges]);
        let predicted_class = model
            .forward_inference(&baseline, self.features)
            .argmax_rows()[node];

        let mut loss_trace = Vec::with_capacity(self.config.iterations);
        for _ in 0..self.config.iterations {
            let edge_mask: Vec<f64> = (0..num_edges)
                .map(|e| sigmoid(edge_logits.value.get(0, e)))
                .collect();
            let feature_mask: Vec<f64> = (0..num_features)
                .map(|c| sigmoid(feature_logits.value.get(0, c)))
                .collect();

            let adj = masked_adjacency(self.graph, &edge_mask);
            let mut masked_x = self.features.clone();
            for r in 0..masked_x.rows() {
                for (c, v) in masked_x.row_mut(r).iter_mut().enumerate() {
                    *v *= feature_mask[c];
                }
            }

            let log_probs = model.forward(&adj, &masked_x, false);
            let prediction_loss = -log_probs.get(node, predicted_class);
            loss_trace.push(prediction_loss);

            let mut grad_lp = Matrix::zeros(log_probs.rows(), log_probs.cols());
            grad_lp.set(node, predicted_class, -1.0);
            let (grad_x, entry_grads) = model.backward_with_edge_grads(&adj, &grad_lp);

            edge_logits.zero_grad();
            feature_logits.zero_grad();

            // Chain rule into the edge logits.
            for (k, entry_grad) in entry_grads.iter().enumerate() {
                if let Some(e) = self.entry_to_edge[k] {
                    let s = edge_mask[e];
                    let g = entry_grad * self.base_values[k] * s * (1.0 - s);
                    edge_logits.grad.set(0, e, edge_logits.grad.get(0, e) + g);
                }
            }
            // Regularizers on the edge mask.
            for (e, &s) in edge_mask.iter().enumerate().take(num_edges) {
                let ds = s * (1.0 - s);
                let mut g = edge_logits.grad.get(0, e);
                g += self.config.edge_size_penalty * ds;
                g += self.config.entropy_penalty * entropy_grad(s) * ds;
                edge_logits.grad.set(0, e, g);
            }

            // Chain rule into the feature logits.
            for (c, &s) in feature_mask.iter().enumerate().take(num_features) {
                let ds = s * (1.0 - s);
                let mut g = 0.0;
                for r in 0..grad_x.rows() {
                    g += grad_x.get(r, c) * self.features.get(r, c);
                }
                g *= ds;
                g += self.config.feature_size_penalty * ds;
                g += self.config.entropy_penalty * entropy_grad(s) * ds;
                feature_logits.grad.set(0, c, g);
            }

            optimizer.step(&mut [&mut edge_logits, &mut feature_logits]);
        }

        let feature_mask: Vec<f64> = (0..num_features)
            .map(|c| sigmoid(feature_logits.value.get(0, c)))
            .collect();
        let mask_sum: f64 = feature_mask.iter().sum();
        let feature_importance: Vec<f64> = feature_mask
            .iter()
            .map(|&m| {
                if mask_sum > 0.0 {
                    m * num_features as f64 / mask_sum
                } else {
                    0.0
                }
            })
            .collect();

        // Restrict reported edges to the node's computation subgraph.
        let hops = self.model.config().hidden.len() + 1;
        let neighborhood: std::collections::HashSet<usize> = self
            .graph
            .k_hop_neighborhood(node, hops)
            .into_iter()
            .collect();
        let mut edge_importance: Vec<(usize, usize, f64)> = self
            .graph
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, (a, b))| neighborhood.contains(a) && neighborhood.contains(b))
            .map(|(e, &(a, b))| (a, b, sigmoid(edge_logits.value.get(0, e))))
            .collect();
        edge_importance.sort_by(|x, y| y.2.partial_cmp(&x.2).expect("no NaN"));

        Explanation {
            node,
            predicted_class,
            feature_mask,
            feature_importance,
            edge_importance,
            loss_trace,
        }
    }

    /// Explains every node in `nodes` and aggregates mean scores and the
    /// Equation-3 average feature ranks.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or contains an out-of-range node.
    pub fn global_importance(&self, nodes: &[usize]) -> GlobalFeatureImportance {
        assert!(!nodes.is_empty(), "need at least one node to aggregate");
        let num_features = self.features.cols();
        let mut score_sums = vec![0.0; num_features];
        let mut rank_sums = vec![0.0; num_features];
        for &node in nodes {
            let explanation = self.explain(node);
            for (s, &v) in score_sums.iter_mut().zip(&explanation.feature_importance) {
                *s += v;
            }
            for (r, &rank) in rank_sums.iter_mut().zip(&explanation.feature_ranks()) {
                *r += rank as f64;
            }
        }
        let n = nodes.len() as f64;
        GlobalFeatureImportance {
            mean_scores: score_sums.iter().map(|&s| s / n).collect(),
            mean_ranks: rank_sums.iter().map(|&r| r / n).collect(),
            nodes_explained: nodes.len(),
        }
    }
}

/// `dH/dσ` for the Bernoulli entropy `H(σ)` (pushes masks to 0/1).
fn entropy_grad(s: f64) -> f64 {
    let s = s.clamp(1e-6, 1.0 - 1e-6);
    ((1.0 - s) / s).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GcnConfig;
    use crate::train::{train_classifier, TrainConfig};
    use fusa_graph::{FEATURE_COUNT, FEATURE_NAMES};
    use fusa_neuro::split::Split;

    /// Builds a task where exactly one feature column determines the
    /// label, trains a GCN on it, and checks the explainer recovers that
    /// column.
    fn single_feature_task() -> (CircuitGraph, Matrix, GcnClassifier) {
        // A ring graph over 24 nodes.
        let netlist = ring_netlist(24);
        let graph = CircuitGraph::from_netlist(&netlist);
        let adj = fusa_graph::normalized_adjacency(&graph);

        let n = graph.node_count();
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let decisive = if i % 2 == 0 { 1.0 } else { -1.0 };
            let noise1 = ((i * 37) % 11) as f64 / 11.0 - 0.5;
            let noise2 = ((i * 53) % 7) as f64 / 7.0 - 0.5;
            // Feature layout: col 2 is decisive, others noise/constant.
            rows.push(vec![noise1, noise2, decisive, 0.3, noise1 * 0.1]);
            labels.push(i % 2 == 0);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&row_refs);

        let split = Split::stratified(&labels, 0.8, 4);
        let (model, _, eval) = train_classifier(
            &adj,
            &x,
            &labels,
            &split,
            GcnConfig {
                in_features: 5,
                hidden: vec![8],
                dropout: 0.0,
                seed: 6,
            },
            &TrainConfig {
                epochs: 150,
                learning_rate: 0.05,
                weight_decay: 0.0,
                keep_best: true,
            },
        );
        assert!(eval.accuracy > 0.9, "setup: model must learn the task");
        (graph, x, model)
    }

    fn ring_netlist(n: usize) -> fusa_netlist::Netlist {
        use fusa_netlist::{GateKind, NetlistBuilder};
        let mut b = NetlistBuilder::new("ring");
        let a = b.primary_input("a");
        let first = b.gate(GateKind::Buf, &[a]);
        let mut prev = first;
        for _ in 1..n {
            prev = b.gate(GateKind::Inv, &[prev]);
        }
        b.primary_output("z", prev);
        b.finish().unwrap()
    }

    #[test]
    fn explainer_finds_the_decisive_feature() {
        let (graph, x, model) = single_feature_task();
        let explainer = Explainer::new(
            &model,
            &graph,
            &x,
            ExplainerConfig {
                iterations: 80,
                ..Default::default()
            },
        );
        let explanation = explainer.explain(4);
        let top = explanation.ranked_features()[0];
        assert_eq!(
            top.0,
            FEATURE_NAMES[2],
            "decisive feature should rank first: {:?}",
            explanation.ranked_features()
        );
    }

    #[test]
    fn feature_ranks_are_a_permutation() {
        let (graph, x, model) = single_feature_task();
        let explainer = Explainer::new(
            &model,
            &graph,
            &x,
            ExplainerConfig {
                iterations: 10,
                ..Default::default()
            },
        );
        let explanation = explainer.explain(0);
        let mut ranks = explanation.feature_ranks();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn importance_scores_average_to_one() {
        let (graph, x, model) = single_feature_task();
        let explainer = Explainer::new(
            &model,
            &graph,
            &x,
            ExplainerConfig {
                iterations: 20,
                ..Default::default()
            },
        );
        let explanation = explainer.explain(2);
        let mean: f64 = explanation.feature_importance.iter().sum::<f64>() / FEATURE_COUNT as f64;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prediction_loss_decreases_or_stays_low() {
        let (graph, x, model) = single_feature_task();
        let explainer = Explainer::new(
            &model,
            &graph,
            &x,
            ExplainerConfig {
                iterations: 60,
                ..Default::default()
            },
        );
        let explanation = explainer.explain(6);
        let first = explanation.loss_trace[0];
        let last = *explanation.loss_trace.last().unwrap();
        // The masked prediction should remain at least as confident as it
        // started (the masks learn to keep what matters).
        assert!(last <= first + 0.1, "first {first}, last {last}");
    }

    #[test]
    fn edge_importance_is_restricted_to_neighborhood() {
        let (graph, x, model) = single_feature_task();
        let explainer = Explainer::new(
            &model,
            &graph,
            &x,
            ExplainerConfig {
                iterations: 5,
                ..Default::default()
            },
        );
        let node = 10;
        let explanation = explainer.explain(node);
        let hops = model.config().hidden.len() + 1;
        let hood: std::collections::HashSet<usize> =
            graph.k_hop_neighborhood(node, hops).into_iter().collect();
        for &(a, b, _) in &explanation.edge_importance {
            assert!(hood.contains(&a) && hood.contains(&b));
        }
    }

    #[test]
    fn global_importance_aggregates_ranks() {
        let (graph, x, model) = single_feature_task();
        let explainer = Explainer::new(
            &model,
            &graph,
            &x,
            ExplainerConfig {
                iterations: 40,
                ..Default::default()
            },
        );
        let global = explainer.global_importance(&[0, 3, 7, 12]);
        assert_eq!(global.nodes_explained, 4);
        // Ranks are averages of 1..=5.
        for &r in &global.mean_ranks {
            assert!((1.0..=5.0).contains(&r));
        }
        // The decisive feature should have the best (lowest) mean rank.
        let best = global
            .mean_ranks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 2, "ranks {:?}", global.mean_ranks);
    }
}
