//! Human-readable and CSV reports over a completed [`FusaAnalysis`].
//!
//! The paper's framework exists to hand a safety engineer a ranked,
//! explained criticality landscape; this module renders exactly that:
//! a summary header, the confusion matrix, the top predicted-critical
//! nodes with ground truth, and a per-node CSV suitable for downstream
//! tooling.

use crate::pipeline::FusaAnalysis;
use std::fmt::Write as _;

/// Options for [`render_text_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportOptions {
    /// Number of top-ranked nodes to list.
    pub top_nodes: usize,
    /// Include the per-epoch training trace.
    pub include_history: bool,
    /// Include the campaign wall-time / throughput line. Disable when the
    /// text feeds a reproducibility digest: every other line of the
    /// report is deterministic for a seeded run, timing never is.
    pub include_stats: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            top_nodes: 15,
            include_history: false,
            include_stats: true,
        }
    }
}

/// Renders a complete text report for one analyzed design.
///
/// # Example
///
/// ```no_run
/// use fusa_gcn::pipeline::{FusaPipeline, PipelineConfig};
/// use fusa_gcn::report::{render_text_report, ReportOptions};
/// use fusa_netlist::designs::or1200_icfsm;
///
/// # fn main() -> Result<(), fusa_gcn::pipeline::PipelineError> {
/// let analysis = FusaPipeline::new(PipelineConfig::fast()).run(&or1200_icfsm())?;
/// println!("{}", render_text_report(&analysis, &or1200_icfsm(), &ReportOptions::default()));
/// # Ok(())
/// # }
/// ```
pub fn render_text_report(
    analysis: &FusaAnalysis,
    netlist: &fusa_netlist::Netlist,
    options: &ReportOptions,
) -> String {
    let mut out = String::new();
    let evaluation = &analysis.evaluation;
    let confusion = &evaluation.confusion;

    let _ = writeln!(
        out,
        "=== Fault criticality report: {} ===",
        analysis.design_name
    );
    let _ = writeln!(
        out,
        "nodes {} | edges {} | critical {} ({:.1}%) | workloads {}",
        analysis.graph.node_count(),
        analysis.graph.edge_count(),
        analysis.dataset.critical_count(),
        analysis.dataset.critical_fraction() * 100.0,
        analysis.dataset.workload_count(),
    );
    let _ = writeln!(
        out,
        "split: {} train / {} validation (stratified)",
        analysis.split.train.len(),
        analysis.split.validation.len(),
    );
    if analysis.excluded_fault_sites > 0 {
        let _ = writeln!(
            out,
            "fault list: {} statically untestable site(s) excluded by lint",
            analysis.excluded_fault_sites,
        );
    }
    let stats = &analysis.campaign_stats;
    if options.include_stats && stats.wall_seconds > 0.0 {
        let _ = writeln!(
            out,
            "campaign: {:.0} fault-cycles/s ({:.2}s wall, {} threads, {:.1}% gate-evals saved)",
            stats.fault_cycles_per_second(),
            stats.wall_seconds,
            stats.threads,
            stats.gate_evals_saved_fraction() * 100.0,
        );
    }
    let _ = writeln!(
        out,
        "\nvalidation accuracy {:.2}% | AUC {:.3} | precision {:.3} | recall {:.3} | F1 {:.3}",
        evaluation.accuracy * 100.0,
        evaluation.auc,
        confusion.precision(),
        confusion.true_positive_rate(),
        confusion.f1(),
    );
    let _ = writeln!(
        out,
        "confusion: TP {} FP {} TN {} FN {}",
        confusion.true_positive,
        confusion.false_positive,
        confusion.true_negative,
        confusion.false_negative,
    );

    let mut ranked: Vec<(usize, f64)> = evaluation
        .critical_probability
        .iter()
        .copied()
        .enumerate()
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    let _ = writeln!(out, "\ntop predicted-critical nodes:");
    let _ = writeln!(
        out,
        "  {:<24} {:>10} {:>12} {:>8}",
        "node", "P(crit)", "truth score", "held-out"
    );
    for (node, probability) in ranked.into_iter().take(options.top_nodes) {
        let _ = writeln!(
            out,
            "  {:<24} {:>10.3} {:>12.2} {:>8}",
            netlist.gates()[node].name,
            probability,
            analysis.dataset.scores()[node],
            if analysis.split.validation.contains(&node) {
                "yes"
            } else {
                ""
            },
        );
    }

    if options.include_history {
        let _ = writeln!(out, "\ntraining trace (epoch, loss, val acc):");
        for (epoch, (loss, metric)) in analysis
            .history
            .train_loss
            .iter()
            .zip(&analysis.history.validation_metric)
            .enumerate()
            .step_by(10)
        {
            let _ = writeln!(out, "  {epoch:>4} {loss:>9.4} {metric:>8.3}");
        }
        let _ = writeln!(out, "best epoch: {}", analysis.history.best_epoch);
    }
    out
}

/// Renders the full per-node prediction table as CSV:
/// `node,predicted_critical,critical_probability,truth_score,truth_label,partition`.
pub fn render_csv_report(analysis: &FusaAnalysis, netlist: &fusa_netlist::Netlist) -> String {
    let mut out = String::from(
        "node,predicted_critical,critical_probability,truth_score,truth_label,partition\n",
    );
    let in_validation: std::collections::HashSet<usize> =
        analysis.split.validation.iter().copied().collect();
    for (i, gate) in netlist.gates().iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{},{:.4},{:.4},{},{}",
            gate.name,
            u8::from(analysis.evaluation.predicted_labels[i]),
            analysis.evaluation.critical_probability[i],
            analysis.dataset.scores()[i],
            u8::from(analysis.dataset.labels()[i]),
            if in_validation.contains(&i) {
                "validation"
            } else {
                "train"
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FusaPipeline, PipelineConfig};
    use fusa_netlist::designs::or1200_icfsm;

    fn analysis_pair() -> (FusaAnalysis, fusa_netlist::Netlist) {
        let netlist = or1200_icfsm();
        let analysis = FusaPipeline::new(PipelineConfig::fast())
            .run(&netlist)
            .expect("pipeline runs");
        (analysis, netlist)
    }

    #[test]
    fn text_report_has_all_sections() {
        let (analysis, netlist) = analysis_pair();
        let text = render_text_report(&analysis, &netlist, &ReportOptions::default());
        assert!(text.contains("Fault criticality report: or1200_icfsm"));
        assert!(text.contains("validation accuracy"));
        assert!(text.contains("fault-cycles/s"));
        assert!(text.contains("confusion:"));
        assert!(text.contains("top predicted-critical nodes"));
        assert!(!text.contains("training trace"));
    }

    #[test]
    fn history_section_is_optional() {
        let (analysis, netlist) = analysis_pair();
        let text = render_text_report(
            &analysis,
            &netlist,
            &ReportOptions {
                include_history: true,
                top_nodes: 3,
                ..Default::default()
            },
        );
        assert!(text.contains("training trace"));
        assert!(text.contains("best epoch"));
    }

    #[test]
    fn csv_has_row_per_node_and_partitions() {
        let (analysis, netlist) = analysis_pair();
        let csv = render_csv_report(&analysis, &netlist);
        assert_eq!(csv.lines().count(), 1 + netlist.gate_count());
        assert!(csv.contains(",validation"));
        assert!(csv.contains(",train"));
    }
}
