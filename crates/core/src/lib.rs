//! GCN-based fault criticality analysis — the paper's core contribution.
//!
//! This crate assembles the substrates ([`fusa_netlist`],
//! [`fusa_logicsim`], [`fusa_faultsim`], [`fusa_graph`], [`fusa_neuro`])
//! into the framework of *"Graph Learning-based Fault Criticality
//! Analysis for Enhancing Functional Safety of E/E Systems"* (DAC 2024):
//!
//! * [`model`] — the GCN classifier of Table 1 (GC→ReLU→GC→ReLU→Dropout→
//!   GC→ReLU→GC→LogSoftmax) and its regression variant (§3.4);
//! * [`train`] — masked semi-supervised training, evaluation, and the
//!   grid-search hyper-parameter optimization of §3.3.2;
//! * [`explain`] — a GNNExplainer-style post-hoc explainer (§3.5):
//!   per-node feature/edge masks plus the Eq. 3 global feature ranking;
//! * [`pipeline`] — the end-to-end flow of Figure 2: netlist → graph →
//!   features → fault-injection ground truth → GCN training →
//!   classification, criticality scores and explanations.
//!
//! # Example
//!
//! ```no_run
//! use fusa_gcn::pipeline::{FusaPipeline, PipelineConfig};
//! use fusa_netlist::designs::or1200_icfsm;
//!
//! # fn main() -> Result<(), fusa_gcn::pipeline::PipelineError> {
//! let netlist = or1200_icfsm();
//! let analysis = FusaPipeline::new(PipelineConfig::default()).run(&netlist)?;
//! println!("accuracy {:.1}%", analysis.evaluation.accuracy * 100.0);
//! println!("AUC {:.2}", analysis.evaluation.auc);
//! # Ok(())
//! # }
//! ```

pub mod explain;
pub mod model;
pub mod persist;
pub mod pipeline;
pub mod rank;
pub mod report;
pub mod sgc;
pub mod train;

pub use explain::{Explainer, ExplainerConfig, Explanation, GlobalFeatureImportance};
pub use model::{GcnClassifier, GcnConfig, GcnRegressor};
pub use pipeline::{FusaAnalysis, FusaPipeline, PipelineConfig, PipelineError};
pub use rank::{
    parse_ground_truth, RankEvaluation, StaticRank, CHANNEL_WEIGHTS, RANK_CHANNEL_NAMES,
};
pub use sgc::{SgcClassifier, SgcConfig};
pub use train::{
    train_classifier, train_regressor, EvaluationReport, GridSearch, TrainConfig, TrainHistory,
};
