//! The GCN models: Table-1 classifier and §3.4 regressor.

use fusa_neuro::layers::{Dropout, GraphConv, LogSoftmax, Relu};
use fusa_neuro::{CsrMatrix, Matrix, Param};

/// Architecture hyper-parameters for [`GcnClassifier`] /
/// [`GcnRegressor`].
///
/// The default reproduces Table 1 of the paper: hidden widths
/// `[16, 32, 64]`, one dropout layer (p = 0.3) after the second
/// convolution's ReLU, and a final convolution projecting to the output
/// width (2 classes, or 1 regression score).
#[derive(Debug, Clone, PartialEq)]
pub struct GcnConfig {
    /// Input feature width `F`.
    pub in_features: usize,
    /// Hidden widths of the stacked graph convolutions.
    pub hidden: Vec<usize>,
    /// Dropout probability (applied once, after the second hidden ReLU —
    /// or after the first, for single-hidden-layer configurations).
    pub dropout: f64,
    /// RNG seed for weight initialization and dropout masks.
    pub seed: u64,
}

impl Default for GcnConfig {
    fn default() -> Self {
        GcnConfig {
            in_features: fusa_graph::FEATURE_COUNT,
            hidden: vec![16, 32, 64],
            dropout: 0.3,
            seed: 0x6C4,
        }
    }
}

impl GcnConfig {
    /// Index of the hidden layer whose ReLU output is followed by
    /// dropout (Table 1 places it after the second convolution).
    fn dropout_position(&self) -> usize {
        1.min(self.hidden.len().saturating_sub(1))
    }

    /// Renders the architecture as a Table-1-style listing.
    pub fn summary(&self, out_features: usize, with_log_softmax: bool) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<(String, String, String, String)> = Vec::new();
        let mut prev = "Input".to_string();
        for (i, &width) in self.hidden.iter().enumerate() {
            rows.push((
                "Graph convolutional layer".into(),
                prev.clone(),
                width.to_string(),
                "-".into(),
            ));
            rows.push((
                "Rectified Linear Unit".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ));
            if i == self.dropout_position() && self.dropout > 0.0 {
                rows.push((
                    "Dropout Layer".into(),
                    "-".into(),
                    "-".into(),
                    format!("{}", self.dropout),
                ));
            }
            prev = width.to_string();
        }
        rows.push((
            "Graph convolutional layer".into(),
            prev,
            out_features.to_string(),
            "-".into(),
        ));
        if with_log_softmax {
            rows.push((
                "Log Softmax".into(),
                out_features.to_string(),
                out_features.to_string(),
                "-".into(),
            ));
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<5} {:<28} {:>6} {:>6} {:>8}",
            "Layer", "Type", "In", "Out", "Values"
        );
        for (i, (ty, input, output, values)) in rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<5} {:<28} {:>6} {:>6} {:>8}",
                i + 1,
                ty,
                input,
                output,
                values
            );
        }
        out
    }
}

/// Shared GCN trunk: stacked GraphConv+ReLU with one dropout, then a
/// projection GraphConv.
#[derive(Debug, Clone)]
struct GcnTrunk {
    convs: Vec<GraphConv>,
    relus: Vec<Relu>,
    dropout: Dropout,
    dropout_position: usize,
}

impl GcnTrunk {
    fn new(config: &GcnConfig, out_features: usize) -> GcnTrunk {
        assert!(!config.hidden.is_empty(), "need at least one hidden layer");
        let mut convs = Vec::new();
        let mut widths = vec![config.in_features];
        widths.extend_from_slice(&config.hidden);
        widths.push(out_features);
        for (i, pair) in widths.windows(2).enumerate() {
            convs.push(GraphConv::new(
                pair[0],
                pair[1],
                config.seed.wrapping_add(i as u64 * 7919),
            ));
        }
        let relus = vec![Relu::new(); config.hidden.len()];
        GcnTrunk {
            convs,
            relus,
            dropout: Dropout::new(config.dropout, config.seed.wrapping_add(0xD60)),
            dropout_position: config.dropout_position(),
        }
    }

    /// Caching forward pass. `training` controls dropout.
    fn forward(&mut self, adj: &CsrMatrix, x: &Matrix, training: bool) -> Matrix {
        let mut h = x.clone();
        let hidden_count = self.relus.len();
        for i in 0..hidden_count {
            h = self.convs[i].forward(adj, &h);
            h = self.relus[i].forward(&h);
            if i == self.dropout_position {
                h = if training {
                    self.dropout.forward(&h)
                } else {
                    self.dropout.forward_inference(&h)
                };
            }
        }
        self.convs[hidden_count].forward(adj, &h)
    }

    /// Cache-free inference pass.
    fn forward_inference(&self, adj: &CsrMatrix, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let hidden_count = self.relus.len();
        for i in 0..hidden_count {
            h = self.convs[i].forward_inference(adj, &h);
            h = h.map(|v| v.max(0.0));
        }
        self.convs[hidden_count].forward_inference(adj, &h)
    }

    /// Backward pass. Returns `∂L/∂X`; if `edge_grads` is `Some`, the
    /// per-CSR-entry adjacency gradients of every layer are accumulated
    /// into it.
    fn backward(
        &mut self,
        adj: &CsrMatrix,
        grad_output: &Matrix,
        mut edge_grads: Option<&mut Vec<f64>>,
        training: bool,
    ) -> Matrix {
        let hidden_count = self.relus.len();
        let mut grad = grad_output.clone();
        grad = self.backward_conv(hidden_count, adj, &grad, &mut edge_grads);
        for i in (0..hidden_count).rev() {
            if i == self.dropout_position && training {
                grad = self.dropout.backward(&grad);
            }
            grad = self.relus[i].backward(&grad);
            grad = self.backward_conv(i, adj, &grad, &mut edge_grads);
        }
        grad
    }

    fn backward_conv(
        &mut self,
        index: usize,
        adj: &CsrMatrix,
        grad: &Matrix,
        edge_grads: &mut Option<&mut Vec<f64>>,
    ) -> Matrix {
        match edge_grads {
            Some(acc) => {
                let (grad_x, grads) = self.convs[index].backward_with_edge_grads(adj, grad);
                if acc.is_empty() {
                    **acc = grads;
                } else {
                    for (a, g) in acc.iter_mut().zip(grads) {
                        *a += g;
                    }
                }
                grad_x
            }
            None => self.convs[index].backward(adj, grad),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.convs.iter_mut().flat_map(|c| c.params_mut()).collect()
    }

    fn parameter_count(&self) -> usize {
        self.convs
            .iter()
            .map(|c| {
                c.linear.weight.value.rows() * c.linear.weight.value.cols()
                    + c.linear.bias.value.cols()
            })
            .sum()
    }
}

/// The critical-node classifier of Table 1: four graph convolutions with
/// ReLU activations, one dropout, and a log-softmax output over the two
/// classes `{Non-critical, Critical}`.
///
/// # Example
///
/// ```
/// use fusa_gcn::{GcnClassifier, GcnConfig};
/// use fusa_neuro::{CsrMatrix, Matrix};
///
/// let config = GcnConfig { in_features: 2, hidden: vec![4], ..Default::default() };
/// let mut model = GcnClassifier::new(config);
/// let adj = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
/// let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
/// let log_probs = model.forward(&adj, &x, false);
/// assert_eq!(log_probs.shape(), (2, 2));
/// ```
#[derive(Debug, Clone)]
pub struct GcnClassifier {
    config: GcnConfig,
    trunk: GcnTrunk,
    log_softmax: LogSoftmax,
}

/// Number of output classes (Critical / Non-critical).
pub const NUM_CLASSES: usize = 2;

impl GcnClassifier {
    /// Builds a freshly initialized classifier.
    ///
    /// # Panics
    ///
    /// Panics if `config.hidden` is empty.
    pub fn new(config: GcnConfig) -> GcnClassifier {
        GcnClassifier {
            trunk: GcnTrunk::new(&config, NUM_CLASSES),
            log_softmax: LogSoftmax::new(),
            config,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &GcnConfig {
        &self.config
    }

    /// Caching forward pass returning per-node log class probabilities
    /// (`N × 2`). Set `training` for dropout.
    pub fn forward(&mut self, adj: &CsrMatrix, x: &Matrix, training: bool) -> Matrix {
        let logits = self.trunk.forward(adj, x, training);
        self.log_softmax.forward(&logits)
    }

    /// Cache-free inference pass.
    pub fn forward_inference(&self, adj: &CsrMatrix, x: &Matrix) -> Matrix {
        fusa_neuro::layers::log_softmax_rows(&self.trunk.forward_inference(adj, x))
    }

    /// Backward pass from the log-probability gradient. Returns
    /// `∂L/∂X`.
    pub fn backward(&mut self, adj: &CsrMatrix, grad_log_probs: &Matrix, training: bool) -> Matrix {
        let grad = self.log_softmax.backward(grad_log_probs);
        self.trunk.backward(adj, &grad, None, training)
    }

    /// Backward pass that also accumulates per-CSR-entry adjacency
    /// gradients (summed over all convolution layers) for the explainer.
    pub fn backward_with_edge_grads(
        &mut self,
        adj: &CsrMatrix,
        grad_log_probs: &Matrix,
    ) -> (Matrix, Vec<f64>) {
        let grad = self.log_softmax.backward(grad_log_probs);
        let mut edge_grads = Vec::new();
        let grad_x = self
            .trunk
            .backward(adj, &grad, Some(&mut edge_grads), false);
        (grad_x, edge_grads)
    }

    /// Per-node predicted class: `argmax` over the output probabilities.
    pub fn predict(&self, adj: &CsrMatrix, x: &Matrix) -> Vec<usize> {
        self.forward_inference(adj, x).argmax_rows()
    }

    /// Per-node probability of the "Critical" class (class 1).
    pub fn predict_critical_probability(&self, adj: &CsrMatrix, x: &Matrix) -> Vec<f64> {
        let log_probs = self.forward_inference(adj, x);
        (0..log_probs.rows())
            .map(|r| log_probs.get(r, 1).exp())
            .collect()
    }

    /// All trainable parameters in a stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.trunk.params_mut()
    }

    /// Total scalar parameter count.
    pub fn parameter_count(&self) -> usize {
        self.trunk.parameter_count()
    }

    /// A Table-1-style architecture listing.
    pub fn summary(&self) -> String {
        self.config.summary(NUM_CLASSES, true)
    }
}

/// The criticality-score regressor of §3.4: the classifier trunk with the
/// log-softmax removed and output width 1.
///
/// Scores are trained against the Algorithm-1 criticality fractions and
/// therefore live in `[0, 1]` (predictions are not clamped, matching the
/// paper's plain regression head).
#[derive(Debug, Clone)]
pub struct GcnRegressor {
    config: GcnConfig,
    trunk: GcnTrunk,
}

impl GcnRegressor {
    /// Builds a freshly initialized regressor.
    ///
    /// # Panics
    ///
    /// Panics if `config.hidden` is empty.
    pub fn new(config: GcnConfig) -> GcnRegressor {
        GcnRegressor {
            trunk: GcnTrunk::new(&config, 1),
            config,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &GcnConfig {
        &self.config
    }

    /// Caching forward pass returning an `N × 1` score matrix.
    pub fn forward(&mut self, adj: &CsrMatrix, x: &Matrix, training: bool) -> Matrix {
        self.trunk.forward(adj, x, training)
    }

    /// Cache-free inference pass.
    pub fn forward_inference(&self, adj: &CsrMatrix, x: &Matrix) -> Matrix {
        self.trunk.forward_inference(adj, x)
    }

    /// Backward pass. Returns `∂L/∂X`.
    pub fn backward(&mut self, adj: &CsrMatrix, grad_output: &Matrix, training: bool) -> Matrix {
        self.trunk.backward(adj, grad_output, None, training)
    }

    /// Per-node predicted criticality scores.
    pub fn predict_scores(&self, adj: &CsrMatrix, x: &Matrix) -> Vec<f64> {
        let out = self.forward_inference(adj, x);
        (0..out.rows()).map(|r| out.get(r, 0)).collect()
    }

    /// All trainable parameters in a stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.trunk.params_mut()
    }

    /// A Table-1-style architecture listing (no log-softmax row).
    pub fn summary(&self) -> String {
        self.config.summary(1, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_adj() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 0.5),
                (1, 1, 0.5),
                (2, 2, 0.5),
                (0, 1, 0.5),
                (1, 0, 0.5),
                (1, 2, 0.4),
                (2, 1, 0.4),
            ],
        )
    }

    fn tiny_x() -> Matrix {
        Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.5, 0.5]])
    }

    fn tiny_config() -> GcnConfig {
        GcnConfig {
            in_features: 2,
            hidden: vec![4, 4],
            dropout: 0.0,
            seed: 42,
        }
    }

    #[test]
    fn classifier_outputs_log_probabilities() {
        let mut model = GcnClassifier::new(tiny_config());
        let out = model.forward(&tiny_adj(), &tiny_x(), false);
        assert_eq!(out.shape(), (3, 2));
        for r in 0..3 {
            let total: f64 = out.row(r).iter().map(|&v| v.exp()).sum();
            assert!((total - 1.0).abs() < 1e-9, "row {r} sums to {total}");
        }
    }

    #[test]
    fn training_and_inference_paths_agree_without_dropout() {
        let mut model = GcnClassifier::new(tiny_config());
        let a = model.forward(&tiny_adj(), &tiny_x(), false);
        let b = model.forward_inference(&tiny_adj(), &tiny_x());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn classifier_input_gradient_matches_numeric() {
        let adj = tiny_adj();
        let x = tiny_x();
        let mut model = GcnClassifier::new(tiny_config());
        let targets = [1usize, 0, 1];
        let mask = [0usize, 1, 2];

        let log_probs = model.forward(&adj, &x, false);
        let (_, grad_lp) = fusa_neuro::loss::nll_loss(&log_probs, &targets, &mask);
        let grad_x = model.backward(&adj, &grad_lp, false);

        let frozen = model.clone();
        let eps = 1e-6;
        for r in 0..3 {
            for c in 0..2 {
                let mut plus = x.clone();
                plus.set(r, c, x.get(r, c) + eps);
                let mut minus = x.clone();
                minus.set(r, c, x.get(r, c) - eps);
                let lp = fusa_neuro::loss::nll_loss(
                    &frozen.forward_inference(&adj, &plus),
                    &targets,
                    &mask,
                )
                .0;
                let lm = fusa_neuro::loss::nll_loss(
                    &frozen.forward_inference(&adj, &minus),
                    &targets,
                    &mask,
                )
                .0;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grad_x.get(r, c)).abs() < 1e-5,
                    "({r},{c}): numeric {numeric} vs {}",
                    grad_x.get(r, c)
                );
            }
        }
    }

    #[test]
    fn classifier_edge_gradients_match_numeric() {
        let adj = tiny_adj();
        let x = tiny_x();
        let mut model = GcnClassifier::new(tiny_config());
        let targets = [1usize, 0, 1];
        let mask = [0usize, 2];

        let log_probs = model.forward(&adj, &x, false);
        let (_, grad_lp) = fusa_neuro::loss::nll_loss(&log_probs, &targets, &mask);
        let (_, edge_grads) = model.backward_with_edge_grads(&adj, &grad_lp);

        let frozen = model.clone();
        let eps = 1e-6;
        for k in 0..adj.nnz() {
            let mut vp = adj.values().to_vec();
            vp[k] += eps;
            let mut vm = adj.values().to_vec();
            vm[k] -= eps;
            let lp = fusa_neuro::loss::nll_loss(
                &frozen.forward_inference(&adj.with_values(vp), &x),
                &targets,
                &mask,
            )
            .0;
            let lm = fusa_neuro::loss::nll_loss(
                &frozen.forward_inference(&adj.with_values(vm), &x),
                &targets,
                &mask,
            )
            .0;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - edge_grads[k]).abs() < 1e-5,
                "entry {k}: numeric {numeric} vs {}",
                edge_grads[k]
            );
        }
    }

    #[test]
    fn regressor_outputs_single_column() {
        let mut model = GcnRegressor::new(tiny_config());
        let out = model.forward(&tiny_adj(), &tiny_x(), false);
        assert_eq!(out.shape(), (3, 1));
        assert_eq!(model.predict_scores(&tiny_adj(), &tiny_x()).len(), 3);
    }

    #[test]
    fn default_config_matches_table_1() {
        let config = GcnConfig::default();
        assert_eq!(config.hidden, vec![16, 32, 64]);
        assert_eq!(config.dropout, 0.3);
        let model = GcnClassifier::new(config);
        let summary = model.summary();
        assert!(summary.contains("Log Softmax"), "{summary}");
        assert!(summary.contains("Dropout Layer"), "{summary}");
        // 4 conv layers like Table 1.
        assert_eq!(summary.matches("Graph convolutional layer").count(), 4);
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let model = GcnClassifier::new(tiny_config());
        // conv1: 2*4+4, conv2: 4*4+4, conv3: 4*2+2.
        assert_eq!(model.parameter_count(), 12 + 20 + 10);
    }

    #[test]
    fn predictions_are_argmax_of_probabilities() {
        let model = GcnClassifier::new(tiny_config());
        let preds = model.predict(&tiny_adj(), &tiny_x());
        let probs = model.predict_critical_probability(&tiny_adj(), &tiny_x());
        for (p, pr) in preds.iter().zip(probs) {
            assert_eq!(*p == 1, pr >= 0.5);
        }
    }

    #[test]
    fn dropout_makes_training_stochastic_but_inference_stable() {
        let config = GcnConfig {
            dropout: 0.5,
            ..tiny_config()
        };
        let mut model = GcnClassifier::new(config);
        let a = model.forward(&tiny_adj(), &tiny_x(), true);
        let b = model.forward(&tiny_adj(), &tiny_x(), true);
        assert_ne!(a, b, "dropout masks should differ across calls");
        let c = model.forward_inference(&tiny_adj(), &tiny_x());
        let d = model.forward_inference(&tiny_adj(), &tiny_x());
        assert_eq!(c, d);
    }
}
