//! Trained-model persistence.
//!
//! A trained classifier is the valuable artifact of this framework — it
//! encodes fault-injection knowledge that took a campaign to produce.
//! This module saves and restores [`GcnClassifier`]s in a small,
//! versioned, human-inspectable text format (no external serialization
//! dependency).

use crate::model::{GcnClassifier, GcnConfig};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

const MAGIC: &str = "fusa-gcn-classifier";
const VERSION: u32 = 1;

/// Errors from [`load_classifier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The stream does not start with the expected magic/version line.
    BadHeader,
    /// A structural line (shape, keyword) was malformed.
    Malformed {
        /// Description of what went wrong.
        detail: String,
    },
    /// The parameter payload does not match the declared architecture.
    ShapeMismatch,
    /// Underlying I/O failure, stringified.
    Io {
        /// The I/O error text.
        message: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadHeader => write!(f, "not a fusa-gcn-classifier file"),
            PersistError::Malformed { detail } => write!(f, "malformed model file: {detail}"),
            PersistError::ShapeMismatch => write!(f, "parameter shapes do not match header"),
            PersistError::Io { message } => write!(f, "i/o error: {message}"),
        }
    }
}

impl Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io {
            message: e.to_string(),
        }
    }
}

/// Writes a trained classifier to `writer`.
///
/// The caller can pass `&mut file` thanks to the blanket `Write` impl
/// for mutable references.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use fusa_gcn::persist::{load_classifier, save_classifier};
/// use fusa_gcn::{GcnClassifier, GcnConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = GcnClassifier::new(GcnConfig::default());
/// let mut buffer = Vec::new();
/// save_classifier(&model, &mut buffer)?;
/// let restored = load_classifier(buffer.as_slice())?;
/// assert_eq!(restored.config(), model.config());
/// # Ok(())
/// # }
/// ```
pub fn save_classifier<W: Write>(model: &GcnClassifier, mut writer: W) -> Result<(), PersistError> {
    let config = model.config();
    writeln!(writer, "{MAGIC} v{VERSION}")?;
    writeln!(writer, "in_features {}", config.in_features)?;
    let hidden: Vec<String> = config.hidden.iter().map(|h| h.to_string()).collect();
    writeln!(writer, "hidden {}", hidden.join(" "))?;
    writeln!(writer, "dropout {}", config.dropout)?;
    writeln!(writer, "seed {}", config.seed)?;

    // Parameters in the model's stable ordering; cloning sidesteps the
    // mutable borrow that params_mut() requires.
    let mut clone = model.clone();
    for param in clone.params_mut() {
        writeln!(
            writer,
            "param {} {}",
            param.value.rows(),
            param.value.cols()
        )?;
        for r in 0..param.value.rows() {
            let row: Vec<String> = param
                .value
                .row(r)
                .iter()
                .map(|v| format!("{v:e}"))
                .collect();
            writeln!(writer, "{}", row.join(" "))?;
        }
    }
    writeln!(writer, "end")?;
    Ok(())
}

/// Reads a classifier previously written by [`save_classifier`].
///
/// # Errors
///
/// Returns [`PersistError`] for header, format, shape or I/O problems.
pub fn load_classifier<R: std::io::Read>(reader: R) -> Result<GcnClassifier, PersistError> {
    let mut lines = std::io::BufReader::new(reader).lines();
    let mut next_line = || -> Result<String, PersistError> {
        lines
            .next()
            .ok_or(PersistError::Malformed {
                detail: "unexpected end of file".into(),
            })?
            .map_err(PersistError::from)
    };

    let header = next_line()?;
    if header.trim() != format!("{MAGIC} v{VERSION}") {
        return Err(PersistError::BadHeader);
    }
    let in_features: usize = parse_keyword(&next_line()?, "in_features")?;
    let hidden_line = next_line()?;
    let hidden: Vec<usize> = hidden_line
        .strip_prefix("hidden ")
        .ok_or_else(|| malformed("missing hidden"))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| malformed("bad hidden width")))
        .collect::<Result<_, _>>()?;
    let dropout: f64 = parse_keyword(&next_line()?, "dropout")?;
    let seed: u64 = parse_keyword(&next_line()?, "seed")?;

    let mut model = GcnClassifier::new(GcnConfig {
        in_features,
        hidden,
        dropout,
        seed,
    });

    for param in model.params_mut() {
        let shape_line = next_line()?;
        let mut tokens = shape_line.split_whitespace();
        if tokens.next() != Some("param") {
            return Err(malformed("expected `param`"));
        }
        let rows: usize = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| malformed("bad param rows"))?;
        let cols: usize = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| malformed("bad param cols"))?;
        if (rows, cols) != param.value.shape() {
            return Err(PersistError::ShapeMismatch);
        }
        for r in 0..rows {
            let row_line = next_line()?;
            let values: Vec<f64> = row_line
                .split_whitespace()
                .map(|t| t.parse().map_err(|_| malformed("bad weight")))
                .collect::<Result<_, _>>()?;
            if values.len() != cols {
                return Err(PersistError::ShapeMismatch);
            }
            param.value.row_mut(r).copy_from_slice(&values);
        }
    }
    if next_line()?.trim() != "end" {
        return Err(malformed("missing `end`"));
    }
    Ok(model)
}

fn parse_keyword<T: std::str::FromStr>(line: &str, keyword: &str) -> Result<T, PersistError> {
    line.strip_prefix(keyword)
        .map(str::trim)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| malformed(&format!("missing {keyword}")))
}

fn malformed(detail: &str) -> PersistError {
    PersistError::Malformed {
        detail: detail.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusa_neuro::{CsrMatrix, Matrix};

    fn trained_ish_model() -> GcnClassifier {
        // A freshly initialized model with a nonstandard config; the
        // Glorot weights are as good as trained ones for round-trip
        // purposes.
        GcnClassifier::new(GcnConfig {
            in_features: 3,
            hidden: vec![4, 8],
            dropout: 0.2,
            seed: 77,
        })
    }

    fn predictions(model: &GcnClassifier) -> Vec<f64> {
        let adj =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0), (0, 1, 0.3), (1, 0, 0.3)]);
        let x = Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.3, 0.9, -1.0]]);
        model.predict_critical_probability(&adj, &x)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let model = trained_ish_model();
        let mut buffer = Vec::new();
        save_classifier(&model, &mut buffer).unwrap();
        let restored = load_classifier(buffer.as_slice()).unwrap();
        let original = predictions(&model);
        let recovered = predictions(&restored);
        for (a, b) in original.iter().zip(&recovered) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert_eq!(restored.config(), model.config());
    }

    #[test]
    fn bad_header_rejected() {
        let err = load_classifier("not a model\n".as_bytes()).unwrap_err();
        assert_eq!(err, PersistError::BadHeader);
    }

    #[test]
    fn truncated_file_rejected() {
        let model = trained_ish_model();
        let mut buffer = Vec::new();
        save_classifier(&model, &mut buffer).unwrap();
        let truncated = &buffer[..buffer.len() / 2];
        assert!(load_classifier(truncated).is_err());
    }

    #[test]
    fn tampered_shape_rejected() {
        let model = trained_ish_model();
        let mut buffer = Vec::new();
        save_classifier(&model, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let tampered = text.replacen("param 3 4", "param 4 3", 1);
        assert_eq!(
            load_classifier(tampered.as_bytes()).unwrap_err(),
            PersistError::ShapeMismatch
        );
    }

    #[test]
    fn error_display_is_informative() {
        let err = PersistError::Malformed {
            detail: "bad weight".into(),
        };
        assert!(err.to_string().contains("bad weight"));
    }
}
