//! Training, evaluation and grid-search hyper-parameter optimization.

use crate::model::{GcnClassifier, GcnConfig, GcnRegressor};
use fusa_neuro::loss::{mse_loss, nll_loss};
use fusa_neuro::metrics::{Confusion, RocCurve};
use fusa_neuro::optim::Adam;
use fusa_neuro::split::Split;
use fusa_neuro::{CsrMatrix, Matrix};

/// Training hyper-parameters (§3.3.3 / §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Training epochs (full-graph gradient steps).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Keep the parameter snapshot with the best validation accuracy.
    pub keep_best: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 300,
            learning_rate: 0.02,
            weight_decay: 5e-4,
            keep_best: true,
        }
    }
}

/// Per-epoch training trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainHistory {
    /// Training loss per epoch.
    pub train_loss: Vec<f64>,
    /// Validation accuracy per epoch (classifier) or negative validation
    /// loss (regressor).
    pub validation_metric: Vec<f64>,
    /// Epoch index of the best validation metric.
    pub best_epoch: usize,
}

/// Validation-set evaluation of a trained classifier.
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    /// Validation accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Area under the validation ROC curve.
    pub auc: f64,
    /// The validation ROC curve (for Figure 4).
    pub roc: RocCurve,
    /// Confusion counts on the validation set.
    pub confusion: Confusion,
    /// Predicted label per node (whole graph, not just validation).
    pub predicted_labels: Vec<bool>,
    /// Critical-class probability per node (whole graph).
    pub critical_probability: Vec<f64>,
}

/// Trains a [`GcnClassifier`] with masked NLL loss on `split.train` and
/// returns the trained model, its history and the validation evaluation.
///
/// # Panics
///
/// Panics if `labels.len() != features.rows()` or the split references
/// out-of-range nodes.
pub fn train_classifier(
    adj: &CsrMatrix,
    features: &Matrix,
    labels: &[bool],
    split: &Split,
    model_config: GcnConfig,
    train_config: &TrainConfig,
) -> (GcnClassifier, TrainHistory, EvaluationReport) {
    assert_eq!(labels.len(), features.rows(), "label count mismatch");
    let obs = fusa_obs::global();
    let targets: Vec<usize> = labels.iter().map(|&l| usize::from(l)).collect();
    let mut model = GcnClassifier::new(model_config);
    let mut optimizer =
        Adam::with_weight_decay(train_config.learning_rate, train_config.weight_decay);
    let mut history = TrainHistory::default();
    let mut best: Option<(f64, GcnClassifier)> = None;
    let progress = fusa_obs::Progress::start(
        obs,
        "train",
        "epochs",
        train_config.epochs as u64,
        fusa_obs::ProgressConfig::default(),
    );

    for epoch in 0..train_config.epochs {
        let epoch_started = std::time::Instant::now();
        let log_probs = model.forward(adj, features, true);
        let (loss, grad) = nll_loss(&log_probs, &targets, &split.train);
        for p in model.params_mut() {
            p.zero_grad();
        }
        model.backward(adj, &grad, true);
        optimizer.step(&mut model.params_mut());

        let val_accuracy = validation_accuracy(&model, adj, features, labels, &split.validation);
        history.train_loss.push(loss);
        history.validation_metric.push(val_accuracy);
        if best
            .as_ref()
            .map(|(b, _)| val_accuracy > *b)
            .unwrap_or(true)
        {
            history.best_epoch = history.validation_metric.len() - 1;
            best = Some((val_accuracy, model.clone()));
        }
        obs.add("train.epochs", 1);
        obs.observe("train.epoch_seconds", epoch_started.elapsed().as_secs_f64());
        obs.observe("train.loss", loss);
        progress.advance(1);
        progress.set_metric(loss);
        if obs.has_sink() {
            use fusa_obs::EventField::{F64, U64};
            obs.event(
                "epoch",
                &[
                    ("epoch", U64(epoch as u64)),
                    ("loss", F64(loss)),
                    ("val_accuracy", F64(val_accuracy)),
                    ("seconds", F64(epoch_started.elapsed().as_secs_f64())),
                ],
            );
        }
    }
    obs.gauge_set("train.best_epoch", history.best_epoch as f64);
    if let Some(&loss) = history.train_loss.last() {
        obs.gauge_set("train.final_loss", loss);
    }

    let final_model = if train_config.keep_best {
        best.map(|(_, m)| m).unwrap_or(model)
    } else {
        model
    };
    let evaluation = evaluate_classifier(&final_model, adj, features, labels, split);
    (final_model, history, evaluation)
}

fn validation_accuracy(
    model: &GcnClassifier,
    adj: &CsrMatrix,
    features: &Matrix,
    labels: &[bool],
    validation: &[usize],
) -> f64 {
    if validation.is_empty() {
        return 0.0;
    }
    let predictions = model.predict(adj, features);
    let correct = validation
        .iter()
        .filter(|&&i| (predictions[i] == 1) == labels[i])
        .count();
    correct as f64 / validation.len() as f64
}

/// Evaluates a trained classifier on the validation nodes of `split`.
pub fn evaluate_classifier(
    model: &GcnClassifier,
    adj: &CsrMatrix,
    features: &Matrix,
    labels: &[bool],
    split: &Split,
) -> EvaluationReport {
    let critical_probability = model.predict_critical_probability(adj, features);
    let predicted_labels: Vec<bool> = critical_probability.iter().map(|&p| p >= 0.5).collect();

    let val_predicted: Vec<bool> = split
        .validation
        .iter()
        .map(|&i| predicted_labels[i])
        .collect();
    let val_actual: Vec<bool> = split.validation.iter().map(|&i| labels[i]).collect();
    let val_scores: Vec<f64> = split
        .validation
        .iter()
        .map(|&i| critical_probability[i])
        .collect();

    let confusion = Confusion::from_predictions(&val_predicted, &val_actual);
    let roc = RocCurve::compute(&val_scores, &val_actual);
    EvaluationReport {
        accuracy: confusion.accuracy(),
        auc: roc.auc(),
        roc,
        confusion,
        predicted_labels,
        critical_probability,
    }
}

/// Trains a [`GcnRegressor`] against continuous criticality scores with
/// masked MSE. Returns the model, its history, and the predicted scores
/// for every node.
///
/// # Panics
///
/// Panics if `scores.len() != features.rows()`.
pub fn train_regressor(
    adj: &CsrMatrix,
    features: &Matrix,
    scores: &[f64],
    split: &Split,
    model_config: GcnConfig,
    train_config: &TrainConfig,
) -> (GcnRegressor, TrainHistory, Vec<f64>) {
    assert_eq!(scores.len(), features.rows(), "score count mismatch");
    let obs = fusa_obs::global();
    let mut model = GcnRegressor::new(model_config);
    let mut optimizer =
        Adam::with_weight_decay(train_config.learning_rate, train_config.weight_decay);
    let mut history = TrainHistory::default();
    let mut best: Option<(f64, GcnRegressor)> = None;
    let progress = fusa_obs::Progress::start(
        obs,
        "train-regressor",
        "epochs",
        train_config.epochs as u64,
        fusa_obs::ProgressConfig::default(),
    );

    for epoch in 0..train_config.epochs {
        let epoch_started = std::time::Instant::now();
        let predictions = model.forward(adj, features, true);
        let (loss, grad) = mse_loss(&predictions, scores, &split.train);
        for p in model.params_mut() {
            p.zero_grad();
        }
        model.backward(adj, &grad, true);
        optimizer.step(&mut model.params_mut());

        let val_predictions = model.forward_inference(adj, features);
        let (val_loss, _) = mse_loss(&val_predictions, scores, &split.validation);
        history.train_loss.push(loss);
        history.validation_metric.push(-val_loss);
        if best.as_ref().map(|(b, _)| -val_loss > *b).unwrap_or(true) {
            history.best_epoch = history.validation_metric.len() - 1;
            best = Some((-val_loss, model.clone()));
        }
        obs.add("train.regressor_epochs", 1);
        obs.observe("train.epoch_seconds", epoch_started.elapsed().as_secs_f64());
        obs.observe("train.loss", loss);
        progress.advance(1);
        progress.set_metric(loss);
        if obs.has_sink() {
            use fusa_obs::EventField::{F64, U64};
            obs.event(
                "epoch",
                &[
                    ("epoch", U64(epoch as u64)),
                    ("loss", F64(loss)),
                    ("val_loss", F64(val_loss)),
                    ("seconds", F64(epoch_started.elapsed().as_secs_f64())),
                ],
            );
        }
    }

    let final_model = if train_config.keep_best {
        best.map(|(_, m)| m).unwrap_or(model)
    } else {
        model
    };
    let predictions = final_model.predict_scores(adj, features);
    (final_model, history, predictions)
}

/// Grid-search hyper-parameter optimization (§3.3.2): sweeps layer
/// counts, widths and dropout, training each candidate and ranking by
/// validation accuracy.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Candidate hidden-layer stacks.
    pub hidden_candidates: Vec<Vec<usize>>,
    /// Candidate dropout probabilities.
    pub dropout_candidates: Vec<f64>,
    /// Candidate learning rates.
    pub learning_rates: Vec<f64>,
    /// Epochs per candidate (shorter than final training).
    pub epochs: usize,
    /// Seed for model initialization.
    pub seed: u64,
}

impl Default for GridSearch {
    fn default() -> Self {
        GridSearch {
            hidden_candidates: vec![vec![16], vec![16, 32], vec![16, 32, 64], vec![32, 64, 128]],
            dropout_candidates: vec![0.1, 0.3, 0.5],
            learning_rates: vec![0.01, 0.005],
            epochs: 60,
            seed: 0x9219,
        }
    }
}

/// One grid-search trial result.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult {
    /// Hidden widths of the trial.
    pub hidden: Vec<usize>,
    /// Dropout of the trial.
    pub dropout: f64,
    /// Learning rate of the trial.
    pub learning_rate: f64,
    /// Best validation accuracy reached.
    pub validation_accuracy: f64,
}

impl GridSearch {
    /// Runs the sweep; returns all trial results sorted best-first.
    pub fn run(
        &self,
        adj: &CsrMatrix,
        features: &Matrix,
        labels: &[bool],
        split: &Split,
    ) -> Vec<GridSearchResult> {
        let mut results = Vec::new();
        for hidden in &self.hidden_candidates {
            for &dropout in &self.dropout_candidates {
                for &learning_rate in &self.learning_rates {
                    let model_config = GcnConfig {
                        in_features: features.cols(),
                        hidden: hidden.clone(),
                        dropout,
                        seed: self.seed,
                    };
                    let train_config = TrainConfig {
                        epochs: self.epochs,
                        learning_rate,
                        ..Default::default()
                    };
                    let (_, history, _) =
                        train_classifier(adj, features, labels, split, model_config, &train_config);
                    let best = history
                        .validation_metric
                        .iter()
                        .cloned()
                        .fold(0.0, f64::max);
                    results.push(GridSearchResult {
                        hidden: hidden.clone(),
                        dropout,
                        learning_rate,
                        validation_accuracy: best,
                    });
                }
            }
        }
        results.sort_by(|a, b| {
            b.validation_accuracy
                .partial_cmp(&a.validation_accuracy)
                .expect("no NaN accuracies")
        });
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusa_graph::{normalized_adjacency, CircuitGraph};
    use fusa_neuro::metrics::accuracy;

    /// A synthetic two-community graph task where the label depends on
    /// the neighbourhood: nodes in a clique of "critical" nodes are
    /// critical. Feature-only models cannot solve it; a GCN can.
    fn community_task() -> (CsrMatrix, Matrix, Vec<bool>) {
        // 2 communities of 20 nodes each; identical node features but
        // distinct connectivity.
        let n = 40;
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 1.0));
        }
        let edge = |a: usize, b: usize, t: &mut Vec<(usize, usize, f64)>| {
            t.push((a, b, 0.3));
            t.push((b, a, 0.3));
        };
        for i in 0..20 {
            for j in (i + 1)..20 {
                if (i + j) % 5 == 0 {
                    edge(i, j, &mut triplets);
                }
            }
        }
        for i in 20..40 {
            for j in (i + 1)..40 {
                if (i + j) % 3 == 0 {
                    edge(i, j, &mut triplets);
                }
            }
        }
        let adj = CsrMatrix::from_triplets(n, n, &triplets);
        // Feature: a noisy scalar that weakly indicates community.
        let mut rows = Vec::new();
        for i in 0..n {
            let noise = ((i * 2654435761) % 97) as f64 / 97.0 - 0.5;
            let hint = if i < 20 { 0.2 } else { -0.2 };
            rows.push(vec![hint + noise, 1.0]);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&row_refs);
        let labels: Vec<bool> = (0..n).map(|i| i < 20).collect();
        (adj, x, labels)
    }

    fn tiny_train_config() -> TrainConfig {
        TrainConfig {
            epochs: 120,
            learning_rate: 0.02,
            weight_decay: 1e-4,
            keep_best: true,
        }
    }

    fn tiny_model_config() -> GcnConfig {
        GcnConfig {
            in_features: 2,
            hidden: vec![8, 8],
            dropout: 0.1,
            seed: 3,
        }
    }

    #[test]
    fn classifier_learns_community_structure() {
        let (adj, x, labels) = community_task();
        let split = Split::stratified(&labels, 0.7, 5);
        let (_model, history, eval) = train_classifier(
            &adj,
            &x,
            &labels,
            &split,
            tiny_model_config(),
            &tiny_train_config(),
        );
        assert!(
            eval.accuracy >= 0.8,
            "GCN should solve the community task, got {}",
            eval.accuracy
        );
        assert!(eval.auc >= 0.8, "AUC {}", eval.auc);
        assert!(history.train_loss[0] > *history.train_loss.last().unwrap());
    }

    #[test]
    fn loss_decreases_during_training() {
        let (adj, x, labels) = community_task();
        let split = Split::stratified(&labels, 0.7, 5);
        let (_, history, _) = train_classifier(
            &adj,
            &x,
            &labels,
            &split,
            tiny_model_config(),
            &tiny_train_config(),
        );
        let early: f64 = history.train_loss[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = history.train_loss[history.train_loss.len() - 10..]
            .iter()
            .sum::<f64>()
            / 10.0;
        assert!(late < early * 0.8, "early {early}, late {late}");
    }

    #[test]
    fn keep_best_returns_best_epoch_weights() {
        let (adj, x, labels) = community_task();
        let split = Split::stratified(&labels, 0.7, 5);
        let (model, history, eval) = train_classifier(
            &adj,
            &x,
            &labels,
            &split,
            tiny_model_config(),
            &tiny_train_config(),
        );
        let best_metric = history.validation_metric[history.best_epoch];
        // The returned model's evaluation matches the best epoch metric.
        let val_preds: Vec<bool> = split
            .validation
            .iter()
            .map(|&i| eval.predicted_labels[i])
            .collect();
        let val_actual: Vec<bool> = split.validation.iter().map(|&i| labels[i]).collect();
        assert!((accuracy(&val_preds, &val_actual) - best_metric).abs() < 1e-9);
        let _ = model;
    }

    #[test]
    fn regressor_fits_continuous_scores() {
        let (adj, x, labels) = community_task();
        let scores: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
        let split = Split::stratified(&labels, 0.7, 5);
        let (_, _, predictions) = train_regressor(
            &adj,
            &x,
            &scores,
            &split,
            tiny_model_config(),
            &tiny_train_config(),
        );
        let mse: f64 = split
            .validation
            .iter()
            .map(|&i| (predictions[i] - scores[i]).powi(2))
            .sum::<f64>()
            / split.validation.len() as f64;
        assert!(mse < 0.05, "validation MSE {mse}");
    }

    #[test]
    fn grid_search_ranks_candidates() {
        let (adj, x, labels) = community_task();
        let split = Split::stratified(&labels, 0.7, 5);
        let grid = GridSearch {
            hidden_candidates: vec![vec![4], vec![8, 8]],
            dropout_candidates: vec![0.0, 0.3],
            learning_rates: vec![0.02],
            epochs: 40,
            seed: 1,
        };
        let results = grid.run(&adj, &x, &labels, &split);
        assert_eq!(results.len(), 4);
        for pair in results.windows(2) {
            assert!(pair[0].validation_accuracy >= pair[1].validation_accuracy);
        }
    }

    #[test]
    fn evaluation_on_real_design_graph_has_sane_shapes() {
        let netlist = fusa_netlist::designs::or1200_icfsm();
        let graph = CircuitGraph::from_netlist(&netlist);
        let adj = normalized_adjacency(&graph);
        let n = graph.node_count();
        // Fake labels: degree-based (a structure-derived rule the GCN can
        // pick up quickly).
        let labels: Vec<bool> = (0..n).map(|i| graph.degree(i) >= 4).collect();
        let x = Matrix::filled(n, 2, 1.0);
        let split = Split::stratified(&labels, 0.8, 2);
        let (_, _, eval) = train_classifier(
            &adj,
            &x,
            &labels,
            &split,
            GcnConfig {
                in_features: 2,
                hidden: vec![8],
                dropout: 0.0,
                seed: 7,
            },
            &TrainConfig {
                epochs: 30,
                ..tiny_train_config()
            },
        );
        assert_eq!(eval.predicted_labels.len(), n);
        assert_eq!(eval.critical_probability.len(), n);
        assert!(eval.accuracy > 0.5);
    }
}
