//! Simplified Graph Convolution (SGC) — the linear GCN variant of the
//! paper's reference \[12\] (Wu et al., ICML 2019).
//!
//! SGC collapses a K-layer GCN into `softmax(Â^K · X · W)`: the feature
//! propagation `Â^K X` is precomputed once, after which training is
//! plain logistic regression. It isolates how much of the full GCN's
//! advantage comes from *message passing* (which SGC keeps) versus
//! *nonlinear depth* (which SGC removes) — the model ablation run by
//! `cargo run -p fusa-bench --bin ablation_model`.

use fusa_neuro::layers::{log_softmax_rows, Dense, LogSoftmax};
use fusa_neuro::loss::nll_loss;
use fusa_neuro::optim::Adam;
use fusa_neuro::split::Split;
use fusa_neuro::{CsrMatrix, Matrix};

/// Configuration of an [`SgcClassifier`].
#[derive(Debug, Clone, PartialEq)]
pub struct SgcConfig {
    /// Propagation depth `K` (the paper's GCN stacks 4 convolutions, so
    /// `K = 4` is the comparable setting).
    pub hops: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Weight initialization seed.
    pub seed: u64,
}

impl Default for SgcConfig {
    fn default() -> Self {
        SgcConfig {
            hops: 4,
            epochs: 300,
            learning_rate: 0.05,
            weight_decay: 5e-4,
            seed: 0x56C,
        }
    }
}

/// A trained Simplified Graph Convolution classifier.
///
/// # Example
///
/// ```
/// use fusa_gcn::sgc::{SgcClassifier, SgcConfig};
/// use fusa_neuro::split::Split;
/// use fusa_neuro::{CsrMatrix, Matrix};
///
/// let adj = CsrMatrix::from_triplets(4, 4, &[
///     (0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0),
///     (0, 1, 0.5), (1, 0, 0.5), (2, 3, 0.5), (3, 2, 0.5),
/// ]);
/// let x = Matrix::from_rows(&[&[1.0], &[1.0], &[-1.0], &[-1.0]]);
/// let labels = [true, true, false, false];
/// let split = Split::stratified(&labels, 0.5, 1);
/// let model = SgcClassifier::train(&adj, &x, &labels, &split, &SgcConfig::default());
/// assert_eq!(model.predict(&adj, &x).len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SgcClassifier {
    config: SgcConfig,
    linear: Dense,
}

impl SgcClassifier {
    /// Propagates features `hops` times through the normalized
    /// adjacency: `Â^K · X`.
    pub fn propagate(adj: &CsrMatrix, features: &Matrix, hops: usize) -> Matrix {
        let mut h = features.clone();
        for _ in 0..hops {
            h = adj.matmul(&h);
        }
        h
    }

    /// Trains SGC on the given split (full-batch Adam over the masked
    /// NLL, like the GCN trainer).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != features.rows()`.
    pub fn train(
        adj: &CsrMatrix,
        features: &Matrix,
        labels: &[bool],
        split: &Split,
        config: &SgcConfig,
    ) -> SgcClassifier {
        assert_eq!(labels.len(), features.rows(), "label count mismatch");
        let propagated = Self::propagate(adj, features, config.hops);
        let targets: Vec<usize> = labels.iter().map(|&l| usize::from(l)).collect();

        let mut linear = Dense::new(features.cols(), 2, config.seed);
        let mut log_softmax = LogSoftmax::new();
        let mut optimizer = Adam::with_weight_decay(config.learning_rate, config.weight_decay);
        let mut best: Option<(f64, Dense)> = None;

        for _ in 0..config.epochs {
            let logits = linear.forward(&propagated);
            let log_probs = log_softmax.forward(&logits);
            let (_, grad) = nll_loss(&log_probs, &targets, &split.train);
            for p in linear.params_mut() {
                p.zero_grad();
            }
            let grad_logits = log_softmax.backward(&grad);
            let _ = linear.backward(&grad_logits);
            optimizer.step(&mut linear.params_mut());

            // Track the best validation accuracy snapshot.
            let predictions = log_softmax_rows(&linear.forward_inference(&propagated));
            let correct = split
                .validation
                .iter()
                .filter(|&&i| (predictions.get(i, 1) > predictions.get(i, 0)) == labels[i])
                .count();
            let accuracy = if split.validation.is_empty() {
                0.0
            } else {
                correct as f64 / split.validation.len() as f64
            };
            if best.as_ref().map(|(b, _)| accuracy > *b).unwrap_or(true) {
                best = Some((accuracy, linear.clone()));
            }
        }
        SgcClassifier {
            config: config.clone(),
            linear: best.map(|(_, l)| l).unwrap_or(linear),
        }
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &SgcConfig {
        &self.config
    }

    /// Per-node critical-class probability.
    pub fn predict_critical_probability(&self, adj: &CsrMatrix, features: &Matrix) -> Vec<f64> {
        let propagated = Self::propagate(adj, features, self.config.hops);
        let log_probs = log_softmax_rows(&self.linear.forward_inference(&propagated));
        (0..log_probs.rows())
            .map(|r| log_probs.get(r, 1).exp())
            .collect()
    }

    /// Per-node hard predictions (class 1 = critical).
    pub fn predict(&self, adj: &CsrMatrix, features: &Matrix) -> Vec<bool> {
        self.predict_critical_probability(adj, features)
            .iter()
            .map(|&p| p >= 0.5)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two four-cliques with opposite labels; node features are pure
    /// noise, so only propagation separates them... but SGC with K=0
    /// (no propagation) must fail while K=2 succeeds when the *mean*
    /// neighbourhood feature differs.
    fn community_inputs() -> (CsrMatrix, Matrix, Vec<bool>) {
        let n = 16;
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 1.0));
        }
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    triplets.push((i, j, 0.2));
                    triplets.push((i + 8, j + 8, 0.2));
                }
            }
        }
        let adj = CsrMatrix::from_triplets(n, n, &triplets);
        // One strong-signal node per community; the rest are zero. Only
        // propagation spreads the signal across the community.
        let mut x = Matrix::zeros(n, 1);
        x.set(0, 0, 4.0);
        x.set(8, 0, -4.0);
        let labels: Vec<bool> = (0..n).map(|i| i < 8).collect();
        (adj, x, labels)
    }

    #[test]
    fn propagation_spreads_signal() {
        let (adj, x, _) = community_inputs();
        let propagated = SgcClassifier::propagate(&adj, &x, 2);
        // Node 3 has zero raw feature but positive propagated feature.
        assert_eq!(x.get(3, 0), 0.0);
        assert!(propagated.get(3, 0) > 0.0);
        assert!(propagated.get(11, 0) < 0.0);
    }

    #[test]
    fn sgc_solves_structure_task_that_k0_cannot() {
        let (adj, x, labels) = community_inputs();
        let split = Split::stratified(&labels, 0.5, 3);
        let with_hops = SgcClassifier::train(
            &adj,
            &x,
            &labels,
            &split,
            &SgcConfig {
                hops: 2,
                ..Default::default()
            },
        );
        let predictions = with_hops.predict(&adj, &x);
        let accuracy = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, a)| p == a)
            .count() as f64
            / labels.len() as f64;
        assert!(accuracy >= 0.9, "K=2 accuracy {accuracy}");

        let without_hops = SgcClassifier::train(
            &adj,
            &x,
            &labels,
            &split,
            &SgcConfig {
                hops: 0,
                ..Default::default()
            },
        );
        let predictions = without_hops.predict(&adj, &x);
        let accuracy0 = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, a)| p == a)
            .count() as f64
            / labels.len() as f64;
        assert!(
            accuracy0 < accuracy,
            "K=0 ({accuracy0}) should underperform K=2 ({accuracy})"
        );
    }

    #[test]
    fn probabilities_are_valid() {
        let (adj, x, labels) = community_inputs();
        let split = Split::stratified(&labels, 0.5, 3);
        let model = SgcClassifier::train(&adj, &x, &labels, &split, &SgcConfig::default());
        for p in model.predict_critical_probability(&adj, &x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (adj, x, labels) = community_inputs();
        let split = Split::stratified(&labels, 0.5, 3);
        let config = SgcConfig::default();
        let a = SgcClassifier::train(&adj, &x, &labels, &split, &config);
        let b = SgcClassifier::train(&adj, &x, &labels, &split, &config);
        assert_eq!(
            a.predict_critical_probability(&adj, &x),
            b.predict_critical_probability(&adj, &x)
        );
    }
}
