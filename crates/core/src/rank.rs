//! Zero-simulation static criticality ranking.
//!
//! Ranks every gate by structural measures alone — SCOAP testability
//! costs and graph centralities from
//! [`fusa_netlist::StructuralProfile`] — with no fault injection and no
//! training. This is the millisecond-latency triage baseline the
//! learned models are compared against: when campaign ground truth is
//! available, [`StaticRank::evaluate`] scores each channel and the
//! combined rank against it with Spearman's ρ.
//!
//! # Rank-score formula
//!
//! Each channel is oriented so *higher = more critical*:
//!
//! * `controllability` — `-ln(1 + max(CC0, CC1))`: cheap-to-control
//!   outputs see their stuck-at faults activated by many workloads;
//! * `observability` — `-ln(1 + CO)`: cheap-to-observe outputs
//!   propagate activated faults to an output before they decay;
//! * `testability` — the sum of the two (activation *and* propagation,
//!   the classic SCOAP D-score orientation inverted);
//! * `betweenness` — `ln(1 + Brandes betweenness)`: convergence
//!   corridors relay many source→sink paths;
//! * `pagerank` — gate-count-scaled PageRank (mean 1): influence flow;
//! * `dominance` — `ln(1 + post-dominated count)`: gates that shadow a
//!   whole cone's criticality.
//!
//! The combined score is a weighted mean of the *fractional ranks* of
//! the channels (rank-normalizing makes channels with wildly different
//! scales commensurable and is exactly the transform Spearman's ρ
//! applies anyway). Observability carries the largest weight, with
//! testability second: across the built-in designs the dominant failure
//! mode of a non-critical gate is an activated fault that never reaches
//! an output, which CO models directly.

use fusa_netlist::structural::cost_to_feature;
use fusa_netlist::{Netlist, StructuralProfile};
use fusa_neuro::metrics::spearman;
use std::fmt::Write as _;

/// Channel names, in the column order of [`StaticRank::channels`] and
/// [`StaticRank::to_csv`].
pub const RANK_CHANNEL_NAMES: [&str; 6] = [
    "controllability",
    "observability",
    "testability",
    "betweenness",
    "pagerank",
    "dominance",
];

/// Combined-rank weights, aligned with [`RANK_CHANNEL_NAMES`].
pub const CHANNEL_WEIGHTS: [f64; 6] = [0.5, 4.0, 2.0, 0.5, 1.0, 1.0];

/// The static criticality ranking of one design.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticRank {
    /// Raw channel values, `channels[c][gate]`, oriented so higher =
    /// more critical. Column order follows [`RANK_CHANNEL_NAMES`].
    pub channels: Vec<Vec<f64>>,
    /// Combined criticality score per gate in `[0, 1]`: the weighted
    /// mean of the channels' fractional ranks.
    pub combined: Vec<f64>,
}

/// Spearman correlation of every channel (and the combined rank)
/// against campaign ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct RankEvaluation {
    /// `(channel name, ρ)` per channel, in [`RANK_CHANNEL_NAMES`] order.
    pub channel_rho: Vec<(&'static str, f64)>,
    /// ρ of the combined rank.
    pub combined_rho: f64,
}

impl StaticRank {
    /// Computes the ranking for `netlist`, analyzing its structure.
    pub fn compute(netlist: &Netlist) -> StaticRank {
        let profile = StructuralProfile::analyze(netlist);
        StaticRank::from_profile(netlist, &profile)
    }

    /// Computes the ranking from an existing structural profile.
    pub fn from_profile(netlist: &Netlist, profile: &StructuralProfile) -> StaticRank {
        let n = netlist.gate_count();
        let mut control = Vec::with_capacity(n);
        let mut observe = Vec::with_capacity(n);
        let mut testability = Vec::with_capacity(n);
        for i in 0..n {
            let id = fusa_netlist::GateId(i as u32);
            let cc = -cost_to_feature(profile.gate_control_difficulty(netlist, id));
            let co = -cost_to_feature(profile.gate_co(netlist, id));
            control.push(cc);
            observe.push(co);
            testability.push(cc + co);
        }
        let betweenness: Vec<f64> = profile
            .betweenness
            .iter()
            .map(|&b| (1.0 + b).ln())
            .collect();
        let pagerank: Vec<f64> = profile.pagerank.iter().map(|&p| p * n as f64).collect();
        let dominance: Vec<f64> = profile
            .dominated
            .iter()
            .map(|&d| f64::from(1 + d).ln())
            .collect();
        let channels = vec![
            control,
            observe,
            testability,
            betweenness,
            pagerank,
            dominance,
        ];
        let weight_sum: f64 = CHANNEL_WEIGHTS.iter().sum();
        let mut combined = vec![0.0; n];
        for (channel, &weight) in channels.iter().zip(&CHANNEL_WEIGHTS) {
            for (c, &r) in combined.iter_mut().zip(&fractional_ranks(channel)) {
                *c += weight * r;
            }
        }
        for c in &mut combined {
            *c /= weight_sum;
        }
        StaticRank { channels, combined }
    }

    /// Gate indices sorted most-critical first (ties broken by index
    /// for determinism).
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.combined.len()).collect();
        order.sort_by(|&a, &b| {
            self.combined[b]
                .partial_cmp(&self.combined[a])
                .expect("no NaN scores")
                .then(a.cmp(&b))
        });
        order
    }

    /// Spearman ρ of every channel and the combined rank against
    /// per-gate ground-truth criticality scores.
    ///
    /// # Panics
    ///
    /// Panics if `truth.len()` differs from the gate count.
    pub fn evaluate(&self, truth: &[f64]) -> RankEvaluation {
        assert_eq!(truth.len(), self.combined.len(), "score count mismatch");
        let channel_rho = RANK_CHANNEL_NAMES
            .iter()
            .zip(&self.channels)
            .map(|(&name, channel)| (name, spearman(channel, truth)))
            .collect();
        RankEvaluation {
            channel_rho,
            combined_rho: spearman(&self.combined, truth),
        }
    }

    /// Renders the ranking as CSV, most-critical gate first:
    /// `gate,combined,<channel columns>`.
    pub fn to_csv(&self, netlist: &Netlist) -> String {
        let mut out = String::from("gate,combined");
        for name in RANK_CHANNEL_NAMES {
            let _ = write!(out, ",{name}");
        }
        out.push('\n');
        for i in self.ranking() {
            let _ = write!(out, "{},{:.6}", netlist.gates()[i].name, self.combined[i]);
            for channel in &self.channels {
                let _ = write!(out, ",{:.6}", channel[i]);
            }
            out.push('\n');
        }
        out
    }
}

/// Fractional ranks normalized to `[0, 1]`: the smallest value maps to
/// 0, the largest to 1, ties share their average rank.
fn fractional_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    if n <= 1 {
        return vec![0.0; n];
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let average = (i + j) as f64 / 2.0;
        for &k in &order[i..=j] {
            ranks[k] = average / (n - 1) as f64;
        }
        i = j + 1;
    }
    ranks
}

/// Parses a `gate,score,label` CSV (the [`CriticalityDataset::to_csv`]
/// format, also written by `fusa faults --csv`) into per-gate scores
/// aligned with `netlist`'s gate order.
///
/// [`CriticalityDataset::to_csv`]: fusa_faultsim::CriticalityDataset::to_csv
///
/// # Errors
///
/// Returns a message naming the offending line or gate when the header
/// is missing, a row is malformed, a gate is unknown, or any gate has
/// no score.
pub fn parse_ground_truth(netlist: &Netlist, csv: &str) -> Result<Vec<f64>, String> {
    let mut lines = csv.lines();
    match lines.next() {
        Some(header) if header.starts_with("gate,score") => {}
        other => {
            return Err(format!(
                "expected a 'gate,score,label' header, found {:?}",
                other.unwrap_or("")
            ))
        }
    }
    let mut scores: Vec<Option<f64>> = vec![None; netlist.gate_count()];
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let (name, score) = match (fields.next(), fields.next()) {
            (Some(name), Some(score)) => (name, score),
            _ => return Err(format!("line {}: malformed row {line:?}", lineno + 2)),
        };
        let gate = netlist
            .find_gate(name)
            .ok_or_else(|| format!("line {}: unknown gate {name:?}", lineno + 2))?;
        let value: f64 = score
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad score {score:?}", lineno + 2))?;
        scores[gate.index()] = Some(value);
    }
    scores
        .iter()
        .enumerate()
        .map(|(i, s)| s.ok_or_else(|| format!("no score for gate {}", netlist.gates()[i].name)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusa_netlist::designs;
    use fusa_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn channels_and_combined_have_gate_count_rows() {
        let netlist = designs::or1200_icfsm();
        let rank = StaticRank::compute(&netlist);
        assert_eq!(rank.channels.len(), RANK_CHANNEL_NAMES.len());
        for channel in &rank.channels {
            assert_eq!(channel.len(), netlist.gate_count());
            assert!(channel.iter().all(|v| v.is_finite()));
        }
        assert_eq!(rank.combined.len(), netlist.gate_count());
        assert!(rank.combined.iter().all(|&c| (0.0..=1.0).contains(&c)));
    }

    #[test]
    fn ranking_is_a_descending_permutation() {
        let netlist = designs::uart_ctrl();
        let rank = StaticRank::compute(&netlist);
        let order = rank.ranking();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..netlist.gate_count()).collect::<Vec<_>>());
        for pair in order.windows(2) {
            assert!(rank.combined[pair[0]] >= rank.combined[pair[1]]);
        }
    }

    #[test]
    fn csv_lists_most_critical_first() {
        let netlist = designs::or1200_icfsm();
        let rank = StaticRank::compute(&netlist);
        let csv = rank.to_csv(&netlist);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("gate,combined,controllability"));
        assert_eq!(lines.count(), netlist.gate_count());
    }

    #[test]
    fn fractional_ranks_normalize_and_average_ties() {
        let ranks = fractional_ranks(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(ranks[1], 0.0);
        assert_eq!(ranks[0], 1.0);
        assert!((ranks[2] - 0.5).abs() < 1e-12);
        assert_eq!(ranks[2], ranks[3]);
    }

    #[test]
    fn ground_truth_roundtrips_through_csv() {
        let mut b = NetlistBuilder::new("gt");
        let a = b.primary_input("a");
        let x = b.gate_named("X", GateKind::Inv, &[a]);
        let y = b.gate_named("Y", GateKind::Buf, &[x]);
        b.primary_output("z", y);
        let n = b.finish().unwrap();
        let scores = parse_ground_truth(&n, "gate,score,label\nY,0.7500,1\nX,0.2500,0\n").unwrap();
        assert_eq!(scores, vec![0.25, 0.75]);
        assert!(parse_ground_truth(&n, "nope\n").is_err());
        assert!(parse_ground_truth(&n, "gate,score,label\nZZZ,1.0,1\n").is_err());
        assert!(parse_ground_truth(&n, "gate,score,label\nX,0.25,0\n")
            .unwrap_err()
            .contains("no score"));
    }

    #[test]
    fn evaluation_correlates_with_itself() {
        let netlist = designs::or1200_icfsm();
        let rank = StaticRank::compute(&netlist);
        let eval = rank.evaluate(&rank.combined);
        assert!((eval.combined_rho - 1.0).abs() < 1e-9);
        assert_eq!(eval.channel_rho.len(), RANK_CHANNEL_NAMES.len());
    }
}
