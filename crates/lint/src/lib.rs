//! `fusa-lint`: pass-based static analysis over validated gate-level
//! netlists.
//!
//! The linter audits designs for structural hazards (combinational
//! loops, floating nets, dead logic) and — central to the fault-
//! criticality flow — identifies *statically untestable stuck-at fault
//! sites*: gates whose output is provably constant, or from which no
//! primary output is reachable. Fault campaigns exclude these sites so
//! ground-truth criticality labels are not diluted by faults that no
//! workload could ever expose (§3.2 of the reproduced paper builds
//! labels from observed output corruption; untestable faults are
//! benign by construction).
//!
//! # Architecture
//!
//! * [`LintPass`] — a named, stateless analysis appending
//!   [`LintFinding`]s to a [`LintReport`];
//! * [`LintContext`] — shared dataflow facts (ternary constants,
//!   observability, reachability) computed once per design;
//! * [`all_passes`] / [`lint_netlist`] — the default pass registry and
//!   one-call entry point;
//! * [`untestable_stuck_at_sites`] — the machine-consumable summary the
//!   fault-injection pipeline uses to sanitize its fault list.
//!
//! # Example
//!
//! ```
//! use fusa_lint::lint_netlist;
//! use fusa_netlist::designs::or1200_icfsm;
//!
//! let report = lint_netlist(&or1200_icfsm());
//! assert_eq!(report.error_count(), 0);
//! println!("{}", report.render_text());
//! ```

pub mod context;
pub mod passes;
pub mod report;

pub use context::LintContext;
pub use report::{LintFinding, LintReport, LintSeverity};

use fusa_netlist::{GateId, Netlist};

/// A single static-analysis pass over a netlist.
///
/// Passes are stateless: all shared computation lives in the
/// [`LintContext`], so a pass is just a projection of those facts into
/// findings.
pub trait LintPass {
    /// Short kebab-case identifier (`const-gate`, `comb-loop`, …).
    fn name(&self) -> &'static str;

    /// One-line human-readable description.
    fn description(&self) -> &'static str;

    /// Appends this pass's findings to `report`.
    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport);
}

/// The default pass registry, in execution order.
pub fn all_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(passes::CombLoopPass),
        Box::new(passes::ConstGatePass),
        Box::new(passes::UnobservablePass),
        Box::new(passes::DeadGatePass),
        Box::new(passes::DuplicateGatePass),
        Box::new(passes::ConnectivityPass),
        Box::new(passes::FanoutProfilePass),
        Box::new(passes::RegisterDisciplinePass),
        Box::new(passes::ScoapControlPass),
        Box::new(passes::ScoapObservePass),
        Box::new(passes::StructuralSpofPass),
    ]
}

/// Runs every registered pass over `netlist` and returns the report.
pub fn lint_netlist(netlist: &Netlist) -> LintReport {
    run_passes(netlist, &all_passes())
}

/// Runs the given passes over `netlist`.
pub fn run_passes(netlist: &Netlist, passes: &[Box<dyn LintPass>]) -> LintReport {
    let obs = fusa_obs::global();
    let _span = obs.span("lint");
    // Status heartbeat over the pass pipeline (a no-op handle unless a
    // sink, --progress stderr or a status.json target is armed).
    let progress = fusa_obs::Progress::start(
        obs,
        "lint",
        "passes",
        passes.len() as u64,
        fusa_obs::ProgressConfig::default(),
    );
    let ctx = LintContext::new(netlist);
    let mut report = LintReport::new(netlist.name());
    for pass in passes {
        report.passes_run.push(pass.name());
        let begun = std::time::Instant::now();
        obs.time(pass.name(), || pass.run(&ctx, &mut report));
        obs.observe("lint.pass_seconds", begun.elapsed().as_secs_f64());
        progress.advance(1);
    }
    drop(progress);
    obs.add("lint.findings", report.findings.len() as u64);
    obs.add("lint.findings.error", report.error_count() as u64);
    obs.add("lint.findings.warning", report.warning_count() as u64);
    obs.add("lint.findings.info", report.info_count() as u64);
    report
}

/// Stuck-at fault sites that no workload can ever expose.
///
/// Returns `(gate, stuck_value)` pairs, sorted and deduplicated:
///
/// * a gate whose output is statically `v` contributes `(gate, v)` —
///   forcing the net to the value it already has changes nothing;
/// * a gate with no path to any primary output contributes both
///   polarities — the corruption can never be observed.
///
/// The fault-injection pipeline drops these sites from its campaign
/// fault list; the affected gates keep criticality score 0, exactly
/// what simulating them would have concluded, at zero cost.
pub fn untestable_stuck_at_sites(netlist: &Netlist) -> Vec<(GateId, bool)> {
    let ctx = LintContext::new(netlist);
    let mut sites = Vec::new();
    for i in 0..netlist.gate_count() {
        let gate = GateId(i as u32);
        if !ctx.is_observable(gate) {
            sites.push((gate, false));
            sites.push((gate, true));
            continue;
        }
        if let Some(v) = ctx.gate_const_value(gate) {
            sites.push((gate, v));
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusa_netlist::{designs, GateKind, NetlistBuilder};

    #[test]
    fn builtin_designs_are_error_clean() {
        // CI lints the built-in designs with `--deny warnings`, so they
        // must stay clean at Warning level too, not just Error.
        for netlist in designs::all_designs() {
            let report = lint_netlist(&netlist);
            assert!(
                !report.has_at_least(LintSeverity::Warning),
                "{}:\n{}",
                netlist.name(),
                report.render_text()
            );
            assert_eq!(report.passes_run.len(), all_passes().len());
        }
    }

    #[test]
    fn untestable_sites_cover_constants_and_unobservables() {
        let mut b = NetlistBuilder::new("u");
        let a = b.primary_input("a");
        let one = b.gate_named("T1", GateKind::Tie1, &[]);
        let c = b.gate_named("CONST", GateKind::Or2, &[a, one]); // const 1
        let orphan = b.gate_named("ORPHAN", GateKind::Inv, &[a]); // unobservable
        let z = b.gate_named("Z", GateKind::And2, &[a, c]);
        let _ = orphan;
        b.primary_output("z", z);
        let n = b.finish().unwrap();
        let sites = untestable_stuck_at_sites(&n);
        let of = |name: &str| n.find_gate(name).unwrap();
        assert!(sites.contains(&(of("CONST"), true)));
        assert!(!sites.contains(&(of("CONST"), false)));
        assert!(sites.contains(&(of("ORPHAN"), false)));
        assert!(sites.contains(&(of("ORPHAN"), true)));
        // The observable, non-constant AND gate contributes nothing.
        assert!(!sites.iter().any(|&(g, _)| g == of("Z")));
        // The tie cell is constant: its same-polarity fault is untestable.
        assert!(sites.contains(&(of("T1"), true)));
    }

    #[test]
    fn pass_registry_names_are_unique() {
        let passes = all_passes();
        let mut names: Vec<&str> = passes.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), passes.len());
        assert!(passes.iter().all(|p| !p.description().is_empty()));
    }
}
