//! The built-in lint passes.
//!
//! Each pass is a stateless [`LintPass`] implementation reading the
//! shared [`LintContext`] analyses and appending [`LintFinding`]s to
//! the report. Severity conventions:
//!
//! * `Error` — structural defects a validated netlist should never
//!   exhibit (combinational loops, undriven nets). These fire only on
//!   hand-constructed or externally parsed designs.
//! * `Warning` — suspicious structure a designer should review.
//! * `Info` — expected consequences of synthesis style (intentional
//!   constants, duplicate logic, fanout outliers, reset conventions)
//!   that still matter for fault-campaign ground truth.

use crate::context::LintContext;
use crate::report::{LintFinding, LintReport, LintSeverity};
use crate::LintPass;
use fusa_netlist::netlist::Driver;
use fusa_netlist::{combinational_loops, GateId, GateKind, Netlist, SCOAP_INF};
use std::collections::HashMap;

fn finding(
    pass: &'static str,
    code: &'static str,
    severity: LintSeverity,
    message: String,
) -> LintFinding {
    LintFinding {
        pass,
        code,
        severity,
        message,
        gate: None,
        net: None,
    }
}

fn gate_finding(
    netlist: &Netlist,
    gate: GateId,
    pass: &'static str,
    code: &'static str,
    severity: LintSeverity,
    message: String,
) -> LintFinding {
    let g = netlist.gate(gate);
    LintFinding {
        pass,
        code,
        severity,
        message,
        gate: Some(g.name.clone()),
        net: Some(netlist.net(g.output).name.clone()),
    }
}

/// L001: combinational loops (cycles not broken by a flip-flop).
///
/// Validated netlists are loop-free by construction, so a finding here
/// means the report was produced for a pre-validation design; it is
/// always an error.
pub struct CombLoopPass;

impl LintPass for CombLoopPass {
    fn name(&self) -> &'static str {
        "comb-loop"
    }

    fn description(&self) -> &'static str {
        "combinational cycles not broken by a flip-flop"
    }

    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        for component in combinational_loops(ctx.netlist) {
            let names: Vec<&str> = component
                .iter()
                .take(4)
                .map(|&g| ctx.netlist.gate(g).name.as_str())
                .collect();
            let ellipsis = if component.len() > 4 { ", …" } else { "" };
            let mut f = gate_finding(
                ctx.netlist,
                component[0],
                self.name(),
                "L001",
                LintSeverity::Error,
                format!(
                    "combinational loop through {} gate(s): {}{}",
                    component.len(),
                    names.join(", "),
                    ellipsis
                ),
            );
            f.net = None;
            report.findings.push(f);
        }
    }
}

/// L002: gates whose output is statically constant.
///
/// Found by exact ternary constant propagation. A stuck-at fault of the
/// same polarity as the constant is untestable (no workload can expose
/// it), so these sites are excluded from fault-campaign ground truth.
/// Intentional constant cells (`TIE0`/`TIE1`) are not reported.
pub struct ConstGatePass;

impl LintPass for ConstGatePass {
    fn name(&self) -> &'static str {
        "const-gate"
    }

    fn description(&self) -> &'static str {
        "gates statically stuck at 0/1 (untestable same-polarity faults)"
    }

    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        for (i, gate) in ctx.netlist.gates().iter().enumerate() {
            if gate.kind.is_constant() {
                continue;
            }
            let id = GateId(i as u32);
            if let Some(value) = ctx.gate_const_value(id) {
                let v = u8::from(value);
                report.findings.push(gate_finding(
                    ctx.netlist,
                    id,
                    self.name(),
                    "L002",
                    LintSeverity::Info,
                    format!(
                        "output is constant {v} under every input; stuck-at-{v} here is untestable"
                    ),
                ));
            }
        }
    }
}

/// L003: gates from which no primary output is reachable.
///
/// A fault at such a gate can never corrupt an output, in this or any
/// later clock cycle; both stuck-at polarities are untestable.
pub struct UnobservablePass;

impl LintPass for UnobservablePass {
    fn name(&self) -> &'static str {
        "unobservable"
    }

    fn description(&self) -> &'static str {
        "logic with no path to any primary output"
    }

    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        for (i, _) in ctx.netlist.gates().iter().enumerate() {
            let id = GateId(i as u32);
            if !ctx.is_observable(id) {
                report.findings.push(gate_finding(
                    ctx.netlist,
                    id,
                    self.name(),
                    "L003",
                    LintSeverity::Info,
                    "no path to any primary output; faults here are undetectable".to_string(),
                ));
            }
        }
    }
}

/// L004: gates unreachable from every primary input and flip-flop
/// output — their value is fixed at design time by constant cells.
pub struct DeadGatePass;

impl LintPass for DeadGatePass {
    fn name(&self) -> &'static str {
        "dead-gate"
    }

    fn description(&self) -> &'static str {
        "gates driven only by constant cones (no PI or register influence)"
    }

    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        for (i, gate) in ctx.netlist.gates().iter().enumerate() {
            if gate.kind.is_constant() {
                continue; // ties are intentional sources
            }
            let id = GateId(i as u32);
            if !ctx.is_reachable(id) {
                report.findings.push(gate_finding(
                    ctx.netlist,
                    id,
                    self.name(),
                    "L004",
                    LintSeverity::Info,
                    "driven only by constant cells; no primary input or register influences it"
                        .to_string(),
                ));
            }
        }
    }
}

/// L005: structurally duplicate gates — same cell, same input nets.
///
/// Symmetric cells (AND/OR/NAND/NOR/XOR/XNOR families) compare their
/// inputs as sets; asymmetric cells (MUX, AOI/OAI, flip-flops) compare
/// pin-for-pin.
pub struct DuplicateGatePass;

fn inputs_are_symmetric(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And2
            | GateKind::And3
            | GateKind::And4
            | GateKind::Or2
            | GateKind::Or3
            | GateKind::Or4
            | GateKind::Nand2
            | GateKind::Nand3
            | GateKind::Nand4
            | GateKind::Nor2
            | GateKind::Nor3
            | GateKind::Nor4
            | GateKind::Xor2
            | GateKind::Xnor2
    )
}

impl LintPass for DuplicateGatePass {
    fn name(&self) -> &'static str {
        "duplicate-gate"
    }

    fn description(&self) -> &'static str {
        "gates computing the same function of the same nets"
    }

    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let netlist = ctx.netlist;
        let mut seen: HashMap<(GateKind, Vec<u32>), GateId> = HashMap::new();
        for (i, gate) in netlist.gates().iter().enumerate() {
            if gate.kind.is_constant() {
                continue; // ties trivially collide; they carry no logic
            }
            let id = GateId(i as u32);
            let mut key: Vec<u32> = gate.inputs.iter().map(|n| n.0).collect();
            if inputs_are_symmetric(gate.kind) {
                key.sort_unstable();
            }
            match seen.entry((gate.kind, key)) {
                std::collections::hash_map::Entry::Occupied(first) => {
                    report.findings.push(gate_finding(
                        netlist,
                        id,
                        self.name(),
                        "L005",
                        LintSeverity::Info,
                        format!(
                            "structurally identical to gate {} ({} of the same nets)",
                            netlist.gate(*first.get()).name,
                            gate.kind.cell_name()
                        ),
                    ));
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(id);
                }
            }
        }
    }
}

/// L006/L007/L008: connectivity audits — undriven nets, gate outputs
/// that nothing reads, and unused primary inputs.
pub struct ConnectivityPass;

impl LintPass for ConnectivityPass {
    fn name(&self) -> &'static str {
        "connectivity"
    }

    fn description(&self) -> &'static str {
        "floating/undriven nets, unread outputs, unused primary inputs"
    }

    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let netlist = ctx.netlist;
        for (i, net) in netlist.nets().iter().enumerate() {
            if net.driver.is_none() {
                let mut f = finding(
                    self.name(),
                    "L006",
                    LintSeverity::Error,
                    "net has no driver (floating)".to_string(),
                );
                f.net = Some(net.name.clone());
                report.findings.push(f);
            }
            let id = fusa_netlist::NetId(i as u32);
            if netlist.fanout_of_net(id).is_empty() && !netlist.is_primary_output(id) {
                match net.driver {
                    Some(Driver::Gate(g)) => {
                        report.findings.push(gate_finding(
                            netlist,
                            g,
                            self.name(),
                            "L007",
                            LintSeverity::Info,
                            "output net is read by nothing and is not a primary output".to_string(),
                        ));
                    }
                    Some(Driver::PrimaryInput) => {
                        let mut f = finding(
                            self.name(),
                            "L008",
                            LintSeverity::Warning,
                            "primary input is connected to nothing".to_string(),
                        );
                        f.net = Some(net.name.clone());
                        report.findings.push(f);
                    }
                    None => {}
                }
            }
        }
    }
}

/// L009: fanout outliers — gates whose fanout exceeds the design's mean
/// by more than four standard deviations (and at least 8).
///
/// High-fanout nodes concentrate fault criticality (a single stuck-at
/// fans out everywhere) and dominate the graph's degree distribution.
pub struct FanoutProfilePass;

impl LintPass for FanoutProfilePass {
    fn name(&self) -> &'static str {
        "fanout-profile"
    }

    fn description(&self) -> &'static str {
        "gates with outlier fanout (mean + 4 sigma, minimum 8)"
    }

    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let netlist = ctx.netlist;
        let n = netlist.gate_count();
        if n == 0 {
            return;
        }
        let fanouts: Vec<usize> = (0..n)
            .map(|i| netlist.fanout_of_gate(GateId(i as u32)).len())
            .collect();
        let mean = fanouts.iter().sum::<usize>() as f64 / n as f64;
        let variance = fanouts
            .iter()
            .map(|&f| (f as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let threshold = (mean + 4.0 * variance.sqrt()).max(8.0);
        for (i, &fanout) in fanouts.iter().enumerate() {
            if fanout as f64 > threshold {
                report.findings.push(gate_finding(
                    netlist,
                    GateId(i as u32),
                    self.name(),
                    "L009",
                    LintSeverity::Info,
                    format!(
                        "fanout {fanout} is an outlier (design mean {mean:.1}, \
                         threshold {threshold:.1})"
                    ),
                ));
            }
        }
    }
}

/// L010/L011: register discipline — flip-flops without a reset, and
/// reset-only flip-flops holding state through a combinational feedback
/// path with no enable pin to gate it.
pub struct RegisterDisciplinePass;

impl RegisterDisciplinePass {
    /// `true` if the D input of `ff` combinationally depends on the
    /// flip-flop's own output (a Q→D feedback path with no register in
    /// between).
    fn has_comb_feedback(netlist: &Netlist, ff: GateId) -> bool {
        let d_net = netlist.gate(ff).inputs[0];
        let mut stack: Vec<GateId> = match netlist.net(d_net).driver {
            Some(Driver::Gate(g)) => vec![g],
            _ => return false,
        };
        let mut visited = vec![false; netlist.gate_count()];
        while let Some(g) = stack.pop() {
            if g == ff {
                return true;
            }
            if visited[g.index()] || netlist.gate(g).kind.is_sequential() {
                continue;
            }
            visited[g.index()] = true;
            for pred in netlist.fanin_of_gate(g) {
                if pred == ff {
                    return true;
                }
                if !visited[pred.index()] && !netlist.gate(pred).kind.is_sequential() {
                    stack.push(pred);
                }
            }
        }
        false
    }
}

impl LintPass for RegisterDisciplinePass {
    fn name(&self) -> &'static str {
        "register-discipline"
    }

    fn description(&self) -> &'static str {
        "flip-flops without reset, and enable-less Q->D feedback"
    }

    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let netlist = ctx.netlist;
        for ff in netlist.sequential_gates() {
            let kind = netlist.gate(ff).kind;
            if matches!(kind, GateKind::Dff | GateKind::Dffe) {
                report.findings.push(gate_finding(
                    netlist,
                    ff,
                    self.name(),
                    "L010",
                    LintSeverity::Info,
                    format!(
                        "{} has no reset; power-up state is undefined",
                        kind.cell_name()
                    ),
                ));
            }
            if matches!(kind, GateKind::Dff | GateKind::Dffr)
                && Self::has_comb_feedback(netlist, ff)
            {
                report.findings.push(gate_finding(
                    netlist,
                    ff,
                    self.name(),
                    "L011",
                    LintSeverity::Info,
                    "holds state through Q->D feedback logic instead of an enable pin".to_string(),
                ));
            }
        }
    }
}

/// Mean and mean-plus-four-sigma outlier threshold (with a floor) of a
/// sample, the same grading [`FanoutProfilePass`] uses.
fn outlier_stats(values: &[f64], floor: f64) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, floor);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let variance = values.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, (mean + 4.0 * variance.sqrt()).max(floor))
}

/// L012/L013: hard-to-control fault sites, graded by SCOAP
/// controllability of the gate's output net.
///
/// * L012 (`Warning`) — one output value has *infinite* SCOAP
///   controllability although constant propagation does not prove the
///   net constant: typically state held only through feedback with no
///   composable way to load it (locked at its power-on value).
/// * L013 (`Info`) — finite controllability that is an extreme outlier
///   for the design (mean + 4 sigma, minimum 32): faults here activate
///   so rarely that campaign labels for them carry little signal.
pub struct ScoapControlPass;

impl LintPass for ScoapControlPass {
    fn name(&self) -> &'static str {
        "scoap-control"
    }

    fn description(&self) -> &'static str {
        "hard-to-control fault sites (SCOAP CC0/CC1 grading)"
    }

    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let netlist = ctx.netlist;
        let s = ctx.structural();
        let mut finite: Vec<f64> = Vec::new();
        for (i, gate) in netlist.gates().iter().enumerate() {
            if gate.kind.is_constant() {
                continue; // one-sided by design; L002 covers their cones
            }
            let id = GateId(i as u32);
            let (cc0, cc1) = (s.gate_cc0(netlist, id), s.gate_cc1(netlist, id));
            if cc0 == SCOAP_INF || cc1 == SCOAP_INF {
                if ctx.gate_const_value(id).is_none() {
                    let value = if cc0 == SCOAP_INF && cc1 == SCOAP_INF {
                        "either value".to_string()
                    } else {
                        format!("{}", u8::from(cc0 == SCOAP_INF))
                    };
                    report.findings.push(gate_finding(
                        netlist,
                        id,
                        self.name(),
                        "L012",
                        LintSeverity::Warning,
                        format!(
                            "no composable input sequence drives this output to {value}; \
                             logic is likely locked at its power-on state"
                        ),
                    ));
                }
            } else {
                finite.push(cc0.max(cc1) as f64);
            }
        }
        let (mean, threshold) = outlier_stats(&finite, 32.0);
        for (i, gate) in netlist.gates().iter().enumerate() {
            if gate.kind.is_constant() {
                continue;
            }
            let id = GateId(i as u32);
            let difficulty = s.gate_control_difficulty(netlist, id);
            if difficulty != SCOAP_INF && difficulty as f64 > threshold {
                report.findings.push(gate_finding(
                    netlist,
                    id,
                    self.name(),
                    "L013",
                    LintSeverity::Info,
                    format!(
                        "SCOAP controllability {difficulty} is an outlier \
                         (design mean {mean:.1}, threshold {threshold:.1})"
                    ),
                ));
            }
        }
    }
}

/// L014/L015: hard-to-observe fault sites, graded by SCOAP
/// observability of the gate's output net.
///
/// * L014 (`Info`) — a topological path to an output exists (the gate
///   is not L003-dead) but no SCOAP-sensitizable one: every path is
///   blocked by constants or per-gate-unsatisfiable side pins, so
///   faults here are unlikely to ever be detected. Info rather than
///   Warning because compositional sensitization is pessimistic under
///   reconvergence and fires on legitimate synthesized logic.
/// * L015 (`Info`) — finite observability that is an extreme outlier
///   (mean + 4 sigma, minimum 32).
pub struct ScoapObservePass;

impl LintPass for ScoapObservePass {
    fn name(&self) -> &'static str {
        "scoap-observe"
    }

    fn description(&self) -> &'static str {
        "hard-to-observe fault sites (SCOAP CO grading)"
    }

    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let netlist = ctx.netlist;
        let s = ctx.structural();
        let mut finite: Vec<f64> = Vec::new();
        for (i, gate) in netlist.gates().iter().enumerate() {
            if gate.kind.is_constant() {
                continue;
            }
            let id = GateId(i as u32);
            let co = s.gate_co(netlist, id);
            if co == SCOAP_INF {
                if ctx.is_observable(id) && ctx.gate_const_value(id).is_none() {
                    report.findings.push(gate_finding(
                        netlist,
                        id,
                        self.name(),
                        "L014",
                        LintSeverity::Info,
                        "a path to an output exists but none is sensitizable; \
                         faults here will never be detected"
                            .to_string(),
                    ));
                }
            } else {
                finite.push(co as f64);
            }
        }
        let (mean, threshold) = outlier_stats(&finite, 32.0);
        for (i, gate) in netlist.gates().iter().enumerate() {
            if gate.kind.is_constant() {
                continue;
            }
            let id = GateId(i as u32);
            let co = s.gate_co(netlist, id);
            if co != SCOAP_INF && co as f64 > threshold {
                report.findings.push(gate_finding(
                    netlist,
                    id,
                    self.name(),
                    "L015",
                    LintSeverity::Info,
                    format!(
                        "SCOAP observability {co} is an outlier \
                         (design mean {mean:.1}, threshold {threshold:.1})"
                    ),
                ));
            }
        }
    }
}

/// L016: single-point-of-failure corridors — articulation points of the
/// gate graph that also post-dominate a significant share of the design
/// (at least 8 gates and 5% of the gate count).
///
/// Every fault in the dominated cone must traverse such a gate to reach
/// an output, so a fault *on* the gate itself shadows the whole cone's
/// criticality: a classic common-cause site for safety-mechanism
/// placement.
pub struct StructuralSpofPass;

impl LintPass for StructuralSpofPass {
    fn name(&self) -> &'static str {
        "structural-spof"
    }

    fn description(&self) -> &'static str {
        "articulation points post-dominating a large cone"
    }

    fn run(&self, ctx: &LintContext<'_>, report: &mut LintReport) {
        let netlist = ctx.netlist;
        let s = ctx.structural();
        let threshold = 8.max(netlist.gate_count() / 20) as u32;
        for i in 0..netlist.gate_count() {
            if !s.articulation[i] {
                continue;
            }
            let dominated = s.dominated[i];
            if dominated >= threshold {
                report.findings.push(gate_finding(
                    netlist,
                    GateId(i as u32),
                    self.name(),
                    "L016",
                    LintSeverity::Info,
                    format!(
                        "single-point-of-failure corridor: articulation point that \
                         {dominated} gate(s) must traverse to reach an output"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_netlist;
    use fusa_netlist::NetlistBuilder;

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn const_gate_flagged_with_polarity() {
        let mut b = NetlistBuilder::new("c");
        let a = b.primary_input("a");
        let one = b.gate(GateKind::Tie1, &[]);
        let or = b.gate_named("OR", GateKind::Or2, &[a, one]); // const 1
        b.primary_output("z", or);
        let report = lint_netlist(&b.finish().unwrap());
        let hits = report.findings_for_pass("const-gate");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].gate.as_deref(), Some("OR"));
        assert!(
            hits[0].message.contains("stuck-at-1"),
            "{}",
            hits[0].message
        );
    }

    #[test]
    fn tie_cells_themselves_not_flagged_constant() {
        let mut b = NetlistBuilder::new("t");
        let one = b.gate(GateKind::Tie1, &[]);
        let z = b.gate(GateKind::Buf, &[one]);
        b.primary_output("z", z);
        let report = lint_netlist(&b.finish().unwrap());
        // The buffer is constant; the tie itself is not reported.
        let hits = report.findings_for_pass("const-gate");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn unobservable_gate_flagged() {
        let mut b = NetlistBuilder::new("u");
        let a = b.primary_input("a");
        let used = b.gate_named("USED", GateKind::Inv, &[a]);
        let orphan = b.gate_named("ORPHAN", GateKind::Buf, &[a]);
        let _orphan2 = b.gate_named("ORPHAN2", GateKind::Inv, &[orphan]);
        b.primary_output("z", used);
        let report = lint_netlist(&b.finish().unwrap());
        let hits = report.findings_for_pass("unobservable");
        let names: Vec<_> = hits.iter().map(|f| f.gate.as_deref().unwrap()).collect();
        assert!(
            names.contains(&"ORPHAN") && names.contains(&"ORPHAN2"),
            "{names:?}"
        );
        assert!(!names.contains(&"USED"));
    }

    #[test]
    fn dead_gate_flagged_but_not_ties() {
        let mut b = NetlistBuilder::new("d");
        let a = b.primary_input("a");
        let zero = b.gate_named("TIE", GateKind::Tie0, &[]);
        let dead = b.gate_named("DEAD", GateKind::Inv, &[zero]);
        let live = b.gate_named("LIVE", GateKind::And2, &[a, dead]);
        b.primary_output("z", live);
        let report = lint_netlist(&b.finish().unwrap());
        let hits = report.findings_for_pass("dead-gate");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].gate.as_deref(), Some("DEAD"));
    }

    #[test]
    fn duplicates_detected_up_to_commutation() {
        let mut b = NetlistBuilder::new("dup");
        let a = b.primary_input("a");
        let c = b.primary_input("b");
        let x = b.gate_named("X", GateKind::And2, &[a, c]);
        let y = b.gate_named("Y", GateKind::And2, &[c, a]); // same set
        let m1 = b.gate_named("M1", GateKind::Mux2, &[a, c, x]);
        let _m2 = b.gate_named("M2", GateKind::Mux2, &[c, a, x]); // different pins
        b.primary_output("y", y);
        b.primary_output("m", m1);
        let report = lint_netlist(&b.finish().unwrap());
        let hits = report.findings_for_pass("duplicate-gate");
        assert_eq!(hits.len(), 1, "{:?}", codes(&report));
        assert_eq!(hits[0].gate.as_deref(), Some("Y"));
        assert!(hits[0].message.contains('X'));
    }

    #[test]
    fn unread_output_and_unused_input_flagged() {
        let mut b = NetlistBuilder::new("conn");
        let a = b.primary_input("a");
        let _unused_pi = b.primary_input("nc");
        let z = b.gate_named("Z", GateKind::Inv, &[a]);
        let _orphan = b.gate_named("ORPHAN", GateKind::Buf, &[a]);
        b.primary_output("z", z);
        let report = lint_netlist(&b.finish().unwrap());
        let hits = report.findings_for_pass("connectivity");
        assert!(hits
            .iter()
            .any(|f| f.code == "L007" && f.gate.as_deref() == Some("ORPHAN")));
        assert!(hits
            .iter()
            .any(|f| f.code == "L008" && f.net.as_deref() == Some("nc")));
    }

    #[test]
    fn fanout_outlier_flagged() {
        let mut b = NetlistBuilder::new("fan");
        let a = b.primary_input("a");
        let hub = b.gate_named("HUB", GateKind::Buf, &[a]);
        let mut last = hub;
        // 40 readers of the hub in a chain-free structure, each read once.
        for i in 0..40 {
            let inv = b.gate_named(format!("I{i}"), GateKind::Nand2, &[hub, last]);
            last = inv;
        }
        b.primary_output("z", last);
        let report = lint_netlist(&b.finish().unwrap());
        let hits = report.findings_for_pass("fanout-profile");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].gate.as_deref(), Some("HUB"));
    }

    #[test]
    fn register_discipline_flags_resetless_and_feedback() {
        let mut b = NetlistBuilder::new("reg");
        let a = b.primary_input("a");
        // Resetless DFF with Q->D feedback through an AND.
        let q = b.net("q");
        let d = b.gate_named("FB", GateKind::And2, &[a, q]);
        b.gate_driving("REG", GateKind::Dff, &[d], q);
        // Clean Dffre register.
        let rst = b.primary_input("rst");
        let en = b.primary_input("en");
        let good = b.gate_named("GOOD", GateKind::Dffre, &[a, en, rst]);
        b.primary_output("q", q);
        b.primary_output("g", good);
        let report = lint_netlist(&b.finish().unwrap());
        let hits = report.findings_for_pass("register-discipline");
        let reg_codes: Vec<_> = hits
            .iter()
            .filter(|f| f.gate.as_deref() == Some("REG"))
            .map(|f| f.code)
            .collect();
        assert!(
            reg_codes.contains(&"L010") && reg_codes.contains(&"L011"),
            "{reg_codes:?}"
        );
        assert!(!hits.iter().any(|f| f.gate.as_deref() == Some("GOOD")));
    }

    #[test]
    fn loop_pass_reports_unvalidated_rings() {
        // Validated netlists cannot loop, so drive the pass directly on
        // a design whose validity we bypass via a sequential-then-mutate
        // trick is impossible from outside the netlist crate; instead
        // assert the pass stays quiet on a clean design.
        let mut b = NetlistBuilder::new("clean");
        let a = b.primary_input("a");
        let z = b.gate(GateKind::Inv, &[a]);
        b.primary_output("z", z);
        let report = lint_netlist(&b.finish().unwrap());
        assert!(report.findings_for_pass("comb-loop").is_empty());
        assert!(report.passes_run.contains(&"comb-loop"));
    }

    #[test]
    fn scoap_control_flags_locked_feedback() {
        let mut b = NetlistBuilder::new("lock");
        // A register holding state only through its own Q->D loop: no
        // input sequence can ever load it.
        let q = b.net("q");
        b.gate_driving("LOCKED", GateKind::Dff, &[q], q);
        let a = b.primary_input("a");
        let z = b.gate(GateKind::And2, &[a, q]);
        b.primary_output("z", z);
        let report = lint_netlist(&b.finish().unwrap());
        let hits = report.findings_for_pass("scoap-control");
        assert!(
            hits.iter()
                .any(|f| f.code == "L012" && f.gate.as_deref() == Some("LOCKED")),
            "{hits:?}"
        );
    }

    #[test]
    fn scoap_observe_flags_blocked_paths() {
        let mut b = NetlistBuilder::new("blk");
        let a = b.primary_input("a");
        let hid = b.gate_named("HID", GateKind::Inv, &[a]);
        let zero = b.gate(GateKind::Tie0, &[]);
        // HID reaches the output topologically, but the constant side
        // pin blocks every sensitization.
        let and = b.gate(GateKind::And2, &[hid, zero]);
        b.primary_output("z", and);
        let report = lint_netlist(&b.finish().unwrap());
        let hits = report.findings_for_pass("scoap-observe");
        assert!(
            hits.iter()
                .any(|f| f.code == "L014" && f.gate.as_deref() == Some("HID")),
            "{hits:?}"
        );
    }

    #[test]
    fn structural_spof_flags_convergence_corridors() {
        let mut b = NetlistBuilder::new("neck");
        // Ten independent cones folded through a collector chain: the
        // final buffer post-dominates every upstream gate.
        let mut acc = {
            let pi = b.primary_input("i0");
            b.gate(GateKind::Inv, &[pi])
        };
        for i in 1..10 {
            let pi = b.primary_input(format!("i{i}"));
            let inv = b.gate(GateKind::Inv, &[pi]);
            acc = b.gate_named(format!("F{i}"), GateKind::Xor2, &[acc, inv]);
        }
        let neck = b.gate(GateKind::Buf, &[acc]);
        b.primary_output("z", neck);
        let report = lint_netlist(&b.finish().unwrap());
        let hits = report.findings_for_pass("structural-spof");
        // The last fold gate is an interior articulation point that the
        // whole accumulated cone must traverse. (The terminal buffer has
        // undirected degree 1 and so is never an articulation point.)
        assert!(
            hits.iter()
                .any(|f| f.code == "L016" && f.gate.as_deref() == Some("F9")),
            "{hits:?}"
        );
    }

    #[test]
    fn clean_design_is_error_free() {
        let mut b = NetlistBuilder::new("clean");
        let a = b.primary_input("a");
        let rst = b.primary_input("rst");
        let x = b.gate(GateKind::Inv, &[a]);
        let q = b.gate(GateKind::Dffr, &[x, rst]);
        b.primary_output("q", q);
        let report = lint_netlist(&b.finish().unwrap());
        assert_eq!(report.error_count(), 0, "{}", report.render_text());
        assert_eq!(report.warning_count(), 0, "{}", report.render_text());
    }
}
