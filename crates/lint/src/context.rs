//! Shared structural analyses computed once and consumed by many passes.

use fusa_netlist::netlist::Driver;
use fusa_netlist::{GateId, Levelizer, NetId, Netlist, StructuralProfile};

/// A validated netlist plus the dataflow facts the passes share.
///
/// All analyses are computed eagerly in [`LintContext::new`]; each is
/// linear (or near-linear) in the size of the design, so the context is
/// cheap compared to even a single fault-simulation workload.
pub struct LintContext<'a> {
    /// The design under analysis.
    pub netlist: &'a Netlist,
    /// Ternary constant value of every net: `Some(v)` if the net is
    /// statically `v` under every input assignment, `None` if unknown.
    const_value: Vec<Option<bool>>,
    /// Whether each gate can reach a primary output through any path
    /// (combinational or through flip-flops). Faults on unobservable
    /// gates can never corrupt an output.
    observable: Vec<bool>,
    /// Whether each gate is reachable forward from a primary input or a
    /// flip-flop output. Constant cells are sources of their own and are
    /// deliberately *not* counted here.
    reachable: Vec<bool>,
    /// SCOAP testability and graph-centrality measures, shared by the
    /// structural criticality passes.
    structural: StructuralProfile,
}

impl<'a> LintContext<'a> {
    /// Computes all shared analyses for `netlist`.
    pub fn new(netlist: &'a Netlist) -> LintContext<'a> {
        LintContext {
            netlist,
            const_value: propagate_constants(netlist),
            observable: observable_gates(netlist),
            reachable: reachable_gates(netlist),
            structural: StructuralProfile::analyze(netlist),
        }
    }

    /// Static value of `net`, if the net is provably constant.
    pub fn const_value(&self, net: NetId) -> Option<bool> {
        self.const_value[net.index()]
    }

    /// Static value of the output net of `gate`, if provably constant.
    pub fn gate_const_value(&self, gate: GateId) -> Option<bool> {
        self.const_value(self.netlist.gate(gate).output)
    }

    /// `true` if a fault at `gate` could in principle reach a primary
    /// output (possibly after any number of clock cycles).
    pub fn is_observable(&self, gate: GateId) -> bool {
        self.observable[gate.index()]
    }

    /// `true` if `gate` is driven (transitively) by at least one primary
    /// input or flip-flop output.
    pub fn is_reachable(&self, gate: GateId) -> bool {
        self.reachable[gate.index()]
    }

    /// SCOAP testability and centrality measures of the design.
    pub fn structural(&self) -> &StructuralProfile {
        &self.structural
    }
}

/// Ternary forward dataflow over the combinational subgraph.
///
/// Primary inputs and flip-flop outputs are unknown (`None`); `TIE0` /
/// `TIE1` cells seed constants. Each combinational gate is evaluated
/// over every assignment of its unknown inputs (≤ 2⁴ evaluations, the
/// largest cell arity being 4); if every assignment agrees, the output
/// is constant. This is exact per-gate propagation, not just
/// kind-specific shortcuts, so e.g. `XOR(a, a)`-style reconvergence is
/// *not* folded (correct: per-gate enumeration treats the two pins
/// independently) while `AND(x, 0)` and `OAI21(1, x, y)` are.
fn propagate_constants(netlist: &Netlist) -> Vec<Option<bool>> {
    let mut value: Vec<Option<bool>> = vec![None; netlist.net_count()];
    let order = Levelizer::levelize(netlist);
    for &gate_id in order.order() {
        let gate = netlist.gate(gate_id);
        let inputs: Vec<Option<bool>> = gate.inputs.iter().map(|&n| value[n.index()]).collect();
        let unknown: Vec<usize> = (0..inputs.len()).filter(|&i| inputs[i].is_none()).collect();
        let mut assignment: Vec<bool> = inputs.iter().map(|v| v.unwrap_or(false)).collect();
        let mut result: Option<Option<bool>> = None; // None = no case yet
        for case in 0..(1u32 << unknown.len()) {
            for (bit, &pos) in unknown.iter().enumerate() {
                assignment[pos] = case & (1 << bit) != 0;
            }
            let out = gate.kind.eval_bool(&assignment, false);
            result = match result {
                None => Some(Some(out)),
                Some(Some(prev)) if prev == out => Some(Some(out)),
                _ => Some(None),
            };
            if result == Some(None) {
                break;
            }
        }
        value[gate.output.index()] = result.flatten();
    }
    value
}

/// Reverse reachability from primary outputs over gate fanin edges,
/// traversing through flip-flops: a gate is observable if some primary
/// output transitively depends on it, in this or any later cycle.
fn observable_gates(netlist: &Netlist) -> Vec<bool> {
    let mut observable = vec![false; netlist.gate_count()];
    let mut stack: Vec<GateId> = Vec::new();
    for (_, net) in netlist.primary_outputs() {
        if let Some(Driver::Gate(g)) = netlist.net(*net).driver {
            if !observable[g.index()] {
                observable[g.index()] = true;
                stack.push(g);
            }
        }
    }
    while let Some(g) = stack.pop() {
        for pred in netlist.fanin_of_gate(g) {
            if !observable[pred.index()] {
                observable[pred.index()] = true;
                stack.push(pred);
            }
        }
    }
    observable
}

/// Forward reachability from primary inputs and flip-flop outputs.
///
/// A gate is reachable if any of its input nets is a primary input, the
/// output of a flip-flop, or the output of a reachable gate. Gates
/// outside this set compute values fixed at design time (their inputs
/// are all constant cones); flip-flops themselves are reachable only
/// through their own inputs like any other gate, but their *outputs*
/// always act as sources for downstream logic.
fn reachable_gates(netlist: &Netlist) -> Vec<bool> {
    let mut reachable = vec![false; netlist.gate_count()];
    let mut stack: Vec<GateId> = Vec::new();

    let mark_readers_of = |net: NetId, reachable: &mut Vec<bool>, stack: &mut Vec<GateId>| {
        for &reader in netlist.fanout_of_net(net) {
            if !reachable[reader.index()] {
                reachable[reader.index()] = true;
                stack.push(reader);
            }
        }
    };

    for &pi in netlist.primary_inputs() {
        mark_readers_of(pi, &mut reachable, &mut stack);
    }
    for ff in netlist.sequential_gates() {
        mark_readers_of(netlist.gate(ff).output, &mut reachable, &mut stack);
    }
    while let Some(g) = stack.pop() {
        mark_readers_of(netlist.gate(g).output, &mut reachable, &mut stack);
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusa_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn constants_propagate_through_logic() {
        let mut b = NetlistBuilder::new("c");
        let a = b.primary_input("a");
        let zero = b.gate_named("Z", GateKind::Tie0, &[]);
        let and = b.gate_named("AND", GateKind::And2, &[a, zero]); // const 0
        let or = b.gate_named("OR", GateKind::Or2, &[a, zero]); // = a
        let inv = b.gate_named("INV", GateKind::Inv, &[and]); // const 1
        b.primary_output("x", or);
        b.primary_output("y", inv);
        let n = b.finish().unwrap();
        let ctx = LintContext::new(&n);
        assert_eq!(ctx.gate_const_value(n.find_gate("Z").unwrap()), Some(false));
        assert_eq!(
            ctx.gate_const_value(n.find_gate("AND").unwrap()),
            Some(false)
        );
        assert_eq!(
            ctx.gate_const_value(n.find_gate("INV").unwrap()),
            Some(true)
        );
        assert_eq!(ctx.gate_const_value(n.find_gate("OR").unwrap()), None);
    }

    #[test]
    fn flip_flop_outputs_are_unknown() {
        let mut b = NetlistBuilder::new("ff");
        let zero = b.gate(GateKind::Tie0, &[]);
        let q = b.gate_named("REG", GateKind::Dff, &[zero]);
        let z = b.gate_named("BUF", GateKind::Buf, &[q]);
        b.primary_output("z", z);
        let n = b.finish().unwrap();
        let ctx = LintContext::new(&n);
        // Conservative: the register's initial state is not modelled.
        assert_eq!(ctx.gate_const_value(n.find_gate("REG").unwrap()), None);
        assert_eq!(ctx.gate_const_value(n.find_gate("BUF").unwrap()), None);
    }

    #[test]
    fn observability_stops_at_unread_logic() {
        let mut b = NetlistBuilder::new("o");
        let a = b.primary_input("a");
        let used = b.gate_named("USED", GateKind::Inv, &[a]);
        let _orphan = b.gate_named("ORPHAN", GateKind::Buf, &[a]);
        b.primary_output("z", used);
        let n = b.finish().unwrap();
        let ctx = LintContext::new(&n);
        assert!(ctx.is_observable(n.find_gate("USED").unwrap()));
        assert!(!ctx.is_observable(n.find_gate("ORPHAN").unwrap()));
    }

    #[test]
    fn observability_traverses_flip_flops() {
        let mut b = NetlistBuilder::new("seq");
        let a = b.primary_input("a");
        let deep = b.gate_named("DEEP", GateKind::Inv, &[a]);
        let q = b.gate_named("REG", GateKind::Dff, &[deep]);
        let z = b.gate_named("OUT", GateKind::Buf, &[q]);
        b.primary_output("z", z);
        let n = b.finish().unwrap();
        let ctx = LintContext::new(&n);
        assert!(ctx.is_observable(n.find_gate("DEEP").unwrap()));
    }

    #[test]
    fn constant_cones_are_unreachable() {
        let mut b = NetlistBuilder::new("r");
        let a = b.primary_input("a");
        let zero = b.gate_named("Z", GateKind::Tie0, &[]);
        let deadish = b.gate_named("CONSTINV", GateKind::Inv, &[zero]);
        let live = b.gate_named("LIVE", GateKind::And2, &[a, deadish]);
        b.primary_output("z", live);
        let n = b.finish().unwrap();
        let ctx = LintContext::new(&n);
        assert!(!ctx.is_reachable(n.find_gate("Z").unwrap()));
        assert!(!ctx.is_reachable(n.find_gate("CONSTINV").unwrap()));
        assert!(ctx.is_reachable(n.find_gate("LIVE").unwrap()));
    }
}
