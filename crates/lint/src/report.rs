//! Findings, severities and the machine-readable lint report.

use std::fmt;

/// How serious a finding is.
///
/// Ordering matters: `Info < Warning < Error`, so severity thresholds
/// can be compared directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintSeverity {
    /// Expected or informational; no action required.
    Info,
    /// Suspicious structure worth reviewing.
    Warning,
    /// A defect; the design should not ship as-is.
    Error,
}

impl LintSeverity {
    /// Lowercase name used in reports (`info`, `warning`, `error`).
    pub fn as_str(self) -> &'static str {
        match self {
            LintSeverity::Info => "info",
            LintSeverity::Warning => "warning",
            LintSeverity::Error => "error",
        }
    }

    /// Parses a severity name (case-insensitive; plural accepted, so
    /// `--deny warnings` works as CI users expect).
    pub fn parse(text: &str) -> Option<LintSeverity> {
        match text.to_ascii_lowercase().as_str() {
            "info" | "infos" => Some(LintSeverity::Info),
            "warning" | "warnings" | "warn" => Some(LintSeverity::Warning),
            "error" | "errors" => Some(LintSeverity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for LintSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic produced by a lint pass.
///
/// Source locations are structural: the gate instance and/or net the
/// finding anchors to, by name, so reports stay meaningful after the
/// netlist object is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Name of the pass that produced the finding.
    pub pass: &'static str,
    /// Stable diagnostic code (`L0xx`), one per finding type.
    pub code: &'static str,
    /// Severity of this instance.
    pub severity: LintSeverity,
    /// Human-readable description.
    pub message: String,
    /// Gate instance the finding is attached to, if any.
    pub gate: Option<String>,
    /// Net the finding is attached to, if any.
    pub net: Option<String>,
}

impl LintFinding {
    /// `"gate U42"` / `"net ack"` / `"gate U42 (net ack)"` / `"design"`.
    pub fn location(&self) -> String {
        match (&self.gate, &self.net) {
            (Some(g), Some(n)) => format!("gate {g} (net {n})"),
            (Some(g), None) => format!("gate {g}"),
            (None, Some(n)) => format!("net {n}"),
            (None, None) => "design".to_string(),
        }
    }
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}/{}] {}: {}",
            self.severity,
            self.pass,
            self.code,
            self.location(),
            self.message
        )
    }
}

/// The result of running lint passes over one design.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Module name of the linted design.
    pub design: String,
    /// All findings, in pass order.
    pub findings: Vec<LintFinding>,
    /// Names of the passes that ran (whether or not they found anything).
    pub passes_run: Vec<&'static str>,
}

impl LintReport {
    /// An empty report for the named design.
    pub fn new(design: impl Into<String>) -> LintReport {
        LintReport {
            design: design.into(),
            findings: Vec::new(),
            passes_run: Vec::new(),
        }
    }

    /// Number of findings at exactly `severity`.
    pub fn count_at(&self, severity: LintSeverity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Number of `error` findings.
    pub fn error_count(&self) -> usize {
        self.count_at(LintSeverity::Error)
    }

    /// Number of `warning` findings.
    pub fn warning_count(&self) -> usize {
        self.count_at(LintSeverity::Warning)
    }

    /// Number of `info` findings.
    pub fn info_count(&self) -> usize {
        self.count_at(LintSeverity::Info)
    }

    /// `true` if any finding is at or above `severity`.
    pub fn has_at_least(&self, severity: LintSeverity) -> bool {
        self.findings.iter().any(|f| f.severity >= severity)
    }

    /// Findings produced by the named pass.
    pub fn findings_for_pass(&self, pass: &str) -> Vec<&LintFinding> {
        self.findings.iter().filter(|f| f.pass == pass).collect()
    }

    /// Human-readable report: summary line, then findings grouped by
    /// severity (errors first).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "lint {}: {} passes, {} findings ({} errors, {} warnings, {} info)\n",
            self.design,
            self.passes_run.len(),
            self.findings.len(),
            self.error_count(),
            self.warning_count(),
            self.count_at(LintSeverity::Info),
        ));
        for severity in [
            LintSeverity::Error,
            LintSeverity::Warning,
            LintSeverity::Info,
        ] {
            let group: Vec<&LintFinding> = self
                .findings
                .iter()
                .filter(|f| f.severity == severity)
                .collect();
            if group.is_empty() {
                continue;
            }
            out.push_str(&format!("\n{} ({}):\n", severity, group.len()));
            for finding in group {
                out.push_str(&format!(
                    "  [{}/{}] {}: {}\n",
                    finding.pass,
                    finding.code,
                    finding.location(),
                    finding.message
                ));
            }
        }
        out
    }

    /// CSV rendering with a header row; fields are quoted and escaped.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("design,pass,code,severity,gate,net,message\n");
        for finding in &self.findings {
            let row = [
                self.design.as_str(),
                finding.pass,
                finding.code,
                finding.severity.as_str(),
                finding.gate.as_deref().unwrap_or(""),
                finding.net.as_deref().unwrap_or(""),
                finding.message.as_str(),
            ];
            let escaped: Vec<String> = row.iter().map(|f| csv_field(f)).collect();
            out.push_str(&escaped.join(","));
            out.push('\n');
        }
        out
    }

    /// JSON rendering (one object with a `findings` array).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"design\": {},\n", json_string(&self.design)));
        out.push_str(&format!(
            "  \"passes_run\": [{}],\n",
            self.passes_run
                .iter()
                .map(|p| json_string(p))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"errors\": {},\n", self.error_count()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warning_count()));
        out.push_str("  \"findings\": [\n");
        let body: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "    {{\"pass\": {}, \"code\": {}, \"severity\": {}, \
                     \"gate\": {}, \"net\": {}, \"message\": {}}}",
                    json_string(f.pass),
                    json_string(f.code),
                    json_string(f.severity.as_str()),
                    f.gate.as_deref().map_or("null".to_string(), json_string),
                    f.net.as_deref().map_or("null".to_string(), json_string),
                    json_string(&f.message),
                )
            })
            .collect();
        out.push_str(&body.join(",\n"));
        if !body.is_empty() {
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn csv_field(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LintReport {
        let mut report = LintReport::new("demo");
        report.passes_run = vec!["const-gate", "dead-gate"];
        report.findings.push(LintFinding {
            pass: "const-gate",
            code: "L002",
            severity: LintSeverity::Warning,
            message: "output is constant 0".to_string(),
            gate: Some("U1".to_string()),
            net: Some("n,et\"x".to_string()),
        });
        report.findings.push(LintFinding {
            pass: "dead-gate",
            code: "L004",
            severity: LintSeverity::Error,
            message: "unreachable".to_string(),
            gate: Some("U2".to_string()),
            net: None,
        });
        report
    }

    #[test]
    fn severity_ordering() {
        assert!(LintSeverity::Info < LintSeverity::Warning);
        assert!(LintSeverity::Warning < LintSeverity::Error);
        assert_eq!(LintSeverity::parse("WARN"), Some(LintSeverity::Warning));
        assert_eq!(LintSeverity::parse("bogus"), None);
    }

    #[test]
    fn counts_and_threshold() {
        let report = sample_report();
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has_at_least(LintSeverity::Warning));
        assert!(report.has_at_least(LintSeverity::Error));
        assert_eq!(report.findings_for_pass("dead-gate").len(), 1);
    }

    #[test]
    fn text_groups_by_severity() {
        let text = sample_report().render_text();
        let error_pos = text.find("error (1):").unwrap();
        let warning_pos = text.find("warning (1):").unwrap();
        assert!(error_pos < warning_pos, "errors render first:\n{text}");
        assert!(text.contains("gate U1 (net n,et\"x)"));
    }

    #[test]
    fn csv_escapes_fields() {
        let csv = sample_report().render_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "design,pass,code,severity,gate,net,message"
        );
        assert!(csv.contains("\"n,et\"\"x\""), "{csv}");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let json = sample_report().render_json();
        assert!(json.contains("\"design\": \"demo\""));
        assert!(json.contains("\"n,et\\\"x\""));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"net\": null"));
    }

    #[test]
    fn empty_report_renders() {
        let report = LintReport::new("empty");
        assert!(report.render_text().contains("0 findings"));
        assert!(report.render_json().contains("\"findings\": [\n  ]"));
        assert_eq!(report.render_csv().lines().count(), 1);
    }
}
