//! Run manifests: the per-run provenance record.
//!
//! A [`RunManifest`] captures everything needed to audit or reproduce
//! one CLI run: the command line, design, flattened configuration, RNG
//! seeds, per-stage wall times (from a [`crate::Recorder`] snapshot),
//! counters/gauges, peak RSS and content digests of every output
//! artifact. It serializes to a stable, diffable JSON document
//! ([`RunManifest::to_json`]) and parses back ([`RunManifest::parse`])
//! for `fusa report`.

use crate::histogram::HistogramSummary;
use crate::json::{escape, fmt_f64, Json};
use crate::recorder::Snapshot;
use std::fmt;
use std::fmt::Write as _;

/// Schema identifier stamped into every newly written manifest.
pub const MANIFEST_SCHEMA: &str = "fusa-obs/manifest/v4";

/// The v3 schema; still accepted by [`RunManifest::parse`]. v3
/// manifests predate sharded campaigns: no `shard` spec and no
/// `merged_from` provenance (both default to a plain full run).
pub const MANIFEST_SCHEMA_V3: &str = "fusa-obs/manifest/v3";

/// The v2 schema; still accepted by [`RunManifest::parse`]. v2
/// manifests predate campaign durability: no `interrupted` flag and no
/// `quarantined` section (both default to clean-run values).
pub const MANIFEST_SCHEMA_V2: &str = "fusa-obs/manifest/v2";

/// The original schema; still accepted by [`RunManifest::parse`].
/// v1 manifests have no `build` or `histograms` sections and encode an
/// unknown peak RSS as `0` (v2+ uses `null`).
pub const MANIFEST_SCHEMA_V1: &str = "fusa-obs/manifest/v1";

/// One quarantined campaign unit, as recorded in the manifest (the
/// obs-side mirror of the fault simulator's quarantine record).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuarantinedUnitRecord {
    /// Flat unit index within the campaign.
    pub unit: u64,
    /// Workload the unit belonged to.
    pub workload: String,
    /// Fault-chunk index within the workload.
    pub chunk: u64,
    /// Attempts made before quarantining.
    pub attempts: u64,
    /// Rendered panic payload of the final attempt.
    pub panic: String,
}

/// The shard slice a run covered (`--shard index/total`), as recorded
/// in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecord {
    /// 1-based shard index.
    pub index: u64,
    /// Total number of shards.
    pub total: u64,
}

/// Provenance of one input to a `fusa merge` run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MergeSourceRecord {
    /// Path of the shard checkpoint that was merged.
    pub path: String,
    /// Shard index from the checkpoint's header, if it was sharded.
    pub shard_index: Option<u64>,
    /// Shard total from the checkpoint's header, if it was sharded.
    pub shard_total: Option<u64>,
    /// Units the checkpoint contributed to the merge.
    pub units: u64,
}

/// Wall time aggregate of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTime {
    /// Hierarchical span path (`campaign`, `campaign/golden`, …).
    pub name: String,
    /// Total wall seconds recorded under the path.
    pub seconds: f64,
    /// Number of completed spans aggregated.
    pub count: u64,
}

/// The per-run provenance record written as `results/<run>/manifest.json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    /// Run identifier (also the results directory name), e.g.
    /// `analyze-sdram_ctrl`.
    pub run_id: String,
    /// The full command line that produced the run.
    pub command: String,
    /// Module name of the analyzed design.
    pub design: String,
    /// Unix timestamp (seconds) when the run started.
    pub created_unix: u64,
    /// End-to-end wall time of the command, seconds.
    pub wall_seconds: f64,
    /// Worker threads the campaign used (0 if no campaign ran).
    pub threads: usize,
    /// `true` when the run was interrupted (SIGINT/SIGTERM) and holds
    /// partial results; such runs are resumable via `--resume`.
    pub interrupted: bool,
    /// `true` when the run's durability degraded: a storage write
    /// (checkpoint append, trace sink, …) outlived its retry budget and
    /// the run continued in memory only. Results are complete but the
    /// on-disk checkpoint is not trustworthy for `--resume`.
    pub degraded: bool,
    /// The `--shard index/total` slice this run covered; `None` for a
    /// full (or merged) campaign. Sharded runs hold partial results by
    /// design and are completed via `fusa merge`.
    pub shard: Option<ShardRecord>,
    /// Campaign units quarantined after exhausting their retry budget.
    pub quarantined: Vec<QuarantinedUnitRecord>,
    /// For a `fusa merge` run: the shard checkpoints that were unioned,
    /// in input order. Empty for every other command.
    pub merged_from: Vec<MergeSourceRecord>,
    /// Peak resident set size in bytes; `None` where the platform
    /// offers no measurement (non-Linux).
    pub peak_rss_bytes: Option<u64>,
    /// Build/toolchain provenance (`rustc`, `target`, `opt_level`,
    /// `git_commit`). Annotates cross-build comparisons; never part of
    /// digest computation.
    pub build: Vec<(String, String)>,
    /// Flattened configuration key/value pairs.
    pub config: Vec<(String, String)>,
    /// Named RNG seeds (`split`, `workloads`, `model`, …).
    pub seeds: Vec<(String, u64)>,
    /// Per-stage wall times from the recorder's span aggregates.
    pub stages: Vec<StageTime>,
    /// Counter values at the end of the run.
    pub counters: Vec<(String, u64)>,
    /// Gauge values at the end of the run.
    pub gauges: Vec<(String, f64)>,
    /// Latency/value distribution summaries (`campaign.unit_seconds`,
    /// `train.loss`, …) with p50/p90/p99 quantile estimates.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// `artifact name → fnv1a64:<hex>` content digests.
    pub digests: Vec<(String, String)>,
}

/// Error from [`RunManifest::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestError {
    /// The document is not valid JSON.
    Json(crate::json::JsonError),
    /// The document is JSON but not a known `fusa-obs/manifest/*`
    /// schema version.
    Schema(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Json(e) => write!(f, "invalid JSON: {e}"),
            ManifestError::Schema(what) => write!(f, "not a run manifest: {what}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl RunManifest {
    /// Starts a manifest for `run_id` describing `design`.
    pub fn new(run_id: &str, command: &str, design: &str) -> RunManifest {
        RunManifest {
            run_id: run_id.to_string(),
            command: command.to_string(),
            design: design.to_string(),
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            peak_rss_bytes: crate::rss::peak_rss_bytes(),
            ..RunManifest::default()
        }
    }

    /// Folds a recorder snapshot into the manifest's stages, counters,
    /// gauges and histogram summaries (replacing any previous values).
    pub fn absorb_snapshot(&mut self, snapshot: &Snapshot) {
        self.stages = snapshot
            .spans
            .iter()
            .map(|(name, stat)| StageTime {
                name: name.clone(),
                seconds: stat.seconds,
                count: stat.count,
            })
            .collect();
        self.counters = snapshot.counters.clone();
        self.gauges = snapshot.gauges.clone();
        self.histograms = snapshot
            .histograms
            .iter()
            .map(|(name, histogram)| (name.clone(), histogram.summary()))
            .collect();
    }

    /// Records a named output digest.
    pub fn add_digest(&mut self, artifact: &str, digest: String) {
        self.digests.push((artifact.to_string(), digest));
    }

    /// Sum of wall seconds over *top-level* stages (paths without `/`).
    /// Nested spans are excluded so the sum is comparable to
    /// [`RunManifest::wall_seconds`] without double counting.
    pub fn top_level_stage_seconds(&self) -> f64 {
        self.stages
            .iter()
            .filter(|s| !s.name.contains('/'))
            .map(|s| s.seconds)
            .sum()
    }

    /// Fraction of the run's wall time covered by top-level stages, in
    /// `[0, 1]`; 0 when no wall time was recorded.
    pub fn stage_coverage(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        (self.top_level_stage_seconds() / self.wall_seconds).clamp(0.0, 1.0)
    }

    /// Serializes the manifest as pretty-printed, stably ordered JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", escape(MANIFEST_SCHEMA));
        let _ = writeln!(out, "  \"run_id\": {},", escape(&self.run_id));
        let _ = writeln!(out, "  \"command\": {},", escape(&self.command));
        let _ = writeln!(out, "  \"design\": {},", escape(&self.design));
        let _ = writeln!(out, "  \"created_unix\": {},", self.created_unix);
        let _ = writeln!(out, "  \"wall_seconds\": {},", fmt_f64(self.wall_seconds));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"interrupted\": {},", self.interrupted);
        let _ = writeln!(out, "  \"degraded\": {},", self.degraded);
        match self.shard {
            Some(shard) => {
                let _ = writeln!(
                    out,
                    "  \"shard\": {{\"index\": {}, \"total\": {}}},",
                    shard.index, shard.total
                );
            }
            None => out.push_str("  \"shard\": null,\n"),
        }
        match self.peak_rss_bytes {
            Some(bytes) => {
                let _ = writeln!(out, "  \"peak_rss_bytes\": {bytes},");
            }
            None => out.push_str("  \"peak_rss_bytes\": null,\n"),
        }
        write_str_map(&mut out, "build", &self.build);
        write_str_map(&mut out, "config", &self.config);
        write_num_map(&mut out, "seeds", &self.seeds, |v| v.to_string());
        out.push_str("  \"stages\": [\n");
        for (i, stage) in self.stages.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"seconds\": {}, \"count\": {}}}",
                escape(&stage.name),
                fmt_f64(stage.seconds),
                stage.count
            );
            out.push_str(if i + 1 < self.stages.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        if self.quarantined.is_empty() {
            out.push_str("  \"quarantined\": [],\n");
        } else {
            out.push_str("  \"quarantined\": [\n");
            for (i, q) in self.quarantined.iter().enumerate() {
                let _ = write!(
                    out,
                    "    {{\"unit\": {}, \"workload\": {}, \"chunk\": {}, \
                     \"attempts\": {}, \"panic\": {}}}",
                    q.unit,
                    escape(&q.workload),
                    q.chunk,
                    q.attempts,
                    escape(&q.panic)
                );
                out.push_str(if i + 1 < self.quarantined.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  ],\n");
        }
        if self.merged_from.is_empty() {
            out.push_str("  \"merged_from\": [],\n");
        } else {
            out.push_str("  \"merged_from\": [\n");
            for (i, source) in self.merged_from.iter().enumerate() {
                let shard_num =
                    |v: Option<u64>| v.map_or_else(|| "null".to_string(), |v| v.to_string());
                let _ = write!(
                    out,
                    "    {{\"path\": {}, \"shard_index\": {}, \"shard_total\": {}, \
                     \"units\": {}}}",
                    escape(&source.path),
                    shard_num(source.shard_index),
                    shard_num(source.shard_total),
                    source.units
                );
                out.push_str(if i + 1 < self.merged_from.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  ],\n");
        }
        write_num_map(&mut out, "counters", &self.counters, |v| v.to_string());
        write_num_map(&mut out, "gauges", &self.gauges, |v| fmt_f64(*v));
        write_num_map(&mut out, "histograms", &self.histograms, |h| {
            format!(
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count,
                fmt_f64(h.sum),
                fmt_f64(h.min),
                fmt_f64(h.max),
                fmt_f64(h.p50),
                fmt_f64(h.p90),
                fmt_f64(h.p99)
            )
        });
        write_str_map_last(&mut out, "digests", &self.digests);
        out.push_str("}\n");
        out
    }

    /// Parses a manifest previously produced by [`RunManifest::to_json`],
    /// accepting the current v4 schema and legacy v1–v3 documents
    /// (v1: no `build`/`histograms`, peak RSS `0` means unknown;
    /// v1/v2: no `interrupted`/`quarantined`, which default to a clean,
    /// complete run; v1–v3: no `shard`/`merged_from`, which default to
    /// a full unmerged run).
    pub fn parse(text: &str) -> Result<RunManifest, ManifestError> {
        let root = Json::parse(text).map_err(ManifestError::Json)?;
        let schema = root
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| ManifestError::Schema("missing `schema` field".into()))?;
        let legacy_v1 = schema == MANIFEST_SCHEMA_V1;
        let legacy_v2 = schema == MANIFEST_SCHEMA_V2;
        let legacy_v3 = schema == MANIFEST_SCHEMA_V3;
        if !legacy_v1 && !legacy_v2 && !legacy_v3 && schema != MANIFEST_SCHEMA {
            return Err(ManifestError::Schema(format!(
                "unsupported schema `{schema}` (expected `{MANIFEST_SCHEMA}`, \
                 `{MANIFEST_SCHEMA_V3}`, `{MANIFEST_SCHEMA_V2}` or `{MANIFEST_SCHEMA_V1}`)"
            )));
        }
        let str_field = |key: &str| -> Result<String, ManifestError> {
            root.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ManifestError::Schema(format!("missing string `{key}`")))
        };
        let u64_field = |key: &str| -> Result<u64, ManifestError> {
            root.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| ManifestError::Schema(format!("missing integer `{key}`")))
        };
        let f64_field = |key: &str| -> Result<f64, ManifestError> {
            root.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ManifestError::Schema(format!("missing number `{key}`")))
        };

        let mut stages = Vec::new();
        for stage in root
            .get("stages")
            .and_then(Json::as_arr)
            .ok_or_else(|| ManifestError::Schema("missing array `stages`".into()))?
        {
            stages.push(StageTime {
                name: stage
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ManifestError::Schema("stage without `name`".into()))?
                    .to_string(),
                seconds: stage
                    .get("seconds")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ManifestError::Schema("stage without `seconds`".into()))?,
                count: stage.get("count").and_then(Json::as_u64).unwrap_or(1),
            });
        }

        // v2 writes `null` for an unavailable RSS; v1 wrote `0`.
        let peak_rss_bytes = match root.get("peak_rss_bytes") {
            Some(Json::Null) => None,
            Some(value) => {
                let bytes = value.as_u64().ok_or_else(|| {
                    ManifestError::Schema("bad value for `peak_rss_bytes`".into())
                })?;
                if legacy_v1 && bytes == 0 {
                    None
                } else {
                    Some(bytes)
                }
            }
            None => return Err(ManifestError::Schema("missing `peak_rss_bytes`".into())),
        };

        let build = if legacy_v1 {
            Vec::new()
        } else {
            parse_str_map(&root, "build")?
        };
        let histograms = if legacy_v1 {
            Vec::new()
        } else {
            parse_map(&root, "histograms", parse_histogram_summary)?
        };

        // v3 durability fields; lenient defaults keep v1/v2 parsing.
        let interrupted = matches!(root.get("interrupted"), Some(Json::Bool(true)));
        // Degraded-durability flag; lenient so pre-flag manifests parse.
        let degraded = matches!(root.get("degraded"), Some(Json::Bool(true)));

        // v4 shard/merge fields; lenient defaults keep v1–v3 parsing.
        let shard = match root.get("shard") {
            Some(Json::Null) | None => None,
            Some(value) => Some(ShardRecord {
                index: value
                    .get("index")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ManifestError::Schema("shard without `index`".into()))?,
                total: value
                    .get("total")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ManifestError::Schema("shard without `total`".into()))?,
            }),
        };
        let mut merged_from = Vec::new();
        if let Some(items) = root.get("merged_from").and_then(Json::as_arr) {
            for item in items {
                merged_from.push(MergeSourceRecord {
                    path: item
                        .get("path")
                        .and_then(Json::as_str)
                        .ok_or_else(|| {
                            ManifestError::Schema("merged_from entry without `path`".into())
                        })?
                        .to_string(),
                    shard_index: item.get("shard_index").and_then(Json::as_u64),
                    shard_total: item.get("shard_total").and_then(Json::as_u64),
                    units: item.get("units").and_then(Json::as_u64).unwrap_or(0),
                });
            }
        }
        let mut quarantined = Vec::new();
        if let Some(items) = root.get("quarantined").and_then(Json::as_arr) {
            for item in items {
                quarantined.push(QuarantinedUnitRecord {
                    unit: item.get("unit").and_then(Json::as_u64).ok_or_else(|| {
                        ManifestError::Schema("quarantined unit without `unit`".into())
                    })?,
                    workload: item
                        .get("workload")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    chunk: item.get("chunk").and_then(Json::as_u64).unwrap_or(0),
                    attempts: item.get("attempts").and_then(Json::as_u64).unwrap_or(0),
                    panic: item
                        .get("panic")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                });
            }
        }

        Ok(RunManifest {
            run_id: str_field("run_id")?,
            command: str_field("command")?,
            design: str_field("design")?,
            created_unix: u64_field("created_unix")?,
            wall_seconds: f64_field("wall_seconds")?,
            threads: u64_field("threads")? as usize,
            interrupted,
            degraded,
            shard,
            quarantined,
            merged_from,
            peak_rss_bytes,
            build,
            config: parse_str_map(&root, "config")?,
            seeds: parse_map(&root, "seeds", Json::as_u64)?,
            stages,
            counters: parse_map(&root, "counters", Json::as_u64)?,
            gauges: parse_map(&root, "gauges", Json::as_f64)?,
            histograms,
            digests: parse_str_map(&root, "digests")?,
        })
    }
}

fn parse_histogram_summary(value: &Json) -> Option<HistogramSummary> {
    Some(HistogramSummary {
        count: value.get("count").and_then(Json::as_u64)?,
        sum: value.get("sum").and_then(Json::as_f64)?,
        min: value.get("min").and_then(Json::as_f64)?,
        max: value.get("max").and_then(Json::as_f64)?,
        p50: value.get("p50").and_then(Json::as_f64)?,
        p90: value.get("p90").and_then(Json::as_f64)?,
        p99: value.get("p99").and_then(Json::as_f64)?,
    })
}

fn write_str_map(out: &mut String, key: &str, map: &[(String, String)]) {
    write_map_with(out, key, map, |v| escape(v), true);
}

fn write_str_map_last(out: &mut String, key: &str, map: &[(String, String)]) {
    write_map_with(out, key, map, |v| escape(v), false);
}

fn write_num_map<T>(out: &mut String, key: &str, map: &[(String, T)], fmt: impl Fn(&T) -> String) {
    write_map_with(out, key, map, fmt, true);
}

fn write_map_with<T>(
    out: &mut String,
    key: &str,
    map: &[(String, T)],
    fmt: impl Fn(&T) -> String,
    trailing_comma: bool,
) {
    let _ = write!(out, "  {}: {{", escape(key));
    if !map.is_empty() {
        out.push('\n');
        for (i, (name, value)) in map.iter().enumerate() {
            let _ = write!(out, "    {}: {}", escape(name), fmt(value));
            out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ");
    }
    out.push('}');
    out.push_str(if trailing_comma { ",\n" } else { "\n" });
}

fn parse_str_map(root: &Json, key: &str) -> Result<Vec<(String, String)>, ManifestError> {
    parse_map(root, key, |v| v.as_str().map(str::to_string))
}

fn parse_map<T>(
    root: &Json,
    key: &str,
    convert: impl Fn(&Json) -> Option<T>,
) -> Result<Vec<(String, T)>, ManifestError> {
    let members = root
        .get(key)
        .and_then(Json::as_obj)
        .ok_or_else(|| ManifestError::Schema(format!("missing object `{key}`")))?;
    members
        .iter()
        .map(|(name, value)| {
            convert(value)
                .map(|v| (name.clone(), v))
                .ok_or_else(|| ManifestError::Schema(format!("bad value for `{key}.{name}`")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            run_id: "analyze-sdram_ctrl".into(),
            command: "fusa analyze sdram_ctrl --trace-out t.jsonl".into(),
            design: "sdram_ctrl".into(),
            created_unix: 1_754_000_000,
            wall_seconds: 2.5,
            threads: 8,
            interrupted: false,
            degraded: false,
            shard: None,
            quarantined: vec![],
            merged_from: vec![],
            peak_rss_bytes: Some(12_345_678),
            build: vec![
                ("opt_level".into(), "3".into()),
                ("rustc".into(), "rustc 1.95.0".into()),
                ("target".into(), "x86_64-unknown-linux-gnu".into()),
            ],
            config: vec![
                ("workloads.num".into(), "24".into()),
                ("train.epochs".into(), "300".into()),
            ],
            seeds: vec![("split".into(), 0x5117), ("workloads".into(), 7)],
            stages: vec![
                StageTime {
                    name: "campaign".into(),
                    seconds: 1.5,
                    count: 1,
                },
                StageTime {
                    name: "campaign/golden".into(),
                    seconds: 0.25,
                    count: 24,
                },
                StageTime {
                    name: "train".into(),
                    seconds: 0.75,
                    count: 1,
                },
            ],
            counters: vec![("campaign.gate_evals".into(), 123_456_789)],
            gauges: vec![("campaign.utilization".into(), 0.875)],
            histograms: vec![(
                "campaign.unit_seconds".into(),
                HistogramSummary {
                    count: 96,
                    sum: 1.44,
                    min: 0.01,
                    max: 0.03,
                    p50: 0.015,
                    p90: 0.025,
                    p99: 0.03,
                },
            )],
            digests: vec![("nodes_csv".into(), "fnv1a64:00ff00ff00ff00ff".into())],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let manifest = sample();
        let text = manifest.to_json();
        let parsed = RunManifest::parse(&text).expect("parses");
        assert_eq!(parsed, manifest);
        // And the re-rendering is byte-identical (stable ordering).
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn round_trips_empty_maps() {
        let manifest = RunManifest {
            run_id: "x".into(),
            command: "fusa".into(),
            design: "d".into(),
            ..RunManifest::default()
        };
        let parsed = RunManifest::parse(&manifest.to_json()).expect("parses");
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn top_level_sum_skips_nested_stages() {
        let manifest = sample();
        assert!((manifest.top_level_stage_seconds() - 2.25).abs() < 1e-12);
        assert!((manifest.stage_coverage() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn absent_rss_round_trips_as_null() {
        let manifest = RunManifest {
            run_id: "x".into(),
            command: "fusa".into(),
            design: "d".into(),
            peak_rss_bytes: None,
            ..RunManifest::default()
        };
        let text = manifest.to_json();
        assert!(text.contains("\"peak_rss_bytes\": null"));
        assert_eq!(RunManifest::parse(&text).expect("parses"), manifest);
    }

    #[test]
    fn parses_legacy_v1_manifests() {
        // A v1 document: no build/histograms, RSS 0 means unknown.
        let v1 = r#"{
  "schema": "fusa-obs/manifest/v1",
  "run_id": "analyze-d",
  "command": "fusa analyze d",
  "design": "d",
  "created_unix": 1754000000,
  "wall_seconds": 1.5,
  "threads": 4,
  "peak_rss_bytes": 0,
  "config": {},
  "seeds": {"split": 7},
  "stages": [{"name": "campaign", "seconds": 1.0, "count": 1}],
  "counters": {"campaign.gate_evals": 10},
  "gauges": {},
  "digests": {"nodes_csv": "fnv1a64:0000000000000001"}
}"#;
        let manifest = RunManifest::parse(v1).expect("v1 parses");
        assert_eq!(manifest.peak_rss_bytes, None);
        assert!(manifest.build.is_empty());
        assert!(manifest.histograms.is_empty());
        assert_eq!(manifest.stages.len(), 1);
        // Re-serializing upgrades the document to the current schema.
        assert!(manifest
            .to_json()
            .starts_with("{\n  \"schema\": \"fusa-obs/manifest/v4\""));

        // A nonzero v1 RSS is preserved.
        let with_rss = v1.replace("\"peak_rss_bytes\": 0", "\"peak_rss_bytes\": 42");
        assert_eq!(
            RunManifest::parse(&with_rss).unwrap().peak_rss_bytes,
            Some(42)
        );
    }

    #[test]
    fn parses_legacy_v2_manifests() {
        // A v2 document is a v4 one minus the durability and shard
        // fields.
        let mut v2 = sample();
        v2.interrupted = false;
        v2.quarantined = Vec::new();
        let text = v2
            .to_json()
            .replace("fusa-obs/manifest/v4", "fusa-obs/manifest/v2")
            .replace("  \"interrupted\": false,\n", "")
            .replace("  \"degraded\": false,\n", "")
            .replace("  \"shard\": null,\n", "")
            .replace("  \"quarantined\": [],\n", "")
            .replace("  \"merged_from\": [],\n", "");
        assert!(!text.contains("interrupted"));
        let manifest = RunManifest::parse(&text).expect("v2 parses");
        assert!(!manifest.interrupted);
        assert!(manifest.quarantined.is_empty());
        assert_eq!(manifest, v2);
        // Re-serializing upgrades to v4 with clean defaults.
        assert!(manifest.to_json().contains("\"interrupted\": false"));
        assert!(manifest.to_json().contains("\"shard\": null"));
    }

    #[test]
    fn parses_legacy_v3_manifests() {
        // A v3 document is a v4 one minus the shard/merge fields.
        let v3 = sample();
        let text = v3
            .to_json()
            .replace("fusa-obs/manifest/v4", "fusa-obs/manifest/v3")
            .replace("  \"shard\": null,\n", "")
            .replace("  \"merged_from\": [],\n", "")
            .replace("  \"degraded\": false,\n", "");
        assert!(!text.contains("shard"));
        let manifest = RunManifest::parse(&text).expect("v3 parses");
        assert_eq!(manifest.shard, None);
        assert!(manifest.merged_from.is_empty());
        assert_eq!(manifest, v3);
        // Re-serializing upgrades to v4 with full-run defaults.
        assert!(manifest
            .to_json()
            .starts_with("{\n  \"schema\": \"fusa-obs/manifest/v4\""));
    }

    #[test]
    fn shard_and_merge_fields_round_trip() {
        let mut manifest = sample();
        manifest.shard = Some(ShardRecord { index: 2, total: 3 });
        let text = manifest.to_json();
        assert!(text.contains("\"shard\": {\"index\": 2, \"total\": 3}"));
        let parsed = RunManifest::parse(&text).expect("parses");
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.to_json(), text);

        let mut merged = sample();
        merged.merged_from = vec![
            MergeSourceRecord {
                path: "shards/shard1.jsonl".into(),
                shard_index: Some(1),
                shard_total: Some(2),
                units: 5,
            },
            MergeSourceRecord {
                path: "shards/full.jsonl".into(),
                shard_index: None,
                shard_total: None,
                units: 3,
            },
        ];
        let text = merged.to_json();
        assert!(text.contains("\"merged_from\": [\n"));
        assert!(text.contains("\"shard_index\": null"));
        let parsed = RunManifest::parse(&text).expect("parses");
        assert_eq!(parsed, merged);
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn durability_fields_round_trip() {
        let mut manifest = sample();
        manifest.interrupted = true;
        manifest.degraded = true;
        manifest.quarantined = vec![QuarantinedUnitRecord {
            unit: 17,
            workload: "uniform_random#0".into(),
            chunk: 3,
            attempts: 3,
            panic: "injected unit fault (unit 17, attempt 3)".into(),
        }];
        let text = manifest.to_json();
        assert!(text.contains("\"interrupted\": true"));
        assert!(text.contains("\"degraded\": true"));
        assert!(text.contains("\"quarantined\": [\n"));
        let parsed = RunManifest::parse(&text).expect("parses");
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(matches!(
            RunManifest::parse("{}"),
            Err(ManifestError::Schema(_))
        ));
        assert!(matches!(
            RunManifest::parse("not json"),
            Err(ManifestError::Json(_))
        ));
        let wrong = r#"{"schema": "something/else"}"#;
        let err = RunManifest::parse(wrong).unwrap_err();
        assert!(err.to_string().contains("unsupported schema"));
    }

    #[test]
    fn absorb_snapshot_maps_all_sections() {
        let recorder = crate::Recorder::new();
        recorder.time("stage", || recorder.add("n", 2));
        recorder.gauge_set("g", 1.0);
        let mut manifest = RunManifest::new("run", "cmd", "design");
        manifest.absorb_snapshot(&recorder.snapshot());
        assert_eq!(manifest.stages.len(), 1);
        assert_eq!(manifest.stages[0].name, "stage");
        assert_eq!(manifest.counters, vec![("n".to_string(), 2)]);
        assert_eq!(manifest.gauges, vec![("g".to_string(), 1.0)]);
    }
}
