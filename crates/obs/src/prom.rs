//! Prometheus textfile-exporter rendering for `fusa export`.
//!
//! Renders the live [`StatusSnapshot`] and/or the post-run
//! [`RunManifest`] of one or more run dirs into the Prometheus text
//! exposition format, suitable for a node_exporter textfile collector:
//!
//! ```text
//! # HELP fusa_run_units_done Units completed by the run phase.
//! # TYPE fusa_run_units_done gauge
//! fusa_run_units_done{run="faults-x-shard0of2",design="x",shard="0/2",phase="campaign"} 37
//! ```
//!
//! Samples for the same metric name across runs are grouped under one
//! `# HELP`/`# TYPE` header pair, as the format requires. Metric names
//! derived from recorder counters/gauges are sanitised to the
//! Prometheus name alphabet (`[a-zA-Z0-9_:]`); label values escape
//! backslash, double-quote and newline per the exposition spec.

use crate::manifest::RunManifest;
use crate::status::StatusSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Everything exportable that one run dir yielded. Either part may be
/// absent (a live run has no manifest yet; a foreign run dir may hold
/// only a manifest).
#[derive(Debug, Clone, Default)]
pub struct PromRun {
    pub status: Option<StatusSnapshot>,
    pub manifest: Option<RunManifest>,
}

#[derive(Debug)]
struct MetricFamily {
    help: &'static str,
    kind: &'static str,
    /// `(label-block, value)` samples in insertion order.
    samples: Vec<(String, String)>,
}

#[derive(Debug, Default)]
struct Collector {
    /// Keyed by metric name; BTreeMap gives deterministic output order.
    families: BTreeMap<String, MetricFamily>,
}

impl Collector {
    fn sample(
        &mut self,
        name: &str,
        help: &'static str,
        kind: &'static str,
        labels: &str,
        value: String,
    ) {
        let family = self
            .families
            .entry(name.to_string())
            .or_insert(MetricFamily {
                help,
                kind,
                samples: Vec::new(),
            });
        family.samples.push((labels.to_string(), value));
    }

    fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind);
            for (labels, value) in &family.samples {
                let _ = writeln!(out, "{name}{labels} {value}");
            }
        }
        out
    }
}

/// Sanitises an arbitrary recorder metric name (`campaign.final_rate`)
/// into the Prometheus name alphabet (`fusa_campaign_final_rate`).
fn metric_name(raw: &str) -> String {
    let mut name = String::with_capacity(raw.len() + 5);
    name.push_str("fusa_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            name.push(c);
        } else {
            name.push('_');
        }
    }
    name
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float sample value; Prometheus accepts full `f64` text.
fn num(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

fn run_labels(run_id: &str, design: &str, shard: Option<(u64, u64)>, phase: &str) -> String {
    let shard = match shard {
        Some((index, total)) => format!("{index}/{total}"),
        None => String::new(),
    };
    format!(
        "{{run=\"{}\",design=\"{}\",shard=\"{}\",phase=\"{}\"}}",
        escape_label(run_id),
        escape_label(design),
        escape_label(&shard),
        escape_label(phase),
    )
}

/// Renders the given runs into one Prometheus exposition document.
pub fn render_prometheus(runs: &[PromRun]) -> String {
    let mut collector = Collector::default();
    for run in runs {
        if let Some(status) = &run.status {
            collect_status(&mut collector, status);
        }
        if let Some(manifest) = &run.manifest {
            collect_manifest(&mut collector, manifest);
        }
    }
    collector.render()
}

fn collect_status(collector: &mut Collector, status: &StatusSnapshot) {
    let labels = run_labels(&status.run_id, &status.design, status.shard, &status.phase);
    let mut gauge = |name: &str, help: &'static str, value: f64| {
        collector.sample(name, help, "gauge", &labels, num(value));
    };
    gauge(
        "fusa_run_units_done",
        "Units completed by the run phase.",
        status.done as f64,
    );
    gauge(
        "fusa_run_units_total",
        "Units the run phase owns in total (shard-local).",
        status.total as f64,
    );
    gauge(
        "fusa_run_work_units",
        "Auxiliary work units completed (fault-cycles for campaigns).",
        status.work as f64,
    );
    gauge(
        "fusa_run_rate",
        "Throughput in work units per second (done/s when no work units).",
        status.rate,
    );
    gauge(
        "fusa_run_eta_seconds",
        "Estimated seconds until the phase completes.",
        status.eta_seconds,
    );
    gauge(
        "fusa_run_elapsed_seconds",
        "Seconds since the phase started.",
        status.elapsed_seconds,
    );
    gauge(
        "fusa_run_quarantined_units",
        "Units quarantined after repeated panics.",
        status.quarantined as f64,
    );
    gauge(
        "fusa_run_workers",
        "Worker threads serving the phase.",
        status.workers as f64,
    );
    gauge(
        "fusa_run_busy_fraction",
        "Fraction of elapsed*workers spent inside work items.",
        status.busy_fraction,
    );
    if let Some(bytes) = status.peak_rss_bytes {
        gauge(
            "fusa_run_peak_rss_bytes",
            "Peak resident set size of the run process.",
            bytes as f64,
        );
    }
    gauge(
        "fusa_run_updated_unix",
        "Unix timestamp of the latest status snapshot.",
        status.updated_unix,
    );
    gauge(
        "fusa_run_finished",
        "1 when the phase emitted its final beat.",
        if status.finished { 1.0 } else { 0.0 },
    );
}

fn collect_manifest(collector: &mut Collector, manifest: &RunManifest) {
    let shard = manifest.shard.as_ref().map(|s| (s.index, s.total));
    let labels = run_labels(&manifest.run_id, &manifest.design, shard, "");
    collector.sample(
        "fusa_manifest_wall_seconds",
        "End-to-end wall time of the finished run.",
        "gauge",
        &labels,
        num(manifest.wall_seconds),
    );
    collector.sample(
        "fusa_manifest_interrupted",
        "1 when the run was interrupted and holds partial results.",
        "gauge",
        &labels,
        num(if manifest.interrupted { 1.0 } else { 0.0 }),
    );
    if let Some(bytes) = manifest.peak_rss_bytes {
        collector.sample(
            "fusa_manifest_peak_rss_bytes",
            "Peak resident set size recorded in the manifest.",
            "gauge",
            &labels,
            num(bytes as f64),
        );
    }
    for stage in &manifest.stages {
        let stage_labels = format!(
            "{},stage=\"{}\"}}",
            &labels[..labels.len() - 1],
            escape_label(&stage.name)
        );
        collector.sample(
            "fusa_stage_seconds",
            "Wall seconds recorded under a named span path.",
            "gauge",
            &stage_labels,
            num(stage.seconds),
        );
    }
    for (name, value) in &manifest.counters {
        collector.sample(
            &metric_name(name),
            "Recorder counter at end of run.",
            "counter",
            &labels,
            num(*value as f64),
        );
    }
    for (name, value) in &manifest.gauges {
        collector.sample(
            &metric_name(name),
            "Recorder gauge at end of run.",
            "gauge",
            &labels,
            num(*value),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status() -> StatusSnapshot {
        StatusSnapshot {
            run_id: "faults-x-shard0of2".into(),
            design: "x".into(),
            shard: Some((0, 2)),
            pid: 1,
            phase: "campaign".into(),
            unit: "units".into(),
            done: 37,
            total: 48,
            work: 1000,
            rate: 1.5,
            eta_seconds: 4.0,
            elapsed_seconds: 8.0,
            quarantined: 2,
            workers: 4,
            busy_fraction: 0.5,
            peak_rss_bytes: Some(1024),
            updated_unix: 1_700_000_000.0,
            finished: false,
            degraded: false,
        }
    }

    #[test]
    fn status_renders_grouped_gauges() {
        let text = render_prometheus(&[PromRun {
            status: Some(status()),
            manifest: None,
        }]);
        assert!(text.contains("# HELP fusa_run_units_done"), "{text}");
        assert!(text.contains("# TYPE fusa_run_units_done gauge"), "{text}");
        assert!(
            text.contains(
                "fusa_run_units_done{run=\"faults-x-shard0of2\",design=\"x\",shard=\"0/2\",phase=\"campaign\"} 37"
            ),
            "{text}"
        );
        assert!(
            text.contains("fusa_run_rate{") && text.contains("} 1.5"),
            "{text}"
        );
        assert!(text.contains("fusa_run_finished{"), "{text}");
        // One header pair per family even with multiple runs.
        let two = render_prometheus(&[
            PromRun {
                status: Some(status()),
                manifest: None,
            },
            PromRun {
                status: Some(StatusSnapshot {
                    run_id: "faults-x-shard1of2".into(),
                    shard: Some((1, 2)),
                    ..status()
                }),
                manifest: None,
            },
        ]);
        assert_eq!(two.matches("# TYPE fusa_run_units_done").count(), 1);
        assert_eq!(two.matches("fusa_run_units_done{").count(), 2);
    }

    #[test]
    fn manifest_metrics_are_sanitised_and_typed() {
        let manifest = RunManifest {
            run_id: "faults-x".into(),
            design: "x".into(),
            wall_seconds: 2.5,
            counters: vec![("campaign.gate_evals".into(), 77)],
            gauges: vec![("campaign.final_rate".into(), 123.0)],
            stages: vec![crate::manifest::StageTime {
                name: "campaign/golden".into(),
                seconds: 1.25,
                count: 1,
            }],
            ..RunManifest::default()
        };
        let text = render_prometheus(&[PromRun {
            status: None,
            manifest: Some(manifest),
        }]);
        assert!(
            text.contains("# TYPE fusa_campaign_gate_evals counter"),
            "{text}"
        );
        assert!(text.contains("fusa_campaign_gate_evals{"), "{text}");
        assert!(
            text.contains("# TYPE fusa_campaign_final_rate gauge"),
            "{text}"
        );
        assert!(text.contains("stage=\"campaign/golden\"} 1.25"), "{text}");
        assert!(text.contains("fusa_manifest_wall_seconds{"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(num(37.0), "37");
        assert_eq!(num(1.5), "1.5");
    }
}
