//! Trace querying for `fusa trace`: offline analysis of the JSONL
//! span/event streams written by `--trace-out`.
//!
//! The recorder's sink emits one JSON object per line:
//! `{"ts":…,"kind":"span","thread":…,"name":"campaign/golden","seconds":…}`
//! for every completed span (full hierarchical path), plus `progress`,
//! `epoch`, `campaign` … events. [`TraceReport`] aggregates such a
//! stream into:
//!
//! - event counts per kind,
//! - per-span-path statistics: call count, total wall, **self** wall
//!   (total minus the total of direct children — a poor man's
//!   flamegraph), and a latency histogram with p50/p90/p99,
//! - a span tree rendered by path depth.
//!
//! Self time is clamped at zero: spans whose direct children ran on
//! other threads (the campaign worker pool roots its per-unit spans
//! under the campaign span) can legitimately accumulate more child
//! wall than parent wall.

use crate::histogram::Histogram;
use crate::json::Json;
use crate::render::format_quantity;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Line filter applied while scanning the stream.
#[derive(Debug, Clone, Default)]
pub struct TraceFilter {
    /// Keep only events of this kind (`span`, `progress`, …).
    pub kind: Option<String>,
    /// Keep only events whose `name` field contains this substring.
    /// Events without a `name` field are dropped when set.
    pub name_substring: Option<String>,
}

impl TraceFilter {
    fn keeps(&self, kind: &str, name: Option<&str>) -> bool {
        if let Some(want) = &self.kind {
            if kind != want {
                return false;
            }
        }
        if let Some(substring) = &self.name_substring {
            match name {
                Some(name) => {
                    if !name.contains(substring.as_str()) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone)]
pub struct SpanStats {
    /// Full hierarchical path (`campaign/golden`).
    pub name: String,
    /// Completed span count.
    pub count: u64,
    /// Σ wall seconds across completions.
    pub total_seconds: f64,
    /// Total minus direct children's totals, clamped at zero.
    pub self_seconds: f64,
    /// Latency distribution across completions.
    pub histogram: Histogram,
}

/// The result of scanning one trace stream.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Lines scanned (excluding blank lines).
    pub lines_total: usize,
    /// Lines that were not parseable JSON objects with a `kind`.
    pub lines_skipped: usize,
    /// Events kept by the filter, per kind, sorted by kind.
    pub kind_counts: Vec<(String, u64)>,
    /// Span aggregates sorted by hierarchical path, parents first.
    pub spans: Vec<SpanStats>,
}

impl TraceReport {
    /// Scans a JSONL trace stream, keeping events the filter accepts.
    /// Unparseable lines are counted, not fatal: a live run's last line
    /// may be mid-write.
    pub fn scan(text: &str, filter: &TraceFilter) -> TraceReport {
        let mut lines_total = 0usize;
        let mut lines_skipped = 0usize;
        let mut kind_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut spans: BTreeMap<String, (u64, f64, Histogram)> = BTreeMap::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            lines_total += 1;
            let Ok(event) = Json::parse(line) else {
                lines_skipped += 1;
                continue;
            };
            let Some(kind) = event.get("kind").and_then(Json::as_str) else {
                lines_skipped += 1;
                continue;
            };
            let name = event.get("name").and_then(Json::as_str);
            if !filter.keeps(kind, name) {
                continue;
            }
            *kind_counts.entry(kind.to_string()).or_insert(0) += 1;
            if kind == "span" {
                if let (Some(name), Some(seconds)) =
                    (name, event.get("seconds").and_then(Json::as_f64))
                {
                    let entry = spans
                        .entry(name.to_string())
                        .or_insert_with(|| (0, 0.0, Histogram::new()));
                    entry.0 += 1;
                    entry.1 += seconds;
                    entry.2.observe(seconds);
                }
            }
        }

        // Self time: subtract direct children's totals from each parent.
        let mut child_totals: BTreeMap<&str, f64> = BTreeMap::new();
        for (name, (_, total, _)) in &spans {
            if let Some(slash) = name.rfind('/') {
                *child_totals.entry(&name[..slash]).or_insert(0.0) += total;
            }
        }
        let mut rows: Vec<SpanStats> = spans
            .iter()
            .map(|(name, (count, total, histogram))| SpanStats {
                name: name.clone(),
                count: *count,
                total_seconds: *total,
                self_seconds: (total - child_totals.get(name.as_str()).copied().unwrap_or(0.0))
                    .max(0.0),
                histogram: histogram.clone(),
            })
            .collect();
        // Segment-wise sort keeps children directly under their parent
        // even when a sibling name sorts between them bytewise
        // (`campaign-x` vs `campaign/golden`).
        rows.sort_by(|a, b| a.name.split('/').cmp(b.name.split('/')));

        TraceReport {
            lines_total,
            lines_skipped,
            kind_counts: kind_counts.into_iter().collect(),
            spans: rows,
        }
    }

    /// Renders the report: kind counts, then the span tree with
    /// self/total attribution and quantiles.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} event line(s), {} skipped",
            self.lines_total, self.lines_skipped
        );
        if !self.kind_counts.is_empty() {
            let _ = writeln!(out, "\nevents by kind");
            for (kind, count) in &self.kind_counts {
                let _ = writeln!(out, "  {kind:<12} {count}");
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "\nspan tree ({} path(s))                         count     total      self       p50       p90       p99       max",
                self.spans.len()
            );
            for span in &self.spans {
                let depth = span.name.matches('/').count();
                let leaf = span.name.rsplit('/').next().unwrap_or(&span.name);
                let label = format!("{}{}", "  ".repeat(depth), leaf);
                let _ = writeln!(
                    out,
                    "  {:<44} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                    label,
                    span.count,
                    format_quantity(span.total_seconds),
                    format_quantity(span.self_seconds),
                    format_quantity(span.histogram.quantile(0.5)),
                    format_quantity(span.histogram.quantile(0.9)),
                    format_quantity(span.histogram.quantile(0.99)),
                    format_quantity(span.histogram.max()),
                );
            }
        }
        out
    }

    /// Machine-readable report, schema `fusa-obs/trace/v1`.
    pub fn to_json(&self) -> Json {
        let kinds = self
            .kind_counts
            .iter()
            .map(|(kind, count)| {
                Json::Obj(vec![
                    ("kind".into(), Json::Str(kind.clone())),
                    ("count".into(), Json::Num(*count as f64)),
                ])
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|span| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(span.name.clone())),
                    ("count".into(), Json::Num(span.count as f64)),
                    ("total_seconds".into(), Json::Num(span.total_seconds)),
                    ("self_seconds".into(), Json::Num(span.self_seconds)),
                    ("p50".into(), Json::Num(span.histogram.quantile(0.5))),
                    ("p90".into(), Json::Num(span.histogram.quantile(0.9))),
                    ("p99".into(), Json::Num(span.histogram.quantile(0.99))),
                    ("max".into(), Json::Num(span.histogram.max())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("fusa-obs/trace/v1".into())),
            ("lines_total".into(), Json::Num(self.lines_total as f64)),
            ("lines_skipped".into(), Json::Num(self.lines_skipped as f64)),
            ("kinds".into(), Json::Arr(kinds)),
            ("spans".into(), Json::Arr(spans)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, seconds: f64) -> String {
        format!(
            r#"{{"ts":1.0,"kind":"span","thread":"ThreadId(1)","name":"{name}","seconds":{seconds}}}"#
        )
    }

    fn sample_trace() -> String {
        [
            span_line("campaign/golden", 1.0),
            span_line("campaign/units", 2.0),
            span_line("campaign/units", 4.0),
            span_line("campaign", 8.0),
            r#"{"ts":2.0,"kind":"progress","thread":"ThreadId(1)","name":"campaign","done":3,"total":8}"#.to_string(),
            r#"{"ts":3.0,"kind":"epoch","thread":"ThreadId(1)","epoch":1,"loss":0.5}"#.to_string(),
            "not json at all".to_string(),
        ]
        .join("\n")
    }

    #[test]
    fn scan_aggregates_spans_with_self_time() {
        let report = TraceReport::scan(&sample_trace(), &TraceFilter::default());
        assert_eq!(report.lines_total, 7);
        assert_eq!(report.lines_skipped, 1);
        assert_eq!(
            report.kind_counts,
            vec![
                ("epoch".to_string(), 1),
                ("progress".to_string(), 1),
                ("span".to_string(), 4),
            ]
        );
        assert_eq!(report.spans.len(), 3);
        let campaign = &report.spans[0];
        assert_eq!(campaign.name, "campaign");
        assert_eq!(campaign.count, 1);
        assert!((campaign.total_seconds - 8.0).abs() < 1e-12);
        // 8 total − (1 + 6) children = 1 self.
        assert!((campaign.self_seconds - 1.0).abs() < 1e-12);
        let units = report
            .spans
            .iter()
            .find(|s| s.name == "campaign/units")
            .unwrap();
        assert_eq!(units.count, 2);
        assert!((units.total_seconds - 6.0).abs() < 1e-12);
        assert!(
            (units.self_seconds - 6.0).abs() < 1e-12,
            "leaf self = total"
        );
        assert_eq!(units.histogram.count(), 2);
    }

    #[test]
    fn self_time_clamps_at_zero() {
        // Parallel children: 4 workers × 2 s under a 2 s parent.
        let text = [
            span_line("campaign", 2.0),
            span_line("campaign/unit", 2.0),
            span_line("campaign/unit", 2.0),
            span_line("campaign/unit", 2.0),
            span_line("campaign/unit", 2.0),
        ]
        .join("\n");
        let report = TraceReport::scan(&text, &TraceFilter::default());
        assert_eq!(report.spans[0].self_seconds, 0.0);
    }

    #[test]
    fn filters_by_kind_and_name() {
        let only_spans = TraceFilter {
            kind: Some("span".into()),
            ..TraceFilter::default()
        };
        let report = TraceReport::scan(&sample_trace(), &only_spans);
        assert_eq!(report.kind_counts, vec![("span".to_string(), 4)]);

        let only_units = TraceFilter {
            kind: Some("span".into()),
            name_substring: Some("units".into()),
        };
        let report = TraceReport::scan(&sample_trace(), &only_units);
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "campaign/units");
        // Unnamed events are dropped by a name filter.
        let named = TraceFilter {
            kind: None,
            name_substring: Some("campaign".into()),
        };
        let report = TraceReport::scan(&sample_trace(), &named);
        assert!(report.kind_counts.iter().all(|(k, _)| k != "epoch"));
    }

    #[test]
    fn renders_tree_and_json() {
        let report = TraceReport::scan(&sample_trace(), &TraceFilter::default());
        let text = report.render_text();
        assert!(text.contains("7 event line(s), 1 skipped"), "{text}");
        assert!(text.contains("progress"), "{text}");
        // Children indent under the parent.
        assert!(text.contains("\n  campaign "), "{text}");
        assert!(text.contains("    golden"), "{text}");
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("fusa-obs/trace/v1")
        );
        assert_eq!(json.get("spans").and_then(Json::as_arr).unwrap().len(), 3);
    }
}
