//! Fleet aggregation for `fusa top`: discovery of `status.json`
//! snapshots under one or more results roots, grouping of shard
//! families, and the refreshing dashboard / JSON views.
//!
//! A *fleet* is the set of runs an operator points `fusa top` at —
//! typically one results root holding several sharded campaign run
//! dirs, possibly mixed with finished training or lint runs. Shards of
//! the same campaign are grouped into a **family** by the
//! checkpoint-header identity key (everything but the shard spec, see
//! `CheckpointHeader::family_key` in `fusa-faultsim`); runs without a
//! checkpoint fall back to a `design:phase` family so campaigns never
//! mix with training runs on the same design.
//!
//! Health flags per row:
//! - **stalled**: a live run whose snapshot is older than
//!   [`FleetOptions::stale_seconds`] — the writer likely died without a
//!   final beat (OOM kill, power loss).
//! - **straggler**: a live run whose ETA exceeds 1.5× the median ETA of
//!   its family's live members (needs ≥ 2 live members) — the shard
//!   holding up the merge.
//! - **partial**: a finished run with `done < total` — interrupted, to
//!   be resumed via its checkpoint.
//! - **DEGRADED**: the run lost storage durability (a checkpoint or
//!   trace write outlived its retry budget) and is completing in memory
//!   only.
//!
//! Discovered `status.json` files that fail to read or parse are not
//! silently dropped: they surface as [`FleetDamage`] entries and render
//! as `DAMAGED` rows, so a corrupt snapshot is an operator signal
//! rather than a missing shard nobody notices.

use crate::json::Json;
use crate::render::{bar, format_quantity};
use crate::status::StatusSnapshot;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// How deep below a results root discovery looks for `status.json`
/// (root/status.json, root/<run>/status.json, root/<batch>/<run>/…).
const DISCOVER_DEPTH: usize = 3;

/// One discovered run: its directory and parsed status snapshot, plus
/// the shard-family identity key when the caller could derive one from
/// the run's checkpoint header.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Run directory (the parent of `status.json`).
    pub dir: PathBuf,
    /// Latest published snapshot.
    pub status: StatusSnapshot,
    /// Checkpoint-identity family key, if the run has a readable
    /// checkpoint. `None` falls back to grouping by design and phase.
    pub family: Option<String>,
}

/// A discovered `status.json` that could not be read or parsed. The
/// run exists on disk but its telemetry is unusable — shown as a
/// `DAMAGED` row instead of vanishing from the fleet aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDamage {
    /// The unreadable `status.json` path.
    pub path: PathBuf,
    /// The read/parse error, verbatim.
    pub error: String,
}

/// Aggregation knobs for [`FleetView::build`].
#[derive(Debug, Clone, Copy)]
pub struct FleetOptions {
    /// A live run whose snapshot is older than this is flagged stalled.
    pub stale_seconds: f64,
    /// "Now" for staleness judgement, seconds since the Unix epoch.
    /// Injected so views are deterministic in tests.
    pub now_unix: f64,
}

impl FleetOptions {
    /// Default staleness threshold: several missed 500 ms heartbeats
    /// plus generous scheduling slack.
    pub const DEFAULT_STALE_SECONDS: f64 = 30.0;
}

/// One dashboard row: a run annotated with health flags.
#[derive(Debug, Clone)]
pub struct FleetRow {
    pub run: FleetRun,
    /// Resolved family key the row was grouped under.
    pub family: String,
    /// Live run with a stale heartbeat (writer presumed dead).
    pub stalled: bool,
    /// Live run with ETA ≫ its family's median live ETA.
    pub straggler: bool,
    /// Finished run with `done < total` (interrupted / resumable).
    pub partial: bool,
}

impl FleetRow {
    /// Live = still being written: not finished and not stalled.
    pub fn live(&self) -> bool {
        !self.run.status.finished && !self.stalled
    }
}

/// An aggregated fleet: annotated rows plus fleet-wide totals.
#[derive(Debug, Clone)]
pub struct FleetView {
    /// Rows sorted by run id, stable across refreshes.
    pub rows: Vec<FleetRow>,
    /// Unreadable/corrupt `status.json` files, sorted by path.
    pub damaged: Vec<FleetDamage>,
    /// Distinct shard families represented.
    pub families: usize,
    /// Σ done over all rows.
    pub units_done: u64,
    /// Σ total over all rows.
    pub units_total: u64,
    /// Σ quarantined over all rows.
    pub quarantined: u64,
    /// Counts by health class.
    pub live: usize,
    pub finished: usize,
    pub stalled: usize,
    pub stragglers: usize,
    /// Aggregate throughput of live rows (sum of their rates).
    pub rate: f64,
    /// Fleet ETA: remaining units of live families over aggregate live
    /// unit throughput; 0 when nothing is live or rate is unknown.
    pub eta_seconds: f64,
}

/// Finds `status.json` files under each root: the root itself when it
/// is a run dir (or the file itself), otherwise a bounded-depth walk.
/// Results are sorted and deduplicated; unreadable directories are
/// skipped silently (runs may vanish mid-walk).
pub fn discover_status_files(roots: &[PathBuf]) -> Vec<PathBuf> {
    fn walk(dir: &Path, depth: usize, found: &mut Vec<PathBuf>) {
        let direct = dir.join("status.json");
        if direct.is_file() {
            found.push(direct);
        }
        if depth == 0 {
            return;
        }
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, depth - 1, found);
            }
        }
    }
    let mut found = Vec::new();
    for root in roots {
        if root.is_file() {
            found.push(root.clone());
        } else {
            walk(root, DISCOVER_DEPTH, &mut found);
        }
    }
    found.sort();
    found.dedup();
    found
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

impl FleetView {
    /// Aggregates discovered runs into an annotated fleet view.
    /// `damaged` carries the status files that failed to read or parse;
    /// they are kept out of the numeric aggregates but never hidden.
    pub fn build(
        runs: Vec<FleetRun>,
        mut damaged: Vec<FleetDamage>,
        options: FleetOptions,
    ) -> FleetView {
        damaged.sort_by(|a, b| a.path.cmp(&b.path));
        let mut rows: Vec<FleetRow> = runs
            .into_iter()
            .map(|run| {
                let family = run
                    .family
                    .clone()
                    .unwrap_or_else(|| format!("{}:{}", run.status.design, run.status.phase));
                let status = &run.status;
                let stalled = !status.finished
                    && status.age_seconds(options.now_unix) > options.stale_seconds;
                let partial = status.finished && status.done < status.total;
                FleetRow {
                    run,
                    family,
                    stalled,
                    straggler: false,
                    partial,
                }
            })
            .collect();
        rows.sort_by(|a, b| a.run.status.run_id.cmp(&b.run.status.run_id));

        // Straggler detection: within each family, compare live ETAs.
        let mut family_live_etas: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for row in &rows {
            if row.live() && row.run.status.eta_seconds > 0.0 {
                family_live_etas
                    .entry(row.family.as_str())
                    .or_default()
                    .push(row.run.status.eta_seconds);
            }
        }
        let mut family_median: BTreeMap<String, f64> = BTreeMap::new();
        for (family, mut etas) in family_live_etas {
            if etas.len() >= 2 {
                etas.sort_by(f64::total_cmp);
                family_median.insert(family.to_string(), median(&etas));
            }
        }
        for row in &mut rows {
            if let Some(&median_eta) = family_median.get(&row.family) {
                row.straggler =
                    row.live() && median_eta > 0.0 && row.run.status.eta_seconds > 1.5 * median_eta;
            }
        }

        let families = rows
            .iter()
            .map(|r| r.family.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let units_done = rows.iter().map(|r| r.run.status.done).sum();
        let units_total = rows.iter().map(|r| r.run.status.total).sum();
        let quarantined = rows.iter().map(|r| r.run.status.quarantined).sum();
        let live = rows.iter().filter(|r| r.live()).count();
        let finished = rows.iter().filter(|r| r.run.status.finished).count();
        let stalled = rows.iter().filter(|r| r.stalled).count();
        let stragglers = rows.iter().filter(|r| r.straggler).count();
        let rate: f64 = rows
            .iter()
            .filter(|r| r.live())
            .map(|r| r.run.status.rate)
            .sum();
        // ETA needs unit throughput; `rate` may be in work units
        // (fault-cycles/s), so derive done/s from each live row.
        let unit_rate: f64 = rows
            .iter()
            .filter(|r| r.live() && r.run.status.elapsed_seconds > 0.0)
            .map(|r| r.run.status.done as f64 / r.run.status.elapsed_seconds)
            .sum();
        let remaining: u64 = rows
            .iter()
            .filter(|r| !r.run.status.finished)
            .map(|r| r.run.status.total.saturating_sub(r.run.status.done))
            .sum();
        let eta_seconds = if unit_rate > 0.0 && remaining > 0 {
            remaining as f64 / unit_rate
        } else {
            0.0
        };

        FleetView {
            rows,
            damaged,
            families,
            units_done,
            units_total,
            quarantined,
            live,
            finished,
            stalled,
            stragglers,
            rate,
            eta_seconds,
        }
    }

    /// Renders the dashboard: a header with fleet-wide aggregates, then
    /// one fixed-width row per run.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let percent = if self.units_total > 0 {
            self.units_done as f64 * 100.0 / self.units_total as f64
        } else {
            0.0
        };
        let fraction = if self.units_total > 0 {
            self.units_done as f64 / self.units_total as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "fleet: {} run(s), {} famil{}, {} live, {} finished, {} stalled, {} straggler(s)\n",
            self.rows.len(),
            self.families,
            if self.families == 1 { "y" } else { "ies" },
            self.live,
            self.finished,
            self.stalled,
            self.stragglers,
        ));
        if !self.damaged.is_empty() {
            out.push_str(&format!("damaged: {} status file(s)\n", self.damaged.len()));
        }
        out.push_str(&format!(
            "units: {}/{} ({:.1}%) [{}]  quarantined {}",
            self.units_done,
            self.units_total,
            percent,
            bar(fraction, 24),
            self.quarantined,
        ));
        if self.live > 0 {
            out.push_str(&format!(
                "  rate {}/s  ETA {:.0}s",
                format_quantity(self.rate),
                self.eta_seconds
            ));
        }
        out.push('\n');
        out.push('\n');

        let id_width = self
            .rows
            .iter()
            .map(|r| r.run.status.run_id.len())
            .max()
            .unwrap_or(6)
            .max(6);
        out.push_str(&format!(
            "{:<id_width$}  {:<8}  {:>13}  {:>6}  {:>11}  {:>8}  flags\n",
            "run", "phase", "done/total", "%", "rate", "eta",
        ));
        for row in &self.rows {
            let s = &row.run.status;
            let percent = if s.total > 0 {
                s.done as f64 * 100.0 / s.total as f64
            } else {
                0.0
            };
            let mut flags = Vec::new();
            if row.stalled {
                flags.push("STALLED");
            }
            if row.straggler {
                flags.push("straggler");
            }
            if row.partial {
                flags.push("partial");
            } else if s.finished {
                flags.push("done");
            }
            if s.quarantined > 0 {
                flags.push("quarantine");
            }
            if s.degraded {
                flags.push("DEGRADED");
            }
            let eta = if s.finished || s.eta_seconds <= 0.0 {
                "-".to_string()
            } else {
                format!("{:.0}s", s.eta_seconds)
            };
            out.push_str(&format!(
                "{:<id_width$}  {:<8}  {:>13}  {:>5.1}%  {:>9}/s  {:>8}  {}\n",
                s.run_id,
                s.phase,
                format!("{}/{}", s.done, s.total),
                percent,
                format_quantity(s.rate),
                eta,
                flags.join(","),
            ));
        }
        for damage in &self.damaged {
            out.push_str(&format!(
                "{}  DAMAGED  {}\n",
                damage.path.display(),
                damage.error,
            ));
        }
        out
    }

    /// Machine-readable view, schema `fusa-obs/top/v1`. Fleet-wide
    /// aggregates come before the per-run array so stream consumers
    /// (and the CI grep) hit them first.
    pub fn to_json(&self) -> Json {
        let runs = self
            .rows
            .iter()
            .map(|row| {
                let mut obj = match row.run.status.to_json() {
                    Json::Obj(members) => members,
                    _ => unreachable!("snapshot renders as an object"),
                };
                obj.push(("dir".into(), Json::Str(row.run.dir.display().to_string())));
                obj.push(("family".into(), Json::Str(row.family.clone())));
                obj.push(("stalled".into(), Json::Bool(row.stalled)));
                obj.push(("straggler".into(), Json::Bool(row.straggler)));
                obj.push(("partial".into(), Json::Bool(row.partial)));
                Json::Obj(obj)
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("fusa-obs/top/v1".into())),
            ("runs_total".into(), Json::Num(self.rows.len() as f64)),
            ("families".into(), Json::Num(self.families as f64)),
            ("units_done".into(), Json::Num(self.units_done as f64)),
            ("units_total".into(), Json::Num(self.units_total as f64)),
            ("quarantined".into(), Json::Num(self.quarantined as f64)),
            ("live".into(), Json::Num(self.live as f64)),
            ("finished".into(), Json::Num(self.finished as f64)),
            ("stalled".into(), Json::Num(self.stalled as f64)),
            ("stragglers".into(), Json::Num(self.stragglers as f64)),
            ("rate".into(), Json::Num(self.rate)),
            ("eta_seconds".into(), Json::Num(self.eta_seconds)),
            ("runs".into(), Json::Arr(runs)),
            (
                "damaged".into(),
                Json::Arr(
                    self.damaged
                        .iter()
                        .map(|damage| {
                            Json::Obj(vec![
                                ("path".into(), Json::Str(damage.path.display().to_string())),
                                ("error".into(), Json::Str(damage.error.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(run_id: &str, done: u64, total: u64) -> StatusSnapshot {
        StatusSnapshot {
            run_id: run_id.into(),
            design: "demo".into(),
            shard: None,
            pid: 1,
            phase: "campaign".into(),
            unit: "units".into(),
            done,
            total,
            work: done * 1000,
            rate: 100.0,
            eta_seconds: 10.0,
            elapsed_seconds: 5.0,
            quarantined: 0,
            workers: 2,
            busy_fraction: 0.9,
            peak_rss_bytes: None,
            updated_unix: 1_000.0,
            finished: false,
            degraded: false,
        }
    }

    fn run(id: &str, status: StatusSnapshot, family: Option<&str>) -> FleetRun {
        FleetRun {
            dir: PathBuf::from(format!("/tmp/{id}")),
            status,
            family: family.map(str::to_string),
        }
    }

    fn options() -> FleetOptions {
        FleetOptions {
            stale_seconds: 30.0,
            now_unix: 1_005.0,
        }
    }

    #[test]
    fn aggregates_and_sorts_rows() {
        let view = FleetView::build(
            vec![
                run("b-shard1of2", snapshot("b-shard1of2", 10, 48), Some("fam")),
                run("a-shard0of2", snapshot("a-shard0of2", 20, 48), Some("fam")),
            ],
            Vec::new(),
            options(),
        );
        assert_eq!(view.rows.len(), 2);
        assert_eq!(view.rows[0].run.status.run_id, "a-shard0of2");
        assert_eq!(view.families, 1);
        assert_eq!((view.units_done, view.units_total), (30, 96));
        assert_eq!(view.live, 2);
        assert_eq!(view.finished, 0);
        assert!((view.rate - 200.0).abs() < 1e-9);
        // 66 remaining over (10+20)/5 units/s = 11 s.
        assert!((view.eta_seconds - 11.0).abs() < 1e-9);
    }

    #[test]
    fn flags_stalled_straggler_and_partial() {
        let mut stale = snapshot("fam-shard0of3", 5, 32);
        stale.updated_unix = 900.0; // 105 s old
        let quick = snapshot("fam-shard1of3", 20, 32);
        let mut slow = snapshot("fam-shard2of3", 2, 32);
        slow.eta_seconds = 100.0;
        let mut interrupted = StatusSnapshot {
            finished: true,
            ..snapshot("other", 10, 32)
        };
        interrupted.updated_unix = 500.0; // finished runs never stall
        let view = FleetView::build(
            vec![
                run("s0", stale, Some("fam")),
                run("s1", quick, Some("fam")),
                run("s2", slow, Some("fam")),
                run("x", interrupted, None),
            ],
            Vec::new(),
            options(),
        );
        let by_id = |id: &str| {
            view.rows
                .iter()
                .find(|r| r.run.status.run_id == id)
                .unwrap()
        };
        assert!(by_id("fam-shard0of3").stalled);
        assert!(!by_id("fam-shard0of3").straggler, "stalled is not live");
        assert!(by_id("fam-shard2of3").straggler);
        assert!(!by_id("fam-shard1of3").straggler);
        assert!(by_id("other").partial);
        assert!(!by_id("other").stalled);
        assert_eq!(view.stalled, 1);
        assert_eq!(view.stragglers, 1);
        assert_eq!(view.finished, 1);
        // Fallback family for the checkpoint-less run.
        assert_eq!(by_id("other").family, "demo:campaign");
        assert_eq!(view.families, 2);
    }

    #[test]
    fn json_view_leads_with_aggregates() {
        let view = FleetView::build(
            vec![run("a", snapshot("a", 3, 4), None)],
            Vec::new(),
            options(),
        );
        let json = view.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("fusa-obs/top/v1")
        );
        assert_eq!(json.get("units_done").and_then(Json::as_u64), Some(3));
        let text = json.render_pretty();
        let aggregate_pos = text.find("\"units_done\"").unwrap();
        let runs_pos = text.find("\"runs\"").unwrap();
        assert!(aggregate_pos < runs_pos, "aggregates precede runs");
        let runs = json.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(
            runs[0].get("family").and_then(Json::as_str),
            Some("demo:campaign")
        );
    }

    #[test]
    fn discovery_walks_roots_and_dedups() {
        let base = std::env::temp_dir().join(format!("fusa_fleet_disc_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let run_a = base.join("results/run-a");
        let run_b = base.join("results/batch/run-b");
        std::fs::create_dir_all(&run_a).unwrap();
        std::fs::create_dir_all(&run_b).unwrap();
        std::fs::write(run_a.join("status.json"), "{}").unwrap();
        std::fs::write(run_b.join("status.json"), "{}").unwrap();
        std::fs::write(base.join("results/manifest.json"), "{}").unwrap();
        let found = discover_status_files(&[
            base.join("results"),
            run_a.clone(),             // run dir directly
            run_a.join("status.json"), // file directly
        ]);
        assert_eq!(
            found,
            vec![run_b.join("status.json"), run_a.join("status.json")]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn text_dashboard_renders_rows_and_flags() {
        let mut slow = snapshot("fam-shard1of2", 2, 32);
        slow.eta_seconds = 100.0;
        slow.quarantined = 3;
        let view = FleetView::build(
            vec![
                run("s0", snapshot("fam-shard0of2", 20, 32), Some("fam")),
                run("s1", slow, Some("fam")),
            ],
            Vec::new(),
            options(),
        );
        let text = view.render_text();
        assert!(text.contains("fleet: 2 run(s), 1 family"), "{text}");
        assert!(text.contains("units: 22/64"), "{text}");
        assert!(text.contains("straggler"), "{text}");
        assert!(text.contains("quarantine"), "{text}");
        assert!(text.contains("fam-shard0of2"), "{text}");
    }

    #[test]
    fn damaged_status_files_surface_instead_of_vanishing() {
        let mut degraded = snapshot("deg", 5, 32);
        degraded.degraded = true;
        let view = FleetView::build(
            vec![run("deg", degraded, None)],
            vec![
                FleetDamage {
                    path: PathBuf::from("/tmp/z/status.json"),
                    error: "not JSON: unexpected end of input".into(),
                },
                FleetDamage {
                    path: PathBuf::from("/tmp/a/status.json"),
                    error: "cannot read `/tmp/a/status.json`: Permission denied".into(),
                },
            ],
            options(),
        );
        assert_eq!(view.damaged.len(), 2);
        assert_eq!(view.damaged[0].path, PathBuf::from("/tmp/a/status.json"));
        let text = view.render_text();
        assert!(text.contains("damaged: 2 status file(s)"), "{text}");
        assert!(
            text.contains("/tmp/z/status.json  DAMAGED  not JSON: unexpected end of input"),
            "{text}"
        );
        assert!(text.contains("DEGRADED"), "{text}");
        // Aggregates exclude damaged entries but count the healthy run.
        assert_eq!(view.rows.len(), 1);
        assert_eq!(view.units_total, 32);
        let json = view.to_json();
        let damaged = json.get("damaged").and_then(Json::as_arr).unwrap();
        assert_eq!(damaged.len(), 2);
        assert_eq!(
            damaged[0].get("path").and_then(Json::as_str),
            Some("/tmp/a/status.json")
        );
        assert!(damaged[1]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("not JSON"));
    }
}
