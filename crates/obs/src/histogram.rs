//! Log-bucketed latency/size histograms.
//!
//! A [`Histogram`] trades exactness for O(1) recording and a fixed
//! memory footprint: observations land in logarithmically spaced
//! buckets ([`SUB_BUCKETS`] per power of two, ≈ 9% relative width), so
//! any quantile estimate is an upper bound within one bucket of the
//! true value. Histograms merge associatively, which lets worker
//! threads aggregate privately and fold into the shared recorder, and
//! the exact `min`/`max`/`sum` are tracked alongside the buckets.

use std::fmt;

/// Buckets per power of two. 8 sub-buckets bound the relative error of
/// a quantile estimate by `2^(1/8) - 1 ≈ 9.05%`.
pub const SUB_BUCKETS: usize = 8;

/// Smallest resolvable exponent: values `≤ 2^MIN_EXP` (≈ 9.3e-10) share
/// the first bucket. Covers sub-nanosecond span times.
const MIN_EXP: i32 = -30;

/// Largest resolvable exponent: values `≥ 2^MAX_EXP` (≈ 1.7e10) share
/// the last bucket. Covers gate-evaluation counts of any real campaign.
const MAX_EXP: i32 = 34;

/// Total bucket count.
const BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUB_BUCKETS;

/// A mergeable log-bucketed histogram of non-negative observations.
///
/// Values outside `(2^-30, 2^34)` are clamped into the edge buckets;
/// the exact `min` and `max` are still tracked, so `quantile` never
/// reports a value outside the observed range.
#[derive(Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

/// Bucket index of `value`; monotonic in `value`.
fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        return 0;
    }
    let position = (value.log2() - MIN_EXP as f64) * SUB_BUCKETS as f64;
    if position < 0.0 {
        0
    } else {
        (position.floor() as usize).min(BUCKETS - 1)
    }
}

/// Upper bound of bucket `index` (the largest value it can hold, up to
/// the clamped range).
fn bucket_upper_bound(index: usize) -> f64 {
    ((MIN_EXP as f64) + (index as f64 + 1.0) / SUB_BUCKETS as f64).exp2()
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Merging is associative and
    /// commutative: any merge order over a set of thread-local
    /// histograms yields the same aggregate.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`q` clamped to
    /// `[0, 1]`), within one bucket (≈ 9%) of the exact order statistic
    /// and clamped to the observed `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &bucket_count) in self.counts.iter().enumerate() {
            cumulative += bucket_count;
            if cumulative >= target {
                return bucket_upper_bound(index).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Condenses the histogram into the summary recorded in manifests.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// The fixed quantile digest of one histogram, as serialized into the
/// `histograms` section of a run manifest.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Exact smallest observation.
    pub min: f64,
    /// Exact largest observation.
    pub max: f64,
    /// Median estimate (upper bound within one bucket).
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl HistogramSummary {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relative slack of one bucket: `2^(1/SUB_BUCKETS)`, plus floating
    /// point headroom.
    const BUCKET_FACTOR: f64 = 1.0906;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn tracks_exact_count_sum_min_max() {
        let mut h = Histogram::new();
        for v in [0.5, 2.0, 8.0, 1.5] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 12.0).abs() < 1e-12);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 8.0);
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(1.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn zero_and_negative_land_in_first_bucket() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), -3.0);
        // The quantile is clamped to the observed range, never the
        // bucket bound.
        assert!(h.quantile(1.0) <= 0.0);
    }

    #[test]
    fn bucket_index_is_monotone_in_value() {
        // Bucket monotonicity: sorting by value must sort by bucket.
        let mut previous = 0usize;
        let mut v = 1e-12;
        while v < 1e12 {
            let index = bucket_index(v);
            assert!(
                index >= previous,
                "bucket index decreased at value {v}: {index} < {previous}"
            );
            previous = index;
            v *= 1.0345;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_are_increasing_and_contain_their_values() {
        for index in 0..BUCKETS - 1 {
            assert!(bucket_upper_bound(index) < bucket_upper_bound(index + 1));
        }
        // A value maps to a bucket whose upper bound is ≥ the value and
        // within one bucket factor above it (in the resolvable range).
        let mut v = 2e-9;
        while v < 1e10 {
            let upper = bucket_upper_bound(bucket_index(v));
            assert!(upper >= v * (1.0 - 1e-12), "value {v}, upper {upper}");
            assert!(upper <= v * BUCKET_FACTOR, "value {v}, upper {upper}");
            v *= 1.618;
        }
    }

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn quantiles_bound_exact_reference_on_random_streams() {
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut h = Histogram::new();
            let mut values: Vec<f64> = Vec::new();
            for _ in 0..500 {
                // Log-uniform over ~9 decades, the resolvable range.
                let v = 10f64.powf(rng.gen_range(-6.0..3.0));
                values.push(v);
                h.observe(v);
            }
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let exact = exact_quantile(&values, q);
                let estimate = h.quantile(q);
                assert!(
                    estimate >= exact * (1.0 - 1e-12),
                    "seed {seed} q {q}: estimate {estimate} below exact {exact}"
                );
                assert!(
                    estimate <= exact * BUCKET_FACTOR,
                    "seed {seed} q {q}: estimate {estimate} above bound for exact {exact}"
                );
            }
        }
    }

    #[test]
    fn merge_matches_single_histogram_and_is_associative() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let values: Vec<f64> = (0..300)
            .map(|_| 10f64.powf(rng.gen_range(-4.0..2.0)))
            .collect();

        let mut whole = Histogram::new();
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &v) in values.iter().enumerate() {
            whole.observe(v);
            parts[i % 3].observe(v);
        }

        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c) == whole.
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut tail = parts[1].clone();
        tail.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&tail);

        // Merge order over the same parts is bit-identical.
        assert_eq!(left, right);
        // Against the single whole histogram, the float `sum` may differ
        // in addition order; everything else must match exactly.
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        assert!((left.sum() - whole.sum()).abs() <= whole.sum().abs() * 1e-12);
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(left.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn summary_reports_ordered_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 / 1000.0);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert!((s.mean() - 0.5005).abs() < 1e-9);
        // p50 within a bucket of 0.5.
        assert!(s.p50 >= 0.5 && s.p50 <= 0.5 * BUCKET_FACTOR);
    }
}
