//! Human-readable rendering of a [`RunManifest`] (`fusa report`), plus
//! the machine-readable `fusa report --json` view.

use crate::json::Json;
use crate::manifest::RunManifest;
use std::fmt::Write as _;

/// Renders a timing/metrics breakdown of one run manifest.
///
/// The output is deterministic for a given manifest (section order is
/// fixed and maps keep their serialized order), which lets golden-file
/// tests pin it down exactly.
pub fn render_manifest_report(manifest: &RunManifest) -> String {
    let mut out = String::with_capacity(2048);
    let _ = writeln!(out, "=== fusa run manifest: {} ===", manifest.run_id);
    let _ = writeln!(out, "design  {}", manifest.design);
    let _ = writeln!(out, "command {}", manifest.command);
    let rss = manifest
        .peak_rss_bytes
        .map_or_else(|| "n/a".to_string(), format_bytes);
    let _ = writeln!(
        out,
        "wall {:.3}s | threads {} | peak RSS {} | created @{}",
        manifest.wall_seconds, manifest.threads, rss, manifest.created_unix,
    );
    if !manifest.build.is_empty() {
        let parts: Vec<String> = manifest
            .build
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect();
        let _ = writeln!(out, "build   {}", parts.join(" | "));
    }
    if manifest.interrupted {
        let _ = writeln!(
            out,
            "status  INTERRUPTED — partial run; resume the command with --resume"
        );
    }
    if manifest.degraded {
        let _ = writeln!(
            out,
            "durability  DEGRADED — a storage write outlived its retry budget; \
             results completed in memory but the checkpoint is untrustworthy. \
             Run `fusa fsck <run-dir> --repair` before resuming or merging."
        );
    }
    if let Some(shard) = manifest.shard {
        let _ = writeln!(
            out,
            "shard   {}/{} — partial ground truth; union shards with `fusa merge`",
            shard.index, shard.total,
        );
    }

    if !manifest.stages.is_empty() {
        let _ = writeln!(
            out,
            "\nstages (top-level {:.3}s, {:.1}% of wall):",
            manifest.top_level_stage_seconds(),
            manifest.stage_coverage() * 100.0,
        );
        let name_width = manifest
            .stages
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(0)
            .max(8);
        for stage in &manifest.stages {
            let fraction = if manifest.wall_seconds > 0.0 {
                (stage.seconds / manifest.wall_seconds).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<name_width$} {:>10.3}s {:>6.1}%  x{:<5} {}",
                stage.name,
                stage.seconds,
                fraction * 100.0,
                stage.count,
                bar(fraction, 24),
            );
        }
    }

    if !manifest.counters.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        let width = key_width(manifest.counters.iter().map(|(k, _)| k.len()));
        for (name, value) in &manifest.counters {
            let _ = writeln!(out, "  {name:<width$} {value}");
        }
    }
    if !manifest.gauges.is_empty() {
        let _ = writeln!(out, "\ngauges:");
        let width = key_width(manifest.gauges.iter().map(|(k, _)| k.len()));
        for (name, value) in &manifest.gauges {
            let _ = writeln!(out, "  {name:<width$} {value:.4}");
        }
    }
    if !manifest.histograms.is_empty() {
        let _ = writeln!(out, "\nhistograms:");
        let width = key_width(manifest.histograms.iter().map(|(k, _)| k.len()));
        let _ = writeln!(
            out,
            "  {:<width$} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "name", "count", "mean", "p50", "p90", "p99", "max"
        );
        for (name, h) in &manifest.histograms {
            let _ = writeln!(
                out,
                "  {:<width$} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
                name,
                h.count,
                format_quantity(h.mean()),
                format_quantity(h.p50),
                format_quantity(h.p90),
                format_quantity(h.p99),
                format_quantity(h.max),
            );
        }
    }
    if !manifest.seeds.is_empty() {
        let _ = writeln!(out, "\nseeds:");
        let width = key_width(manifest.seeds.iter().map(|(k, _)| k.len()));
        for (name, value) in &manifest.seeds {
            let _ = writeln!(out, "  {name:<width$} {value:#x}");
        }
    }
    if !manifest.config.is_empty() {
        let _ = writeln!(out, "\nconfig:");
        let width = key_width(manifest.config.iter().map(|(k, _)| k.len()));
        for (name, value) in &manifest.config {
            let _ = writeln!(out, "  {name:<width$} {value}");
        }
    }
    if !manifest.digests.is_empty() {
        let _ = writeln!(out, "\noutput digests:");
        let width = key_width(manifest.digests.iter().map(|(k, _)| k.len()));
        for (name, value) in &manifest.digests {
            let _ = writeln!(out, "  {name:<width$} {value}");
        }
    }
    if !manifest.quarantined.is_empty() {
        let _ = writeln!(
            out,
            "\nquarantined campaign units ({} excluded after retries):",
            manifest.quarantined.len()
        );
        for q in &manifest.quarantined {
            let _ = writeln!(
                out,
                "  unit {} (workload {}, chunk {}, {} attempts): {}",
                q.unit,
                q.workload,
                q.chunk,
                q.attempts,
                q.panic.lines().next().unwrap_or(""),
            );
        }
    }
    if !manifest.merged_from.is_empty() {
        let _ = writeln!(
            out,
            "\nmerged from {} shard checkpoint(s):",
            manifest.merged_from.len()
        );
        for source in &manifest.merged_from {
            let shard = match (source.shard_index, source.shard_total) {
                (Some(i), Some(n)) => format!("shard {i}/{n}"),
                _ => "unsharded".to_string(),
            };
            let _ = writeln!(out, "  {} ({shard}, {} units)", source.path, source.units,);
        }
    }
    out
}

/// Machine-readable counterpart of [`render_manifest_report`]
/// (`fusa report --json`): the same sections in the same order, with
/// the derived quantities the text view computes (stage wall fractions,
/// coverage, histogram means) materialised as fields. Schema
/// `fusa-obs/report/v1`.
pub fn render_manifest_report_json(manifest: &RunManifest) -> Json {
    let stages = manifest
        .stages
        .iter()
        .map(|stage| {
            let fraction = if manifest.wall_seconds > 0.0 {
                (stage.seconds / manifest.wall_seconds).clamp(0.0, 1.0)
            } else {
                0.0
            };
            Json::Obj(vec![
                ("name".into(), Json::Str(stage.name.clone())),
                ("seconds".into(), Json::Num(stage.seconds)),
                ("count".into(), Json::Num(stage.count as f64)),
                ("wall_fraction".into(), Json::Num(fraction)),
            ])
        })
        .collect();
    let str_map = |pairs: &[(String, String)]| {
        Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        )
    };
    let counters = Json::Obj(
        manifest
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
            .collect(),
    );
    let gauges = Json::Obj(
        manifest
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v)))
            .collect(),
    );
    let seeds = Json::Obj(
        manifest
            .seeds
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
            .collect(),
    );
    let histograms = manifest
        .histograms
        .iter()
        .map(|(name, h)| {
            Json::Obj(vec![
                ("name".into(), Json::Str(name.clone())),
                ("count".into(), Json::Num(h.count as f64)),
                ("mean".into(), Json::Num(h.mean())),
                ("min".into(), Json::Num(h.min)),
                ("max".into(), Json::Num(h.max)),
                ("p50".into(), Json::Num(h.p50)),
                ("p90".into(), Json::Num(h.p90)),
                ("p99".into(), Json::Num(h.p99)),
            ])
        })
        .collect();
    let quarantined = manifest
        .quarantined
        .iter()
        .map(|q| {
            Json::Obj(vec![
                ("unit".into(), Json::Num(q.unit as f64)),
                ("workload".into(), Json::Str(q.workload.clone())),
                ("chunk".into(), Json::Num(q.chunk as f64)),
                ("attempts".into(), Json::Num(q.attempts as f64)),
                (
                    "panic".into(),
                    Json::Str(q.panic.lines().next().unwrap_or("").to_string()),
                ),
            ])
        })
        .collect();
    let merged_from = manifest
        .merged_from
        .iter()
        .map(|source| {
            let shard = match (source.shard_index, source.shard_total) {
                (Some(i), Some(n)) => Json::Obj(vec![
                    ("index".into(), Json::Num(i as f64)),
                    ("total".into(), Json::Num(n as f64)),
                ]),
                _ => Json::Null,
            };
            Json::Obj(vec![
                ("path".into(), Json::Str(source.path.clone())),
                ("shard".into(), shard),
                ("units".into(), Json::Num(source.units as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str("fusa-obs/report/v1".into())),
        ("run_id".into(), Json::Str(manifest.run_id.clone())),
        ("design".into(), Json::Str(manifest.design.clone())),
        ("command".into(), Json::Str(manifest.command.clone())),
        (
            "created_unix".into(),
            Json::Num(manifest.created_unix as f64),
        ),
        ("wall_seconds".into(), Json::Num(manifest.wall_seconds)),
        ("threads".into(), Json::Num(manifest.threads as f64)),
        ("interrupted".into(), Json::Bool(manifest.interrupted)),
        ("degraded".into(), Json::Bool(manifest.degraded)),
        (
            "shard".into(),
            match manifest.shard {
                Some(shard) => Json::Obj(vec![
                    ("index".into(), Json::Num(shard.index as f64)),
                    ("total".into(), Json::Num(shard.total as f64)),
                ]),
                None => Json::Null,
            },
        ),
        (
            "peak_rss_bytes".into(),
            match manifest.peak_rss_bytes {
                Some(bytes) => Json::Num(bytes as f64),
                None => Json::Null,
            },
        ),
        (
            "top_level_stage_seconds".into(),
            Json::Num(manifest.top_level_stage_seconds()),
        ),
        (
            "stage_coverage".into(),
            Json::Num(manifest.stage_coverage()),
        ),
        ("build".into(), str_map(&manifest.build)),
        ("stages".into(), Json::Arr(stages)),
        ("counters".into(), counters),
        ("gauges".into(), gauges),
        ("histograms".into(), Json::Arr(histograms)),
        ("seeds".into(), seeds),
        ("config".into(), str_map(&manifest.config)),
        ("digests".into(), str_map(&manifest.digests)),
        ("quarantined".into(), Json::Arr(quarantined)),
        ("merged_from".into(), Json::Arr(merged_from)),
    ])
}

fn key_width(lengths: impl Iterator<Item = usize>) -> usize {
    lengths.max().unwrap_or(0).max(4)
}

/// Deterministic fixed-width-friendly number rendering for histogram
/// statistics: sub-milli values in scientific notation, everything else
/// with 4 significant-ish decimals.
pub(crate) fn format_quantity(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() < 1e-3 || value.abs() >= 1e9 {
        format!("{value:.3e}")
    } else if value.abs() >= 1000.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.4}")
    }
}

pub(crate) fn format_bytes(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2} GiB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1u64 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / (1u64 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

pub(crate) fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut out = String::with_capacity(width);
    for i in 0..width {
        out.push(if i < filled { '#' } else { '.' });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::StageTime;

    #[test]
    fn report_contains_all_sections() {
        let manifest = RunManifest {
            run_id: "analyze-x".into(),
            command: "fusa analyze x".into(),
            design: "x".into(),
            created_unix: 1,
            wall_seconds: 2.0,
            threads: 4,
            interrupted: false,
            degraded: false,
            quarantined: vec![],
            peak_rss_bytes: Some(3 << 20),
            build: vec![("rustc".into(), "rustc 1.95.0".into())],
            config: vec![("k".into(), "v".into())],
            seeds: vec![("split".into(), 0x5117)],
            stages: vec![StageTime {
                name: "campaign".into(),
                seconds: 1.0,
                count: 1,
            }],
            counters: vec![("c".into(), 9)],
            gauges: vec![("g".into(), 0.5)],
            histograms: vec![(
                "campaign.unit_seconds".into(),
                crate::HistogramSummary {
                    count: 10,
                    sum: 0.2,
                    min: 0.01,
                    max: 0.05,
                    p50: 0.02,
                    p90: 0.04,
                    p99: 0.05,
                },
            )],
            digests: vec![("csv".into(), "fnv1a64:0123456789abcdef".into())],
            shard: None,
            merged_from: vec![],
        };
        let text = render_manifest_report(&manifest);
        assert!(text.contains("=== fusa run manifest: analyze-x ==="));
        assert!(text.contains("wall 2.000s | threads 4 | peak RSS 3.0 MiB"));
        assert!(text.contains("build   rustc rustc 1.95.0"));
        assert!(text.contains("stages (top-level 1.000s, 50.0% of wall):"));
        assert!(text.contains("campaign"));
        assert!(text.contains("counters:"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("campaign.unit_seconds"));
        assert!(text.contains("seeds:"));
        assert!(text.contains("0x5117"));
        assert!(text.contains("output digests:"));
        assert!(text.contains("fnv1a64:0123456789abcdef"));
    }

    #[test]
    fn interrupted_and_quarantined_runs_are_flagged() {
        let manifest = RunManifest {
            run_id: "r".into(),
            command: "fusa faults x".into(),
            design: "d".into(),
            interrupted: true,
            quarantined: vec![crate::manifest::QuarantinedUnitRecord {
                unit: 7,
                workload: "w3".into(),
                chunk: 1,
                attempts: 3,
                panic: "injected unit fault\nsecond line".into(),
            }],
            ..RunManifest::default()
        };
        let text = render_manifest_report(&manifest);
        assert!(text.contains("status  INTERRUPTED"));
        assert!(text.contains("resume the command with --resume"));
        assert!(text.contains("quarantined campaign units (1 excluded after retries):"));
        assert!(text.contains("unit 7 (workload w3, chunk 1, 3 attempts): injected unit fault"));
        assert!(!text.contains("second line"), "only the first panic line");
        assert!(!text.contains("DEGRADED"), "durable runs carry no flag");
        let degraded = RunManifest {
            degraded: true,
            ..RunManifest::default()
        };
        let text = render_manifest_report(&degraded);
        assert!(text.contains("durability  DEGRADED"));
        assert!(text.contains("fusa fsck"));
    }

    #[test]
    fn sharded_and_merged_runs_are_flagged() {
        let manifest = RunManifest {
            run_id: "faults-d-shard2of3".into(),
            command: "fusa faults d --shard 2/3".into(),
            design: "d".into(),
            shard: Some(crate::manifest::ShardRecord { index: 2, total: 3 }),
            ..RunManifest::default()
        };
        let text = render_manifest_report(&manifest);
        assert!(text.contains("shard   2/3 — partial ground truth"));
        assert!(text.contains("`fusa merge`"));

        let merged = RunManifest {
            run_id: "merge-d".into(),
            command: "fusa merge a.jsonl b.jsonl".into(),
            design: "d".into(),
            merged_from: vec![
                crate::manifest::MergeSourceRecord {
                    path: "a.jsonl".into(),
                    shard_index: Some(1),
                    shard_total: Some(2),
                    units: 8,
                },
                crate::manifest::MergeSourceRecord {
                    path: "b.jsonl".into(),
                    shard_index: None,
                    shard_total: None,
                    units: 8,
                },
            ],
            ..RunManifest::default()
        };
        let text = render_manifest_report(&merged);
        assert!(text.contains("merged from 2 shard checkpoint(s):"));
        assert!(text.contains("  a.jsonl (shard 1/2, 8 units)"));
        assert!(text.contains("  b.jsonl (unsharded, 8 units)"));
    }

    #[test]
    fn clean_runs_do_not_mention_durability() {
        let manifest = RunManifest {
            run_id: "r".into(),
            command: "c".into(),
            design: "d".into(),
            ..RunManifest::default()
        };
        let text = render_manifest_report(&manifest);
        assert!(!text.contains("INTERRUPTED"));
        assert!(!text.contains("quarantined"));
    }

    #[test]
    fn absent_rss_renders_as_na() {
        let manifest = RunManifest {
            run_id: "r".into(),
            command: "c".into(),
            design: "d".into(),
            peak_rss_bytes: None,
            ..RunManifest::default()
        };
        let text = render_manifest_report(&manifest);
        assert!(text.contains("peak RSS n/a"));
    }

    #[test]
    fn quantities_render_deterministically() {
        assert_eq!(format_quantity(0.0), "0");
        assert_eq!(format_quantity(0.000012), "1.200e-5");
        assert_eq!(format_quantity(0.0153), "0.0153");
        assert_eq!(format_quantity(12.5), "12.5000");
        assert_eq!(format_quantity(98_304.0), "98304.0");
        assert_eq!(format_quantity(2.5e12), "2.500e12");
    }

    #[test]
    fn empty_sections_are_omitted() {
        let manifest = RunManifest {
            run_id: "r".into(),
            command: "c".into(),
            design: "d".into(),
            ..RunManifest::default()
        };
        let text = render_manifest_report(&manifest);
        assert!(!text.contains("counters:"));
        assert!(!text.contains("stages"));
        assert!(!text.contains("digests"));
    }

    #[test]
    fn byte_units_scale() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(3 << 20), "3.0 MiB");
        assert_eq!(format_bytes(5 << 30), "5.00 GiB");
    }

    #[test]
    fn bars_are_fixed_width() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(2.0, 10), "##########");
    }

    #[test]
    fn json_report_mirrors_text_sections() {
        let manifest = RunManifest {
            run_id: "faults-x".into(),
            design: "x".into(),
            command: "fusa faults x".into(),
            wall_seconds: 2.0,
            threads: 4,
            stages: vec![StageTime {
                name: "campaign".into(),
                seconds: 1.0,
                count: 1,
            }],
            counters: vec![("gate_evals".into(), 7)],
            gauges: vec![("campaign.final_rate".into(), 42.5)],
            seeds: vec![("workloads".into(), 0xdead)],
            digests: vec![("summary".into(), "fnv1a64:abc".into())],
            ..RunManifest::default()
        };
        let json = render_manifest_report_json(&manifest);
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("fusa-obs/report/v1")
        );
        assert_eq!(json.get("run_id").and_then(Json::as_str), Some("faults-x"));
        let stages = json.get("stages").and_then(Json::as_arr).unwrap();
        assert_eq!(
            stages[0].get("wall_fraction").and_then(Json::as_f64),
            Some(0.5)
        );
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("gate_evals"))
                .and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            json.get("gauges")
                .and_then(|g| g.get("campaign.final_rate"))
                .and_then(Json::as_f64),
            Some(42.5)
        );
        // The document round-trips through the parser.
        let text = json.render_pretty();
        assert!(Json::parse(&text).is_ok());
        assert_eq!(json.get("shard"), Some(&Json::Null));
    }
}
