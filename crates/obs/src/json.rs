//! A minimal JSON value, writer and recursive-descent parser.
//!
//! The workspace is offline (no serde); manifests and trace events need
//! only the JSON subset implemented here: objects, arrays, strings,
//! finite numbers, booleans and null. Object member order is preserved,
//! which keeps rendered manifests stable and diffable.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`]: a message and a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Escapes `s` as a JSON string literal, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite `f64` so that it round-trips through [`Json::parse`]
/// (Rust's shortest-round-trip `Display`); non-finite values render as
/// `null` since JSON has no representation for them.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&fmt_f64(*n)),
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(key));
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders pretty-printed JSON (two-space indent, one member or
    /// element per line), used when rewriting documents meant to live
    /// in version control such as `BENCH_campaign.json`.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    for _ in 0..depth + 1 {
                        out.push_str("  ");
                    }
                    item.render_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    for _ in 0..depth + 1 {
                        out.push_str("  ");
                    }
                    out.push_str(&escape(key));
                    out.push_str(": ");
                    value.render_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push('}');
            }
            other => other.render_into(out),
        }
    }

    /// Parses one JSON value from `input` (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut parser = Parser { bytes, at: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.at != bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.at,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.at..];
            let Some(&b) = rest.first() else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    self.at += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let escape = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.at += 2;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.at += 4;
                            // Surrogate pairs are not needed by manifests;
                            // map unpaired surrogates to the replacement
                            // character instead of failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe via chars()).
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"e"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("e"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let err = Json::parse("nope").unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn render_round_trips() {
        let text = r#"{"s":"x\"y","n":-1.5,"i":42,"b":true,"z":null,"a":[1,[2]],"o":{}}"#;
        let v = Json::parse(text).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn u64_accessor_guards_fractions_and_sign() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("5".into()).as_u64(), None);
    }

    #[test]
    fn float_display_round_trips_through_parse() {
        for v in [0.1, 1.0 / 3.0, 123456.789012345, 1e-12, 9.87654321e9] {
            let rendered = fmt_f64(v);
            assert_eq!(Json::parse(&rendered).unwrap().as_f64(), Some(v));
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn pretty_rendering_round_trips_and_indents() {
        let v = Json::parse(r#"{"a":[1,{"b":true}],"empty":{},"none":[]}"#).unwrap();
        let pretty = v.render_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    {\n      \"b\": true\n    }\n  ],\n  \"empty\": {},\n  \"none\": []\n}\n"
        );
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(escape("tab\there"), "\"tab\\there\"");
    }
}
