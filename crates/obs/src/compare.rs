//! Cross-run manifest comparison: the `fusa compare` regression gate.
//!
//! [`compare_manifests`] diffs a baseline and a candidate
//! [`RunManifest`]:
//!
//! - **Digests** — for same-seed runs of the same design every shared
//!   artifact digest must match exactly; any mismatch is a hard
//!   regression regardless of tolerance (determinism is not subject to
//!   noise).
//! - **Wall time and per-stage times** — the candidate regresses when
//!   it exceeds the baseline by more than `tolerance_pct`. Stages whose
//!   baseline is below `min_seconds` are reported but never gate: their
//!   relative noise dwarfs any signal.
//! - **Histogram quantiles** — p50/p90/p99 of shared histograms.
//!   Time-valued histograms (names ending in `_seconds`) gate like
//!   stages; value histograms (loss, gate-evals) are informational.
//! - **Peak RSS** — tolerance-gated when both runs measured it, skipped
//!   when either platform reported it absent.
//!
//! The result renders as a text delta table or JSON, and
//! [`append_bench_trajectory`] folds it into `BENCH_campaign.json` so
//! repeated `fusa compare --append-bench` runs accumulate a performance
//! trajectory next to the committed benchmark numbers.

use crate::json::Json;
use crate::manifest::RunManifest;
use std::fmt::Write as _;

/// Tuning for one comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareOptions {
    /// Relative slowdown (percent) a time metric may show before it
    /// counts as a regression.
    pub tolerance_pct: f64,
    /// Baseline stages/wall times shorter than this many seconds never
    /// gate (micro-stage noise floor).
    pub min_seconds: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            tolerance_pct: 10.0,
            min_seconds: 0.05,
        }
    }
}

/// Verdict of one delta-table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    /// Within tolerance (or informational-only metric).
    Ok,
    /// Candidate improved beyond the tolerance band.
    Improved,
    /// Candidate regressed beyond the tolerance band.
    Regression,
    /// Not comparable (metric absent on one side).
    Skipped,
}

impl RowStatus {
    fn label(self) -> &'static str {
        match self {
            RowStatus::Ok => "ok",
            RowStatus::Improved => "improved",
            RowStatus::Regression => "REGRESSION",
            RowStatus::Skipped => "skipped",
        }
    }
}

/// One row of the delta table.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// Metric name (`wall_seconds`, `stage campaign`, `hist
    /// campaign.unit_seconds p99`, `peak_rss_bytes`).
    pub metric: String,
    /// Baseline value, when present.
    pub baseline: Option<f64>,
    /// Candidate value, when present.
    pub candidate: Option<f64>,
    /// Relative change in percent, when both sides are present and the
    /// baseline is nonzero.
    pub delta_pct: Option<f64>,
    /// Verdict.
    pub status: RowStatus,
    /// Short annotation (`baseline < noise floor`, `informational`, …).
    pub note: String,
}

/// Result of [`compare_manifests`].
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Baseline run id.
    pub baseline_id: String,
    /// Candidate run id.
    pub candidate_id: String,
    /// Design under comparison (baseline's).
    pub design: String,
    /// Whether both runs used identical seeds on the same design —
    /// enables the hard digest gate.
    pub same_seed: bool,
    /// Number of artifact digests present in both manifests.
    pub digests_compared: usize,
    /// Artifact names whose digests differ (hard failure when
    /// `same_seed` and both runs are complete).
    pub digest_mismatches: Vec<String>,
    /// Whether the baseline run was interrupted (partial results).
    pub baseline_interrupted: bool,
    /// Whether the candidate run was interrupted (partial results).
    pub candidate_interrupted: bool,
    /// The baseline's `--shard index/total` spec, when it was a shard
    /// partial (rendered as `i/n`).
    pub baseline_shard: Option<String>,
    /// The candidate's `--shard index/total` spec, when it was a shard
    /// partial (rendered as `i/n`).
    pub candidate_shard: Option<String>,
    /// Build-provenance keys that differ: `(key, baseline, candidate)`.
    pub build_differs: Vec<(String, String, String)>,
    /// The delta table.
    pub rows: Vec<DeltaRow>,
    /// Options the comparison ran with.
    pub options: CompareOptions,
}

impl Comparison {
    /// Whether the candidate regressed: any `REGRESSION` row, or a
    /// digest mismatch on a same-seed comparison. An interrupted or
    /// sharded run on either side disables the digest gate — partial
    /// artifacts legitimately differ from complete ones. (A *merged*
    /// run carries no shard spec, so merged-vs-full comparisons gate
    /// normally.)
    pub fn has_regression(&self) -> bool {
        (self.same_seed
            && !self.baseline_interrupted
            && !self.candidate_interrupted
            && self.baseline_shard.is_none()
            && self.candidate_shard.is_none()
            && !self.digest_mismatches.is_empty())
            || self.rows.iter().any(|r| r.status == RowStatus::Regression)
    }

    /// Renders the human-readable delta table.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        let _ = writeln!(
            out,
            "=== fusa compare: {} (baseline) vs {} (candidate) ===",
            self.baseline_id, self.candidate_id
        );
        let _ = writeln!(
            out,
            "design {} | same-seed {} | tolerance {}% | noise floor {}s",
            self.design,
            if self.same_seed { "yes" } else { "no" },
            self.options.tolerance_pct,
            self.options.min_seconds,
        );
        for (key, base, cand) in &self.build_differs {
            let _ = writeln!(out, "build differs: {key}: {base} -> {cand}");
        }
        if self.baseline_interrupted || self.candidate_interrupted {
            let which = match (self.baseline_interrupted, self.candidate_interrupted) {
                (true, true) => "both runs were",
                (true, false) => "baseline was",
                _ => "candidate was",
            };
            let _ = writeln!(
                out,
                "note: {which} interrupted (partial results); digest gate disabled"
            );
        }
        if self.baseline_shard.is_some() || self.candidate_shard.is_some() {
            let which = match (&self.baseline_shard, &self.candidate_shard) {
                (Some(b), Some(c)) => format!("both runs are shard partials ({b}, {c})"),
                (Some(b), None) => format!("baseline is a shard partial ({b})"),
                (None, Some(c)) => format!("candidate is a shard partial ({c})"),
                (None, None) => unreachable!(),
            };
            let _ = writeln!(
                out,
                "note: {which}; digest gate disabled — union shards with `fusa merge` first"
            );
        }

        let metric_width = self
            .rows
            .iter()
            .map(|r| r.metric.len())
            .max()
            .unwrap_or(0)
            .max(12);
        let _ = writeln!(
            out,
            "\n{:<metric_width$} {:>12} {:>12} {:>9}  {:<10} note",
            "metric", "baseline", "candidate", "delta", "status"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<metric_width$} {:>12} {:>12} {:>9}  {:<10} {}",
                row.metric,
                row.baseline.map_or_else(|| "-".into(), format_value),
                row.candidate.map_or_else(|| "-".into(), format_value),
                row.delta_pct
                    .map_or_else(|| "-".into(), |d| format!("{d:+.1}%")),
                row.status.label(),
                row.note,
            );
        }

        let _ = writeln!(
            out,
            "\ndigests: {} compared, {} mismatched{}",
            self.digests_compared,
            self.digest_mismatches.len(),
            if self.digest_mismatches.is_empty() {
                String::new()
            } else {
                format!(" ({})", self.digest_mismatches.join(", "))
            }
        );
        let regressions = self
            .rows
            .iter()
            .filter(|r| r.status == RowStatus::Regression)
            .count();
        if self.has_regression() {
            let mut reasons = Vec::new();
            if self.same_seed && !self.digest_mismatches.is_empty() {
                reasons.push(format!(
                    "{} digest mismatch(es) on a same-seed run",
                    self.digest_mismatches.len()
                ));
            }
            if regressions > 0 {
                reasons.push(format!("{regressions} metric regression(s)"));
            }
            let _ = writeln!(out, "result: REGRESSION — {}", reasons.join(", "));
        } else {
            let _ = writeln!(out, "result: OK");
        }
        out
    }

    /// Renders the comparison as a JSON document (for `--json`).
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                Json::Obj(vec![
                    ("metric".into(), Json::Str(row.metric.clone())),
                    ("baseline".into(), json_opt(row.baseline)),
                    ("candidate".into(), json_opt(row.candidate)),
                    ("delta_pct".into(), json_opt(row.delta_pct)),
                    ("status".into(), Json::Str(row.status.label().to_string())),
                    ("note".into(), Json::Str(row.note.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("baseline".into(), Json::Str(self.baseline_id.clone())),
            ("candidate".into(), Json::Str(self.candidate_id.clone())),
            ("design".into(), Json::Str(self.design.clone())),
            ("same_seed".into(), Json::Bool(self.same_seed)),
            (
                "baseline_interrupted".into(),
                Json::Bool(self.baseline_interrupted),
            ),
            (
                "candidate_interrupted".into(),
                Json::Bool(self.candidate_interrupted),
            ),
            (
                "baseline_shard".into(),
                self.baseline_shard.clone().map_or(Json::Null, Json::Str),
            ),
            (
                "candidate_shard".into(),
                self.candidate_shard.clone().map_or(Json::Null, Json::Str),
            ),
            (
                "tolerance_pct".into(),
                Json::Num(self.options.tolerance_pct),
            ),
            (
                "digests_compared".into(),
                Json::Num(self.digests_compared as f64),
            ),
            (
                "digest_mismatches".into(),
                Json::Arr(
                    self.digest_mismatches
                        .iter()
                        .map(|name| Json::Str(name.clone()))
                        .collect(),
                ),
            ),
            ("rows".into(), Json::Arr(rows)),
            ("regression".into(), Json::Bool(self.has_regression())),
        ])
    }
}

fn json_opt(value: Option<f64>) -> Json {
    value.map_or(Json::Null, Json::Num)
}

fn format_value(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() < 1e-3 || value.abs() >= 1e9 {
        format!("{value:.3e}")
    } else if value.abs() >= 1000.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.4}")
    }
}

fn lookup<'a, T>(map: &'a [(String, T)], key: &str) -> Option<&'a T> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Classifies a (baseline, candidate) pair against the tolerance band.
/// `gate` disables the `Regression` verdict for informational metrics.
fn classify(
    baseline: f64,
    candidate: f64,
    options: &CompareOptions,
    gate: bool,
) -> (Option<f64>, RowStatus) {
    if baseline <= 0.0 {
        let status = if candidate <= 0.0 {
            RowStatus::Ok
        } else {
            RowStatus::Skipped
        };
        return (None, status);
    }
    let delta_pct = (candidate - baseline) / baseline * 100.0;
    let status = if gate && delta_pct > options.tolerance_pct {
        RowStatus::Regression
    } else if delta_pct < -options.tolerance_pct {
        RowStatus::Improved
    } else {
        RowStatus::Ok
    };
    (Some(delta_pct), status)
}

/// Diffs `candidate` against `baseline`. Pure over the two manifests;
/// the CLI decides the exit code from [`Comparison::has_regression`].
pub fn compare_manifests(
    baseline: &RunManifest,
    candidate: &RunManifest,
    options: CompareOptions,
) -> Comparison {
    let same_seed = baseline.design == candidate.design && {
        let mut b = baseline.seeds.clone();
        let mut c = candidate.seeds.clone();
        b.sort();
        c.sort();
        b == c
    };

    let mut digests_compared = 0;
    let mut digest_mismatches = Vec::new();
    for (name, digest) in &baseline.digests {
        if let Some(other) = lookup(&candidate.digests, name) {
            digests_compared += 1;
            if other != digest {
                digest_mismatches.push(name.clone());
            }
        }
    }

    let mut build_differs = Vec::new();
    for (key, value) in &baseline.build {
        if let Some(other) = lookup(&candidate.build, key) {
            if other != value {
                build_differs.push((key.clone(), value.clone(), other.clone()));
            }
        }
    }

    let mut rows = Vec::new();

    // Wall time.
    {
        let gate = baseline.wall_seconds >= options.min_seconds;
        let (delta_pct, status) = classify(
            baseline.wall_seconds,
            candidate.wall_seconds,
            &options,
            gate,
        );
        rows.push(DeltaRow {
            metric: "wall_seconds".into(),
            baseline: Some(baseline.wall_seconds),
            candidate: Some(candidate.wall_seconds),
            delta_pct,
            status,
            note: if gate {
                String::new()
            } else {
                "baseline < noise floor".into()
            },
        });
    }

    // Per-stage wall times over the union of stage names, baseline
    // order first.
    let mut stage_names: Vec<&str> = baseline.stages.iter().map(|s| s.name.as_str()).collect();
    for stage in &candidate.stages {
        if !stage_names.contains(&stage.name.as_str()) {
            stage_names.push(&stage.name);
        }
    }
    for name in stage_names {
        let base = baseline.stages.iter().find(|s| s.name == name);
        let cand = candidate.stages.iter().find(|s| s.name == name);
        let row = match (base, cand) {
            (Some(b), Some(c)) => {
                let gate = b.seconds >= options.min_seconds;
                let (delta_pct, status) = classify(b.seconds, c.seconds, &options, gate);
                DeltaRow {
                    metric: format!("stage {name}"),
                    baseline: Some(b.seconds),
                    candidate: Some(c.seconds),
                    delta_pct,
                    status,
                    note: if gate {
                        String::new()
                    } else {
                        "baseline < noise floor".into()
                    },
                }
            }
            (b, c) => DeltaRow {
                metric: format!("stage {name}"),
                baseline: b.map(|s| s.seconds),
                candidate: c.map(|s| s.seconds),
                delta_pct: None,
                status: RowStatus::Skipped,
                note: if b.is_some() {
                    "only in baseline".into()
                } else {
                    "only in candidate".into()
                },
            },
        };
        rows.push(row);
    }

    // Histogram quantiles over the union of names, baseline order
    // first. Manifests with disjoint histogram sets (different code
    // versions, partial runs) report the asymmetry as skipped rows
    // instead of silently dropping — or erroring on — the odd ones out.
    // Only time-valued histograms gate; counts/losses are informational.
    let mut hist_names: Vec<&str> = baseline
        .histograms
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    for (name, _) in &candidate.histograms {
        if !hist_names.contains(&name.as_str()) {
            hist_names.push(name);
        }
    }
    for name in hist_names {
        let base = lookup(&baseline.histograms, name);
        let cand = lookup(&candidate.histograms, name);
        let (base, cand) = match (base, cand) {
            (Some(b), Some(c)) => (b, c),
            (b, c) => {
                rows.push(DeltaRow {
                    metric: format!("hist {name}"),
                    baseline: b.map(|h| h.p50),
                    candidate: c.map(|h| h.p50),
                    delta_pct: None,
                    status: RowStatus::Skipped,
                    note: if b.is_some() {
                        "only in baseline".into()
                    } else {
                        "only in candidate".into()
                    },
                });
                continue;
            }
        };
        let time_like = name.ends_with("_seconds");
        for (quantile, b, c) in [
            ("p50", base.p50, cand.p50),
            ("p90", base.p90, cand.p90),
            ("p99", base.p99, cand.p99),
        ] {
            let gate = time_like && b >= options.min_seconds;
            let (delta_pct, status) = classify(b, c, &options, gate);
            rows.push(DeltaRow {
                metric: format!("hist {name} {quantile}"),
                baseline: Some(b),
                candidate: Some(c),
                delta_pct,
                status,
                note: if !time_like {
                    "informational".into()
                } else if !gate {
                    "baseline < noise floor".into()
                } else {
                    String::new()
                },
            });
        }
    }

    // Lint finding counters: static-analysis drift surfaces as
    // annotated rows, never as a gate — the lint digest above is the
    // hard gate for same-seed runs, so these rows exist to say *what*
    // moved (per-severity counts) when it trips, and to flag severity
    // drift across code versions where digests legitimately differ.
    let mut counter_names: Vec<&str> = baseline
        .counters
        .iter()
        .map(|(n, _)| n.as_str())
        .filter(|n| n.starts_with("lint.findings"))
        .collect();
    for (name, _) in &candidate.counters {
        if name.starts_with("lint.findings") && !counter_names.contains(&name.as_str()) {
            counter_names.push(name);
        }
    }
    for name in counter_names {
        let base = lookup(&baseline.counters, name).copied();
        let cand = lookup(&candidate.counters, name).copied();
        let (delta_pct, status, note) = match (base, cand) {
            (Some(b), Some(c)) => {
                let (delta_pct, _) = classify(b as f64, c as f64, &options, false);
                let status = if b == c {
                    RowStatus::Ok
                } else {
                    RowStatus::Skipped
                };
                let note = if b == c {
                    "informational".into()
                } else {
                    format!("lint drift: {b} -> {c} finding(s), non-gating")
                };
                (delta_pct, status, note)
            }
            (b, _) => (
                None,
                RowStatus::Skipped,
                if b.is_some() {
                    "only in baseline".into()
                } else {
                    "only in candidate".into()
                },
            ),
        };
        rows.push(DeltaRow {
            metric: format!("counter {name}"),
            baseline: base.map(|b| b as f64),
            candidate: cand.map(|c| c as f64),
            delta_pct,
            status,
            note,
        });
    }

    // Peak RSS: compared only when both platforms measured it.
    {
        let (delta_pct, status, note) = match (baseline.peak_rss_bytes, candidate.peak_rss_bytes) {
            (Some(b), Some(c)) => {
                let (delta_pct, status) = classify(b as f64, c as f64, &options, true);
                (delta_pct, status, String::new())
            }
            _ => (None, RowStatus::Skipped, "not measured on both runs".into()),
        };
        rows.push(DeltaRow {
            metric: "peak_rss_bytes".into(),
            baseline: baseline.peak_rss_bytes.map(|b| b as f64),
            candidate: candidate.peak_rss_bytes.map(|b| b as f64),
            delta_pct,
            status,
            note,
        });
    }

    Comparison {
        baseline_id: baseline.run_id.clone(),
        candidate_id: candidate.run_id.clone(),
        design: baseline.design.clone(),
        same_seed,
        digests_compared,
        digest_mismatches,
        baseline_interrupted: baseline.interrupted,
        candidate_interrupted: candidate.interrupted,
        baseline_shard: baseline.shard.map(|s| format!("{}/{}", s.index, s.total)),
        candidate_shard: candidate.shard.map(|s| format!("{}/{}", s.index, s.total)),
        build_differs,
        rows,
        options,
    }
}

/// Loads a manifest from `path`, accepting either the manifest file
/// itself or a run directory containing `manifest.json`.
pub fn load_manifest_arg(path: &std::path::Path) -> Result<RunManifest, String> {
    let file = if path.is_dir() {
        path.join("manifest.json")
    } else {
        path.to_path_buf()
    };
    let text = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    RunManifest::parse(&text).map_err(|e| format!("{}: {e}", file.display()))
}

/// Appends one trajectory entry for `comparison` to the
/// `BENCH_campaign.json` document in `existing` (pass an empty string
/// when the file does not exist yet) and returns the rewritten text.
///
/// The entry lands in a top-level `"trajectory"` array, created on
/// first use; all other document content is preserved.
pub fn append_bench_trajectory(
    existing: &str,
    comparison: &Comparison,
    baseline: &RunManifest,
    candidate: &RunManifest,
) -> Result<String, String> {
    let mut root = if existing.trim().is_empty() {
        Json::Obj(Vec::new())
    } else {
        Json::parse(existing).map_err(|e| format!("existing bench file: {e}"))?
    };
    let Json::Obj(members) = &mut root else {
        return Err("existing bench file is not a JSON object".into());
    };

    let entry = Json::Obj(vec![
        (
            "recorded_unix".into(),
            Json::Num(candidate.created_unix as f64),
        ),
        ("design".into(), Json::Str(comparison.design.clone())),
        (
            "baseline_run".into(),
            Json::Str(comparison.baseline_id.clone()),
        ),
        (
            "candidate_run".into(),
            Json::Str(comparison.candidate_id.clone()),
        ),
        (
            "baseline_wall_seconds".into(),
            Json::Num(baseline.wall_seconds),
        ),
        (
            "candidate_wall_seconds".into(),
            Json::Num(candidate.wall_seconds),
        ),
        ("same_seed".into(), Json::Bool(comparison.same_seed)),
        (
            "digest_mismatches".into(),
            Json::Num(comparison.digest_mismatches.len() as f64),
        ),
        (
            "tolerance_pct".into(),
            Json::Num(comparison.options.tolerance_pct),
        ),
        ("regression".into(), Json::Bool(comparison.has_regression())),
    ]);

    match members.iter_mut().find(|(k, _)| k == "trajectory") {
        Some((_, Json::Arr(entries))) => entries.push(entry),
        Some((_, other)) => {
            return Err(format!(
                "existing `trajectory` member is not an array: {}",
                other.render()
            ))
        }
        None => members.push(("trajectory".into(), Json::Arr(vec![entry]))),
    }
    Ok(root.render_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::HistogramSummary;
    use crate::manifest::StageTime;

    fn manifest(run_id: &str) -> RunManifest {
        RunManifest {
            run_id: run_id.into(),
            command: format!("fusa analyze d --run-dir {run_id}"),
            design: "d".into(),
            created_unix: 1_754_000_000,
            wall_seconds: 2.0,
            threads: 4,
            peak_rss_bytes: Some(100 << 20),
            build: vec![("rustc".into(), "rustc 1.95.0".into())],
            seeds: vec![("split".into(), 7), ("workloads".into(), 9)],
            stages: vec![
                StageTime {
                    name: "campaign".into(),
                    seconds: 1.5,
                    count: 1,
                },
                StageTime {
                    name: "train".into(),
                    seconds: 0.4,
                    count: 1,
                },
            ],
            histograms: vec![(
                "campaign.unit_seconds".into(),
                HistogramSummary {
                    count: 96,
                    sum: 1.44,
                    min: 0.01,
                    max: 0.3,
                    p50: 0.15,
                    p90: 0.25,
                    p99: 0.3,
                },
            )],
            digests: vec![
                ("nodes_csv".into(), "fnv1a64:1111".into()),
                ("scores_csv".into(), "fnv1a64:2222".into()),
            ],
            ..RunManifest::default()
        }
    }

    #[test]
    fn identical_runs_compare_clean() {
        let base = manifest("a");
        let cand = manifest("b");
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        assert!(cmp.same_seed);
        assert_eq!(cmp.digests_compared, 2);
        assert!(cmp.digest_mismatches.is_empty());
        assert!(!cmp.has_regression(), "{}", cmp.render_text());
        assert!(cmp.render_text().contains("result: OK"));
    }

    #[test]
    fn lint_counter_drift_annotates_without_gating() {
        let mut base = manifest("a");
        let mut cand = manifest("b");
        base.counters = vec![
            ("gate_evals".into(), 1000), // non-lint counters stay out
            ("lint.findings".into(), 5),
            ("lint.findings.warning".into(), 2),
        ];
        cand.counters = vec![
            ("gate_evals".into(), 2000),
            ("lint.findings".into(), 7),
            ("lint.findings.info".into(), 2),
        ];
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        assert!(!cmp.has_regression(), "{}", cmp.render_text());
        let row = |metric: &str| cmp.rows.iter().find(|r| r.metric == metric);
        assert!(row("counter gate_evals").is_none());
        let drift = row("counter lint.findings").unwrap();
        assert_eq!(drift.status, RowStatus::Skipped);
        assert!(drift.note.contains("5 -> 7"), "{}", drift.note);
        let warn = row("counter lint.findings.warning").unwrap();
        assert_eq!(warn.note, "only in baseline");
        let info = row("counter lint.findings.info").unwrap();
        assert_eq!(info.note, "only in candidate");
    }

    #[test]
    fn identical_lint_counters_are_informational() {
        let mut base = manifest("a");
        let mut cand = manifest("b");
        base.counters = vec![("lint.findings.error".into(), 0)];
        cand.counters = vec![("lint.findings.error".into(), 0)];
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        let row = cmp
            .rows
            .iter()
            .find(|r| r.metric == "counter lint.findings.error")
            .unwrap();
        assert_eq!(row.status, RowStatus::Ok);
        assert_eq!(row.note, "informational");
        assert!(!cmp.has_regression());
    }

    #[test]
    fn stage_slowdown_beyond_tolerance_regresses() {
        let base = manifest("a");
        let mut cand = manifest("b");
        cand.stages[0].seconds = 1.5 * 1.25; // +25% > 10%
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        assert!(cmp.has_regression());
        let row = cmp
            .rows
            .iter()
            .find(|r| r.metric == "stage campaign")
            .unwrap();
        assert_eq!(row.status, RowStatus::Regression);
        assert!((row.delta_pct.unwrap() - 25.0).abs() < 1e-9);
        assert!(cmp.render_text().contains("result: REGRESSION"));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = manifest("a");
        let mut cand = manifest("b");
        cand.stages[0].seconds = 1.5 * 1.05; // +5% < 10%
        cand.wall_seconds = 2.0 * 1.05;
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        assert!(!cmp.has_regression(), "{}", cmp.render_text());
    }

    #[test]
    fn micro_stages_never_gate() {
        let mut base = manifest("a");
        base.stages[1].seconds = 0.001;
        let mut cand = manifest("b");
        cand.stages[1].seconds = 0.05; // 50x but under the noise floor
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        let row = cmp.rows.iter().find(|r| r.metric == "stage train").unwrap();
        assert_ne!(row.status, RowStatus::Regression);
        assert_eq!(row.note, "baseline < noise floor");
    }

    #[test]
    fn digest_mismatch_is_hard_failure_only_for_same_seed() {
        let base = manifest("a");
        let mut cand = manifest("b");
        cand.digests[0].1 = "fnv1a64:dead".into();
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        assert!(cmp.same_seed);
        assert_eq!(cmp.digest_mismatches, vec!["nodes_csv".to_string()]);
        assert!(cmp.has_regression());

        // Different seeds: mismatched digests are expected, no failure.
        cand.seeds[0].1 = 8;
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        assert!(!cmp.same_seed);
        assert!(!cmp.has_regression(), "{}", cmp.render_text());
    }

    #[test]
    fn time_histograms_gate_and_value_histograms_inform() {
        let base = manifest("a");
        let mut cand = manifest("b");
        cand.histograms[0].1.p99 = 0.3 * 1.5;
        cand.histograms.push((
            "train.loss".into(),
            HistogramSummary {
                count: 10,
                sum: 5.0,
                min: 0.1,
                max: 1.0,
                p50: 0.5,
                p90: 0.9,
                p99: 1.0,
            },
        ));
        let mut with_loss = base.clone();
        with_loss.histograms.push((
            "train.loss".into(),
            HistogramSummary {
                count: 10,
                sum: 2.0,
                min: 0.05,
                max: 0.4,
                p50: 0.2,
                p90: 0.35,
                p99: 0.4,
            },
        ));
        let cmp = compare_manifests(&with_loss, &cand, CompareOptions::default());
        let p99 = cmp
            .rows
            .iter()
            .find(|r| r.metric == "hist campaign.unit_seconds p99")
            .unwrap();
        assert_eq!(p99.status, RowStatus::Regression);
        // Loss more than doubled but is informational, never a gate.
        let loss = cmp
            .rows
            .iter()
            .find(|r| r.metric == "hist train.loss p99")
            .unwrap();
        assert_ne!(loss.status, RowStatus::Regression);
        assert_eq!(loss.note, "informational");
    }

    #[test]
    fn disjoint_histogram_sets_report_asymmetry_without_gating() {
        let mut base = manifest("a");
        base.histograms.push((
            "lint.findings".into(),
            HistogramSummary {
                count: 4,
                sum: 8.0,
                min: 1.0,
                max: 3.0,
                p50: 2.0,
                p90: 3.0,
                p99: 3.0,
            },
        ));
        let mut cand = manifest("b");
        cand.histograms.push((
            "train.epoch_seconds".into(),
            HistogramSummary {
                count: 80,
                sum: 8.0,
                min: 0.05,
                max: 0.3,
                p50: 0.1,
                p90: 0.2,
                p99: 0.3,
            },
        ));
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        let only_base = cmp
            .rows
            .iter()
            .find(|r| r.metric == "hist lint.findings")
            .expect("baseline-only histogram row");
        assert_eq!(only_base.status, RowStatus::Skipped);
        assert_eq!(only_base.note, "only in baseline");
        assert!(only_base.candidate.is_none());
        let only_cand = cmp
            .rows
            .iter()
            .find(|r| r.metric == "hist train.epoch_seconds")
            .expect("candidate-only histogram row");
        assert_eq!(only_cand.status, RowStatus::Skipped);
        assert_eq!(only_cand.note, "only in candidate");
        assert!(only_cand.baseline.is_none());
        assert!(!cmp.has_regression(), "{}", cmp.render_text());
    }

    #[test]
    fn interrupted_runs_disable_the_digest_gate() {
        let base = manifest("a");
        let mut cand = manifest("b");
        cand.interrupted = true;
        cand.digests[0].1 = "fnv1a64:dead".into(); // partial artifact
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        assert!(cmp.same_seed);
        assert!(cmp.candidate_interrupted);
        assert_eq!(cmp.digest_mismatches, vec!["nodes_csv".to_string()]);
        assert!(!cmp.has_regression(), "{}", cmp.render_text());
        let text = cmp.render_text();
        assert!(text.contains("candidate was interrupted"));
        assert!(text.contains("digest gate disabled"));
        let json = cmp.to_json();
        assert_eq!(json.get("candidate_interrupted"), Some(&Json::Bool(true)));
    }

    #[test]
    fn sharded_runs_disable_the_digest_gate() {
        let base = manifest("a");
        let mut cand = manifest("b");
        cand.shard = Some(crate::manifest::ShardRecord { index: 2, total: 3 });
        cand.digests[0].1 = "fnv1a64:beef".into(); // shard partial artifact
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        assert!(cmp.same_seed);
        assert_eq!(cmp.candidate_shard.as_deref(), Some("2/3"));
        assert!(cmp.baseline_shard.is_none());
        assert_eq!(cmp.digest_mismatches, vec!["nodes_csv".to_string()]);
        assert!(!cmp.has_regression(), "{}", cmp.render_text());
        let text = cmp.render_text();
        assert!(
            text.contains("candidate is a shard partial (2/3)"),
            "{text}"
        );
        assert!(text.contains("digest gate disabled"), "{text}");
        assert!(text.contains("fusa merge"), "{text}");
        let json = cmp.to_json();
        assert_eq!(
            json.get("candidate_shard"),
            Some(&Json::Str("2/3".to_string()))
        );
        assert_eq!(json.get("baseline_shard"), Some(&Json::Null));
    }

    #[test]
    fn sharded_metric_regressions_still_gate() {
        let mut base = manifest("a");
        let mut cand = manifest("b");
        base.shard = Some(crate::manifest::ShardRecord { index: 1, total: 2 });
        cand.shard = Some(crate::manifest::ShardRecord { index: 1, total: 2 });
        cand.stages[0].seconds = 1.5 * 1.25; // +25% > 10%
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        assert_eq!(cmp.baseline_shard.as_deref(), Some("1/2"));
        assert!(
            cmp.has_regression(),
            "shard partials gate on metrics even though digests are exempt"
        );
        assert!(cmp
            .render_text()
            .contains("both runs are shard partials (1/2, 1/2)"));
    }

    #[test]
    fn absent_rss_skips_the_rss_row() {
        let base = manifest("a");
        let mut cand = manifest("b");
        cand.peak_rss_bytes = None;
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        let row = cmp
            .rows
            .iter()
            .find(|r| r.metric == "peak_rss_bytes")
            .unwrap();
        assert_eq!(row.status, RowStatus::Skipped);
        assert!(!cmp.has_regression());
    }

    #[test]
    fn build_differences_are_annotated_not_gated() {
        let base = manifest("a");
        let mut cand = manifest("b");
        cand.build[0].1 = "rustc 1.96.0".into();
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        assert_eq!(cmp.build_differs.len(), 1);
        assert!(!cmp.has_regression());
        assert!(cmp
            .render_text()
            .contains("build differs: rustc: rustc 1.95.0 -> rustc 1.96.0"));
    }

    #[test]
    fn json_rendering_parses_and_flags_regression() {
        let base = manifest("a");
        let mut cand = manifest("b");
        cand.wall_seconds = 4.0;
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());
        let json = cmp.to_json();
        let reparsed = Json::parse(&json.render()).unwrap();
        assert_eq!(reparsed.get("regression"), Some(&Json::Bool(true)));
        assert!(reparsed.get("rows").and_then(Json::as_arr).unwrap().len() > 3);
    }

    #[test]
    fn bench_trajectory_appends_and_preserves_document() {
        let base = manifest("a");
        let cand = manifest("b");
        let cmp = compare_manifests(&base, &cand, CompareOptions::default());

        // Fresh file.
        let first = append_bench_trajectory("", &cmp, &base, &cand).unwrap();
        let parsed = Json::parse(&first).unwrap();
        let entries = parsed.get("trajectory").and_then(Json::as_arr).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("regression"), Some(&Json::Bool(false)));

        // Existing document with unrelated content: preserved, entry appended.
        let existing = r#"{"benchmark": "campaign", "designs": [{"name": "d"}]}"#;
        let second = append_bench_trajectory(existing, &cmp, &base, &cand).unwrap();
        let parsed = Json::parse(&second).unwrap();
        assert_eq!(parsed.get("benchmark"), Some(&Json::Str("campaign".into())));
        assert_eq!(
            parsed
                .get("trajectory")
                .and_then(Json::as_arr)
                .unwrap()
                .len(),
            1
        );
        // And appending again grows the array.
        let third = append_bench_trajectory(&second, &cmp, &base, &cand).unwrap();
        assert_eq!(
            Json::parse(&third)
                .unwrap()
                .get("trajectory")
                .and_then(Json::as_arr)
                .unwrap()
                .len(),
            2
        );

        // A malformed trajectory member is rejected, not clobbered.
        let bad = r#"{"trajectory": 5}"#;
        assert!(append_bench_trajectory(bad, &cmp, &base, &cand).is_err());
    }
}
