//! Streaming FNV-1a 64-bit content digests.
//!
//! Manifests record a digest per output artifact (reports, CSVs,
//! probability vectors) so reproducibility can be checked by comparing
//! 16-character hex strings instead of diffing whole files. FNV-1a is
//! not cryptographic — it detects drift, not adversaries — but it is
//! deterministic, dependency-free and fast.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// The current digest as the manifest's `fnv1a64:` hex form.
    pub fn hex(&self) -> String {
        format!("fnv1a64:{:016x}", self.0)
    }
}

/// One-shot digest of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// One-shot digest of `bytes` in `fnv1a64:<16 hex>` form.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
        assert_eq!(h.hex(), fnv1a64_hex(b"foobar"));
    }

    #[test]
    fn hex_form_is_prefixed_and_padded() {
        let hex = fnv1a64_hex(b"");
        assert!(hex.starts_with("fnv1a64:"));
        assert_eq!(hex.len(), "fnv1a64:".len() + 16);
    }
}
