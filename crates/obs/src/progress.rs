//! Live progress heartbeats for long-running stages.
//!
//! A [`Progress`] handle wraps a background heartbeat thread that
//! periodically reads a few atomics (work done, auxiliary work units, an
//! optional metric such as training loss) and emits throttled `progress`
//! events to the recorder's JSONL sink plus, when stderr reporting is
//! enabled (`fusa … --progress`), one human-readable line per beat:
//!
//! ```text
//! [fusa] campaign: 37/96 units (38.5%), 1.21e7 work/s, ETA 3.2s
//! [fusa] train: 120/300 units (40.0%), metric 0.1234, ETA 2.1s
//! ```
//!
//! When neither a sink nor stderr reporting is active,
//! [`Progress::start`] returns a **disabled** handle: no thread is
//! spawned and every method short-circuits on a `None` check, so
//! instrumented hot paths pay nothing (asserted by the
//! `campaign_throughput` bench harness, which measures the default
//! progress-off path).

use crate::recorder::{EventField, Recorder};
use crate::status::{status_target, unix_now, StatusSnapshot, StatusTarget};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Process-wide "`--progress` was passed" switch, read by library code
/// when it opens a [`Progress`] over a long loop.
static PROGRESS_STDERR: AtomicBool = AtomicBool::new(false);

/// Enables or disables human-readable stderr heartbeats process-wide
/// (the CLI sets this from its `--progress` flag).
pub fn set_progress_stderr(enabled: bool) {
    PROGRESS_STDERR.store(enabled, Ordering::Release);
}

/// Whether stderr heartbeats are enabled process-wide.
pub fn progress_stderr() -> bool {
    PROGRESS_STDERR.load(Ordering::Acquire)
}

/// Tuning for one [`Progress`] handle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressConfig {
    /// Emit human-readable lines to stderr.
    pub stderr: bool,
    /// Beat period. Beats are throttled to this interval regardless of
    /// how fast the instrumented loop advances.
    pub interval: Duration,
}

impl Default for ProgressConfig {
    fn default() -> Self {
        ProgressConfig {
            stderr: progress_stderr(),
            interval: Duration::from_millis(500),
        }
    }
}

struct ProgressShared {
    label: String,
    /// Unit name shown on stderr (`units`, `epochs`, …).
    unit: String,
    total: u64,
    done: AtomicU64,
    /// Auxiliary work units (e.g. fault-cycles) for throughput.
    work: AtomicU64,
    /// Latest metric value as `f64` bits; `u64::MAX` sentinel = unset.
    metric_bits: AtomicU64,
    /// Worker threads serving the phase (0 until published).
    workers: AtomicU64,
    /// Cumulative nanoseconds worker threads spent inside work items.
    busy_nanos: AtomicU64,
    /// Units quarantined so far.
    quarantined: AtomicU64,
    stop: Mutex<bool>,
    wake: Condvar,
    stderr: bool,
    started: Instant,
    recorder: &'static Recorder,
    /// `status.json` destination captured when the handle started; each
    /// beat additionally publishes a [`StatusSnapshot`] there.
    status: Option<Arc<StatusTarget>>,
}

const METRIC_UNSET: u64 = u64::MAX;

impl ProgressShared {
    fn emit(&self, final_beat: bool) {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let done = self.done.load(Ordering::Relaxed);
        let work = self.work.load(Ordering::Relaxed);
        let metric_bits = self.metric_bits.load(Ordering::Relaxed);
        let metric = (metric_bits != METRIC_UNSET).then(|| f64::from_bits(metric_bits));
        let rate = if work > 0 {
            work as f64 / elapsed
        } else {
            done as f64 / elapsed
        };
        let eta = if done > 0 && self.total > done {
            (self.total - done) as f64 * elapsed / done as f64
        } else {
            0.0
        };

        if final_beat {
            // Preserve the last live figures in the manifest so post-hoc
            // reports show what the operator saw on the heartbeat.
            self.recorder
                .gauge_set(&format!("{}.final_rate", self.label), rate);
            self.recorder
                .gauge_set(&format!("{}.final_eta_seconds", self.label), eta);
        }
        self.write_status(final_beat, done, work, rate, eta, elapsed);

        if self.recorder.has_sink() {
            let mut fields = vec![
                ("name", EventField::Str(&self.label)),
                ("done", EventField::U64(done)),
                ("total", EventField::U64(self.total)),
                ("seconds", EventField::F64(elapsed)),
                ("rate", EventField::F64(rate)),
                ("eta_seconds", EventField::F64(eta)),
            ];
            if work > 0 {
                fields.push(("work", EventField::U64(work)));
            }
            if let Some(metric) = metric {
                fields.push(("metric", EventField::F64(metric)));
            }
            if final_beat {
                fields.push(("final", EventField::U64(1)));
            }
            self.recorder.event("progress", &fields);
        }

        if self.stderr {
            let percent = if self.total > 0 {
                done as f64 * 100.0 / self.total as f64
            } else {
                0.0
            };
            let mut line = format!(
                "[fusa] {}: {}/{} {} ({:.1}%)",
                self.label, done, self.total, self.unit, percent
            );
            if work > 0 {
                line.push_str(&format!(", {rate:.3e} work/s"));
            }
            if let Some(metric) = metric {
                line.push_str(&format!(", metric {metric:.4}"));
            }
            if final_beat {
                line.push_str(&format!(", done in {elapsed:.1}s"));
            } else {
                line.push_str(&format!(", ETA {eta:.1}s"));
            }
            eprintln!("{line}");
        }
    }

    /// Publishes a `status.json` snapshot at the armed target, if any.
    /// Best-effort: a full disk or vanished run dir must not take down
    /// the instrumented run.
    fn write_status(
        &self,
        final_beat: bool,
        done: u64,
        work: u64,
        rate: f64,
        eta: f64,
        elapsed: f64,
    ) {
        let Some(target) = &self.status else {
            return;
        };
        let busy_seconds = self.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        let workers = self.workers.load(Ordering::Relaxed);
        let busy_fraction = if workers > 0 {
            (busy_seconds / (elapsed * workers as f64)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let snapshot = StatusSnapshot {
            run_id: target.run_id.clone(),
            design: target.design.clone(),
            shard: target.shard,
            pid: std::process::id() as u64,
            phase: self.label.clone(),
            unit: self.unit.clone(),
            done,
            total: self.total,
            work,
            rate,
            eta_seconds: eta,
            elapsed_seconds: elapsed,
            quarantined: self.quarantined.load(Ordering::Relaxed),
            workers,
            busy_fraction,
            peak_rss_bytes: crate::rss::peak_rss_bytes(),
            updated_unix: unix_now(),
            finished: final_beat,
            degraded: crate::iofault::durability_degraded(),
        };
        // Best-effort on purpose: a failed heartbeat is superseded by
        // the next one and does not itself degrade durability.
        let _ = snapshot.write_atomic(&target.path);
    }
}

/// Handle over a long loop's heartbeat. Cloning is not supported;
/// worker threads advance through a shared reference.
///
/// Dropping the handle stops the heartbeat thread and emits one final
/// beat (active handles only).
pub struct Progress {
    shared: Option<Arc<ProgressShared>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Progress {
    /// A no-op handle: no thread, and every method is a branch on
    /// `None`. Hot loops can call [`Progress::advance`] unconditionally.
    pub fn disabled() -> Progress {
        Progress {
            shared: None,
            thread: None,
        }
    }

    /// Starts a heartbeat over `total` units of work named `label`.
    ///
    /// Returns a disabled handle when no output is armed: neither
    /// stderr reporting (`config.stderr`), nor a JSONL sink on
    /// `recorder`, nor a process-wide [`StatusTarget`] — the
    /// zero-overhead default. When a status target is armed, the first
    /// `status.json` snapshot is published immediately (before any
    /// heartbeat fires), so `fusa top` sees the run as soon as it
    /// starts.
    pub fn start(
        recorder: &'static Recorder,
        label: &str,
        unit: &str,
        total: u64,
        config: ProgressConfig,
    ) -> Progress {
        let status = status_target();
        if !config.stderr && !recorder.has_sink() && status.is_none() {
            return Progress::disabled();
        }
        let shared = Arc::new(ProgressShared {
            label: label.to_string(),
            unit: unit.to_string(),
            total,
            done: AtomicU64::new(0),
            work: AtomicU64::new(0),
            metric_bits: AtomicU64::new(METRIC_UNSET),
            workers: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            stop: Mutex::new(false),
            wake: Condvar::new(),
            stderr: config.stderr,
            started: Instant::now(),
            recorder,
            status,
        });
        // Publish the starting snapshot (file only — the event/stderr
        // heartbeat starts with the first periodic beat).
        shared.write_status(false, 0, 0, 0.0, 0.0, 0.0);
        let beat = Arc::clone(&shared);
        let interval = config.interval;
        let thread = std::thread::Builder::new()
            .name(format!("fusa-progress-{label}"))
            .spawn(move || {
                let mut stopped = beat.stop.lock().expect("progress lock poisoned");
                loop {
                    let (guard, timeout) = beat
                        .wake
                        .wait_timeout(stopped, interval)
                        .expect("progress lock poisoned");
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        beat.emit(false);
                    }
                }
            })
            .expect("spawn progress heartbeat");
        Progress {
            shared: Some(shared),
            thread: Some(thread),
        }
    }

    /// Whether a heartbeat thread is running.
    pub fn is_active(&self) -> bool {
        self.shared.is_some()
    }

    /// Marks `n` more units done.
    pub fn advance(&self, n: u64) {
        if let Some(shared) = &self.shared {
            shared.done.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds `n` auxiliary work units (e.g. fault-cycles); when nonzero,
    /// the reported rate is work units per second instead of done/s.
    pub fn add_work(&self, n: u64) {
        if let Some(shared) = &self.shared {
            shared.work.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Publishes the latest metric value (e.g. training loss).
    pub fn set_metric(&self, value: f64) {
        if let Some(shared) = &self.shared {
            shared.metric_bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Publishes the number of worker threads serving the phase; status
    /// snapshots report `busy / (elapsed * workers)` as the busy
    /// fraction once this is nonzero.
    pub fn set_workers(&self, workers: u64) {
        if let Some(shared) = &self.shared {
            shared.workers.store(workers, Ordering::Relaxed);
        }
    }

    /// Accumulates wall time a worker spent inside a work item.
    pub fn add_busy_seconds(&self, seconds: f64) {
        if let Some(shared) = &self.shared {
            let nanos = (seconds.max(0.0) * 1e9) as u64;
            shared.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Counts `n` more quarantined units.
    pub fn add_quarantined(&self, n: u64) {
        if let Some(shared) = &self.shared {
            shared.quarantined.fetch_add(n, Ordering::Relaxed);
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            *shared.stop.lock().expect("progress lock poisoned") = true;
            shared.wake.notify_all();
            if let Some(thread) = self.thread.take() {
                let _ = thread.join();
            }
            shared.emit(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::Mutex as StdMutex;

    fn leaked_recorder() -> &'static Recorder {
        Box::leak(Box::new(Recorder::new()))
    }

    struct Shared(Arc<StdMutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disabled_without_sink_or_stderr() {
        let _guard = crate::status::test_target_lock();
        crate::status::set_status_target(None);
        let recorder = leaked_recorder();
        let progress = Progress::start(
            recorder,
            "campaign",
            "units",
            10,
            ProgressConfig {
                stderr: false,
                interval: Duration::from_millis(1),
            },
        );
        assert!(!progress.is_active());
        // All methods are no-ops on a disabled handle.
        progress.advance(3);
        progress.add_work(100);
        progress.set_metric(0.5);
        drop(progress);
        assert_eq!(recorder.snapshot(), crate::Snapshot::default());
    }

    /// Progress events are framed as parseable JSONL with the
    /// documented fields, and a final beat is emitted on drop.
    #[test]
    fn progress_events_are_well_framed_jsonl() {
        let recorder = leaked_recorder();
        let buffer = Arc::new(StdMutex::new(Vec::<u8>::new()));
        recorder.attach_sink(Box::new(Shared(buffer.clone())));
        let progress = Progress::start(
            recorder,
            "campaign",
            "units",
            8,
            ProgressConfig {
                stderr: false,
                interval: Duration::from_millis(5),
            },
        );
        assert!(progress.is_active());
        progress.advance(3);
        progress.add_work(3000);
        progress.set_metric(0.25);
        // Let at least one periodic beat fire, then drop for the final.
        std::thread::sleep(Duration::from_millis(60));
        drop(progress);
        recorder.detach_sink();

        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let beats: Vec<crate::Json> = text
            .lines()
            .map(|line| crate::Json::parse(line).expect("beat parses as JSON"))
            .filter(|e| e.get("kind").and_then(crate::Json::as_str) == Some("progress"))
            .collect();
        assert!(beats.len() >= 2, "periodic + final beat: {text}");
        for beat in &beats {
            assert_eq!(
                beat.get("name").and_then(crate::Json::as_str),
                Some("campaign")
            );
            assert_eq!(beat.get("done").and_then(crate::Json::as_u64), Some(3));
            assert_eq!(beat.get("total").and_then(crate::Json::as_u64), Some(8));
            assert_eq!(beat.get("work").and_then(crate::Json::as_u64), Some(3000));
            assert!(beat.get("rate").and_then(crate::Json::as_f64).unwrap() > 0.0);
            assert!(beat
                .get("eta_seconds")
                .and_then(crate::Json::as_f64)
                .is_some());
            assert_eq!(beat.get("metric").and_then(crate::Json::as_f64), Some(0.25));
        }
        let finals: Vec<_> = beats.iter().filter(|b| b.get("final").is_some()).collect();
        assert_eq!(finals.len(), 1, "exactly one final beat");
    }

    #[test]
    fn concurrent_advance_accumulates() {
        let recorder = leaked_recorder();
        let buffer = Arc::new(StdMutex::new(Vec::<u8>::new()));
        recorder.attach_sink(Box::new(Shared(buffer.clone())));
        let progress = Progress::start(
            recorder,
            "fanin",
            "units",
            400,
            ProgressConfig {
                stderr: false,
                interval: Duration::from_secs(3600),
            },
        );
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let progress = &progress;
                scope.spawn(move || {
                    for _ in 0..100 {
                        progress.advance(1);
                    }
                });
            }
        });
        drop(progress);
        recorder.detach_sink();
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let last = text
            .lines()
            .rev()
            .map(|l| crate::Json::parse(l).unwrap())
            .find(|e| e.get("kind").and_then(crate::Json::as_str) == Some("progress"))
            .expect("final beat present");
        assert_eq!(last.get("done").and_then(crate::Json::as_u64), Some(400));
    }

    /// An armed status target alone activates the heartbeat, publishes
    /// a snapshot immediately, tracks worker/quarantine telemetry, and
    /// records final rate/ETA gauges — without any JSONL sink.
    #[test]
    fn status_target_activates_and_publishes_snapshots() {
        use crate::status::{set_status_target, StatusSnapshot, StatusTarget};
        let _guard = crate::status::test_target_lock();
        let dir = std::env::temp_dir().join(format!("fusa_progress_status_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("status.json");
        set_status_target(Some(StatusTarget {
            path: path.clone(),
            run_id: "faults-demo-shard0of2".into(),
            design: "demo".into(),
            shard: Some((0, 2)),
        }));
        let recorder = leaked_recorder();
        let progress = Progress::start(
            recorder,
            "campaign",
            "units",
            6,
            ProgressConfig {
                stderr: false,
                interval: Duration::from_secs(3600),
            },
        );
        set_status_target(None); // captured at start; clearing must not matter
        assert!(progress.is_active());

        // The starting snapshot is already on disk.
        let first = StatusSnapshot::read(&path).expect("initial snapshot");
        assert_eq!(first.run_id, "faults-demo-shard0of2");
        assert_eq!(first.shard, Some((0, 2)));
        assert_eq!(first.phase, "campaign");
        assert_eq!((first.done, first.total), (0, 6));
        assert!(!first.finished);

        progress.set_workers(2);
        progress.advance(6);
        progress.add_work(6000);
        progress.add_busy_seconds(0.25);
        progress.add_quarantined(1);
        drop(progress);

        let last = StatusSnapshot::read(&path).expect("final snapshot");
        assert_eq!((last.done, last.total, last.work), (6, 6, 6000));
        assert_eq!(last.workers, 2);
        assert_eq!(last.quarantined, 1);
        assert!(last.finished);
        assert!(last.rate > 0.0);
        assert!((0.0..=1.0).contains(&last.busy_fraction));
        assert!(last.updated_unix > 0.0);

        let snapshot = recorder.snapshot();
        assert!(snapshot.gauge("campaign.final_rate").unwrap() > 0.0);
        assert_eq!(snapshot.gauge("campaign.final_eta_seconds"), Some(0.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn global_stderr_switch_round_trips() {
        assert!(!progress_stderr());
        set_progress_stderr(true);
        assert!(progress_stderr());
        assert!(ProgressConfig::default().stderr);
        set_progress_stderr(false);
        assert!(!progress_stderr());
    }
}
