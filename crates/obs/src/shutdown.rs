//! Cooperative shutdown signalling.
//!
//! Long-running campaigns must survive SIGINT/SIGTERM gracefully: the
//! handler only sets a process-global flag, workers drain their in-flight
//! units, and the caller flushes checkpoints and a partial manifest
//! before exiting. A *second* signal restores the default disposition and
//! re-raises, so an impatient operator can still force-kill immediately.
//!
//! The handler is registered through the C `signal` function directly
//! (no libc crate — the workspace is dependency-free) and does nothing
//! but one atomic store, which is async-signal-safe. On non-Unix targets
//! installation is a no-op and the flag can only be set cooperatively.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The process-global shutdown flag, suitable for
/// `DurabilityConfig::interrupt`-style cooperative draining.
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// `true` once a shutdown has been requested (signal or cooperative).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Requests a shutdown cooperatively (as if a signal had arrived).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Release);
}

/// Clears the flag (tests and multi-campaign drivers).
pub fn reset_shutdown() {
    SHUTDOWN.store(false, Ordering::Release);
}

#[cfg(unix)]
mod sys {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn raise(signum: i32) -> i32;
    }

    extern "C" fn on_signal(signum: i32) {
        // First signal: request a graceful drain. Second signal: the
        // operator wants out *now* — restore the default disposition and
        // re-raise so the process dies with the conventional status.
        if SHUTDOWN.swap(true, Ordering::AcqRel) {
            unsafe {
                signal(signum, SIG_DFL);
                raise(signum);
            }
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    pub fn raise_term() {
        unsafe {
            raise(SIGTERM);
        }
    }
}

/// Installs SIGINT/SIGTERM handlers that set the shutdown flag (no-op
/// off Unix). Call once at process start, before long-running work.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    sys::install();
}

/// Raises a real SIGTERM at the current process (test hook for the
/// signal path). Off Unix this degrades to [`request_shutdown`].
///
/// With no handler installed the process dies — callers are expected to
/// have run [`install_signal_handlers`] first.
pub fn raise_shutdown_signal() {
    #[cfg(unix)]
    sys::raise_term();
    #[cfg(not(unix))]
    request_shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The flag and the handlers are process-global; both tests mutate
    // them, and a raise() while the flag is already set would escalate
    // to a real kill. Serialize.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn cooperative_flag_round_trip() {
        let _guard = LOCK.lock().unwrap();
        reset_shutdown();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        assert!(shutdown_flag().load(Ordering::Acquire));
        reset_shutdown();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn first_signal_sets_flag_without_killing() {
        let _guard = LOCK.lock().unwrap();
        reset_shutdown();
        install_signal_handlers();
        raise_shutdown_signal();
        assert!(shutdown_requested(), "first SIGTERM only sets the flag");
        // Do NOT raise a second signal here: it would kill the test
        // runner by design. Re-arm and clear for other tests instead.
        install_signal_handlers();
        reset_shutdown();
    }
}
