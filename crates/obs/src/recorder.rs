//! The thread-safe metrics recorder: spans, counters, gauges,
//! histograms, events.

use crate::histogram::Histogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Aggregate of one span path: how often it ran and for how long.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Number of completed spans recorded under this path.
    pub count: u64,
    /// Total wall seconds across all completions.
    pub seconds: f64,
}

#[derive(Default)]
struct State {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A point-in-time copy of everything a [`Recorder`] has aggregated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(path, stat)` pairs, sorted by path.
    pub spans: Vec<(String, SpanStat)>,
    /// `(name, value)` counter pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge pairs, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl Snapshot {
    /// Total seconds recorded under `path` (0 if absent).
    pub fn span_seconds(&self, path: &str) -> f64 {
        self.spans
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, s)| s.seconds)
            .unwrap_or(0.0)
    }

    /// Value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Value of gauge `name` (`None` if absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram `name` (`None` if absent).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// A value attached to a JSONL event field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventField<'a> {
    /// Unsigned integer field.
    U64(u64),
    /// Floating-point field (non-finite values render as `null`).
    F64(f64),
    /// String field (JSON-escaped on write).
    Str(&'a str),
}

thread_local! {
    /// Per-thread span stack: `(recorder id, span name)` frames. Keyed by
    /// recorder id so a private test recorder and the global one can nest
    /// on the same thread without contaminating each other's paths.
    static SPAN_STACK: RefCell<Vec<(usize, String)>> = const { RefCell::new(Vec::new()) };
}

/// Thread-safe aggregation of hierarchical span timings, named counters
/// and gauges, plus an optional line-per-event JSONL sink.
///
/// Span nesting is tracked per thread: a span opened while another span
/// of the same recorder is open on the same thread records under the
/// joined path `outer/inner`. Worker threads start their own stacks, so
/// library code can parent its spans explicitly by using a `/` in the
/// span name (e.g. `"campaign/golden"`).
pub struct Recorder {
    id: usize,
    epoch: Instant,
    state: Mutex<State>,
    sink: Mutex<Option<Box<dyn Write + Send>>>,
    sink_attached: AtomicBool,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("id", &self.id)
            .field("sink_attached", &self.has_sink())
            .finish()
    }
}

impl Recorder {
    /// Creates an empty recorder with no sink attached.
    pub fn new() -> Recorder {
        static NEXT_ID: AtomicUsize = AtomicUsize::new(0);
        Recorder {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            state: Mutex::new(State::default()),
            sink: Mutex::new(None),
            sink_attached: AtomicBool::new(false),
        }
    }

    /// Opens a span named `name`; the returned guard records the elapsed
    /// wall time under the hierarchical path on drop (including during a
    /// panic unwind). Names may contain `/` to parent a span explicitly.
    #[must_use = "a span records when its guard drops"]
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let depth = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push((self.id, name.to_string()));
            stack.len()
        });
        SpanGuard {
            recorder: self,
            depth,
            start: Instant::now(),
        }
    }

    /// Times `f` under a span named `name`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(name);
        f()
    }

    /// Opens a span that records under exactly `path`, ignoring the
    /// thread's span stack. Worker-pool code uses this so a span gets the
    /// same path whether the work runs on the calling thread (which may
    /// have spans open) or on a spawned worker (which has none).
    #[must_use = "a span records when its guard drops"]
    pub fn span_rooted(&self, path: &str) -> RootedSpanGuard<'_> {
        RootedSpanGuard {
            recorder: self,
            path: path.to_string(),
            start: Instant::now(),
        }
    }

    /// Times `f` under a fixed-path span (see [`Recorder::span_rooted`]).
    pub fn time_rooted<R>(&self, path: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.span_rooted(path);
        f()
    }

    fn record_span(&self, path: &str, seconds: f64) {
        {
            let mut state = self.state.lock().expect("recorder state poisoned");
            let stat = state.spans.entry(path.to_string()).or_default();
            stat.count += 1;
            stat.seconds += seconds;
        }
        if self.has_sink() {
            self.event(
                "span",
                &[
                    ("name", EventField::Str(path)),
                    ("seconds", EventField::F64(seconds)),
                ],
            );
        }
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut state = self.state.lock().expect("recorder state poisoned");
        *state.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records one observation into histogram `name` (created on first
    /// use). O(1): one short-held lock plus a bucket increment; hot
    /// paths observe per work unit (not per gate), so this stays off
    /// the critical path.
    pub fn observe(&self, name: &str, value: f64) {
        let mut state = self.state.lock().expect("recorder state poisoned");
        state
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Folds a privately aggregated histogram into histogram `name`.
    /// Lets worker threads batch observations locally and merge once.
    pub fn observe_merged(&self, name: &str, histogram: &Histogram) {
        let mut state = self.state.lock().expect("recorder state poisoned");
        state
            .histograms
            .entry(name.to_string())
            .or_default()
            .merge(histogram);
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut state = self.state.lock().expect("recorder state poisoned");
        state.gauges.insert(name.to_string(), value);
    }

    /// Raises gauge `name` to `value` if it is higher than the current
    /// value (high-water-mark semantics).
    pub fn gauge_max(&self, name: &str, value: f64) {
        let mut state = self.state.lock().expect("recorder state poisoned");
        let slot = state.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if value > *slot {
            *slot = value;
        }
    }

    /// Attaches a JSONL sink; subsequent spans and [`Recorder::event`]
    /// calls append one JSON object per line to it.
    pub fn attach_sink(&self, sink: Box<dyn Write + Send>) {
        *self.sink.lock().expect("sink poisoned") = Some(sink);
        self.sink_attached.store(true, Ordering::Release);
    }

    /// Flushes and detaches the sink, if any. A failed final flush
    /// (disk full, closed pipe) degrades to a stderr warning: trace
    /// output is best-effort and must never fail the run.
    pub fn detach_sink(&self) {
        self.sink_attached.store(false, Ordering::Release);
        if let Some(mut sink) = self.sink.lock().expect("sink poisoned").take() {
            if let Err(error) = sink.flush() {
                eprintln!("fusa-obs: trace sink flush failed ({error}); trace may be truncated");
            }
        }
    }

    /// Whether a JSONL sink is currently attached. Cheap; instrumented
    /// hot paths check this before formatting event payloads.
    pub fn has_sink(&self) -> bool {
        self.sink_attached.load(Ordering::Acquire)
    }

    /// Emits one JSONL event (`{"ts":…,"kind":…,"thread":…,fields…}`) to
    /// the sink. A no-op when no sink is attached.
    pub fn event(&self, kind: &str, fields: &[(&str, EventField<'_>)]) {
        if !self.has_sink() {
            return;
        }
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"ts\":{:.6},\"kind\":{},\"thread\":{}",
            self.epoch.elapsed().as_secs_f64(),
            crate::json::escape(kind),
            crate::json::escape(&format!("{:?}", std::thread::current().id())),
        );
        for (key, value) in fields {
            let _ = write!(line, ",{}:", crate::json::escape(key));
            match value {
                EventField::U64(v) => {
                    let _ = write!(line, "{v}");
                }
                EventField::F64(v) if v.is_finite() => {
                    let _ = write!(line, "{v}");
                }
                EventField::F64(_) => line.push_str("null"),
                EventField::Str(v) => line.push_str(&crate::json::escape(v)),
            }
        }
        line.push('}');
        line.push('\n');
        let mut guard = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = guard.as_mut() {
            if let Err(error) =
                crate::iofault::write_with_faults("trace", sink.as_mut(), line.as_bytes())
            {
                // A full disk or closed pipe must not kill (or spam) a
                // multi-hour campaign: warn once, drop the sink, and flag
                // the run degraded — the trace artifact is incomplete.
                self.sink_attached.store(false, Ordering::Release);
                *guard = None;
                eprintln!("fusa-obs: trace sink write failed ({error}); trace output disabled");
                crate::iofault::mark_degraded(&format!("trace sink write failed: {error}"));
            }
        }
    }

    /// Copies the aggregated spans, counters and gauges.
    pub fn snapshot(&self) -> Snapshot {
        let state = self.state.lock().expect("recorder state poisoned");
        Snapshot {
            spans: state.spans.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            counters: state
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: state.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Clears all aggregated metrics (the sink is left as-is). The CLI
    /// calls this once at command start so manifests only cover one run.
    pub fn reset(&self) {
        *self.state.lock().expect("recorder state poisoned") = State::default();
    }
}

/// RAII guard of one open span; records on drop (panic-safe).
#[must_use = "a span records when its guard drops"]
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    /// Stack depth right after pushing this span's frame; used to unwind
    /// the stack robustly even if inner guards leaked.
    depth: usize,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let seconds = self.start.elapsed().as_secs_f64();
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack
                .iter()
                .take(self.depth)
                .filter(|(id, _)| *id == self.recorder.id)
                .map(|(_, name)| name.as_str())
                .collect::<Vec<_>>()
                .join("/");
            stack.truncate(self.depth.saturating_sub(1));
            path
        });
        self.recorder.record_span(&path, seconds);
    }
}

/// RAII guard of one fixed-path span; records under its exact path on
/// drop without consulting the per-thread span stack.
#[must_use = "a span records when its guard drops"]
pub struct RootedSpanGuard<'a> {
    recorder: &'a Recorder,
    path: String,
    start: Instant,
}

impl Drop for RootedSpanGuard<'_> {
    fn drop(&mut self) {
        let seconds = self.start.elapsed().as_secs_f64();
        self.recorder.record_span(&self.path, seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_paths() {
        let r = Recorder::new();
        {
            let _a = r.span("outer");
            {
                let _b = r.span("inner");
            }
            let _c = r.span("inner");
        }
        let _d = r.span("outer");
        drop(_d);
        let snap = r.snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner"]);
        let outer = snap.spans.iter().find(|(p, _)| p == "outer").unwrap().1;
        let inner = snap
            .spans
            .iter()
            .find(|(p, _)| p == "outer/inner")
            .unwrap()
            .1;
        assert_eq!(outer.count, 2);
        assert_eq!(inner.count, 2);
    }

    #[test]
    fn two_recorders_do_not_cross_contaminate_paths() {
        let a = Recorder::new();
        let b = Recorder::new();
        let _outer_a = a.span("a-outer");
        {
            let _outer_b = b.span("b-outer");
            let _inner_a = a.span("a-inner");
        }
        drop(_outer_a);
        let snap_a = a.snapshot();
        let snap_b = b.snapshot();
        assert!(snap_a.spans.iter().any(|(p, _)| p == "a-outer/a-inner"));
        assert!(snap_a.spans.iter().all(|(p, _)| !p.contains("b-outer")));
        assert!(snap_b.spans.iter().any(|(p, _)| p == "b-outer"));
    }

    #[test]
    fn explicit_slash_names_parent_without_a_stack() {
        let r = Recorder::new();
        r.time("campaign/golden", || {});
        let snap = r.snapshot();
        assert_eq!(snap.spans[0].0, "campaign/golden");
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Recorder::new();
        r.add("evals", 3);
        r.add("evals", 4);
        r.gauge_max("hwm", 2.0);
        r.gauge_max("hwm", 9.0);
        r.gauge_max("hwm", 5.0);
        r.gauge_set("setpoint", 1.5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("evals"), 7);
        assert_eq!(snap.gauge("hwm"), Some(9.0));
        assert_eq!(snap.gauge("setpoint"), Some(1.5));
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauge("absent"), None);
    }

    #[test]
    fn panicking_span_still_records_and_unwinds_stack() {
        let r = Recorder::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _outer = r.span("doomed");
            let _inner = r.span("inner");
            panic!("boom");
        }));
        assert!(caught.is_err());
        // Both spans recorded despite the panic…
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert!(snap.spans.iter().any(|(p, _)| p == "doomed"));
        assert!(snap.spans.iter().any(|(p, _)| p == "doomed/inner"));
        // …and the stack is clean: a new span is top-level again.
        r.time("fresh", || {});
        assert!(r.snapshot().spans.iter().any(|(p, _)| p == "fresh"));
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let r = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        r.time("work", || r.add("ticks", 1));
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("ticks"), 400);
        let work = snap.spans.iter().find(|(p, _)| p == "work").unwrap().1;
        assert_eq!(work.count, 400);
    }

    #[test]
    fn events_write_jsonl_to_sink() {
        let r = Recorder::new();
        assert!(!r.has_sink());
        // Events without a sink are dropped silently.
        r.event("ignored", &[]);
        let buffer = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        r.attach_sink(Box::new(Shared(buffer.clone())));
        assert!(r.has_sink());
        r.event(
            "epoch",
            &[
                ("epoch", EventField::U64(3)),
                ("loss", EventField::F64(0.5)),
                ("note", EventField::Str("a\"b")),
                ("bad", EventField::F64(f64::NAN)),
            ],
        );
        r.time("stage", || {});
        r.detach_sink();
        assert!(!r.has_sink());
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"epoch\""));
        assert!(lines[0].contains("\"epoch\":3"));
        assert!(lines[0].contains("\"loss\":0.5"));
        assert!(lines[0].contains("\"note\":\"a\\\"b\""));
        assert!(lines[0].contains("\"bad\":null"));
        assert!(lines[1].contains("\"kind\":\"span\""));
        assert!(lines[1].contains("\"name\":\"stage\""));
        // Every line parses as a JSON object.
        for line in lines {
            assert!(crate::Json::parse(line).is_ok(), "{line}");
        }
    }

    #[test]
    fn failing_sink_detaches_instead_of_erroring() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let r = Recorder::new();
        r.attach_sink(Box::new(Failing));
        assert!(r.has_sink());
        // The first failed write warns and detaches; recording goes on.
        r.event("epoch", &[("epoch", EventField::U64(1))]);
        assert!(!r.has_sink());
        r.add("still_counting", 1);
        r.event("epoch", &[("epoch", EventField::U64(2))]); // silently dropped
        assert_eq!(r.snapshot().counter("still_counting"), 1);
        r.detach_sink(); // no sink left: no-op, no panic
    }

    #[test]
    fn reset_clears_aggregates() {
        let r = Recorder::new();
        r.add("n", 1);
        r.time("s", || {});
        r.observe("h", 1.0);
        r.reset();
        assert_eq!(r.snapshot(), Snapshot::default());
    }

    #[test]
    fn observe_aggregates_into_named_histograms() {
        let r = Recorder::new();
        r.observe("latency", 0.5);
        r.observe("latency", 2.0);
        let mut local = crate::Histogram::new();
        local.observe(8.0);
        r.observe_merged("latency", &local);
        let snap = r.snapshot();
        let h = snap.histogram("latency").expect("histogram exists");
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 8.0);
        assert!(snap.histogram("absent").is_none());
    }

    /// Snapshot iteration order is deterministic (sorted by name) no
    /// matter the recording order, so `fusa report` output and JSONL
    /// snapshots are stable across hash-map seeding and platforms.
    #[test]
    fn snapshot_iteration_order_is_sorted() {
        let r = Recorder::new();
        for name in ["zeta", "alpha", "mid"] {
            r.add(name, 1);
            r.gauge_set(name, 1.0);
            r.observe(name, 1.0);
            r.time_rooted(name, || {});
        }
        let snap = r.snapshot();
        let sorted = ["alpha", "mid", "zeta"];
        assert_eq!(
            snap.counters
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            sorted
        );
        assert_eq!(
            snap.gauges
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            sorted
        );
        assert_eq!(
            snap.histograms
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            sorted
        );
        assert_eq!(
            snap.spans
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            sorted
        );
    }

    #[test]
    fn concurrent_observations_merge_losslessly() {
        let r = Recorder::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let r = &r;
                scope.spawn(move || {
                    for i in 0..100 {
                        r.observe("work", (t * 100 + i) as f64 + 1.0);
                    }
                });
            }
        });
        let snap = r.snapshot();
        let h = snap.histogram("work").unwrap();
        assert_eq!(h.count(), 400);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 400.0);
    }
}
