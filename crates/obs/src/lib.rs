//! `fusa-obs`: zero-dependency observability for the fault-criticality
//! stack.
//!
//! Every stage of the reproduction pipeline — netlist parsing, graph
//! generation, fault campaigns, GCN training, baselines, explanation,
//! lint — records into a thread-safe [`Recorder`]: hierarchical **span
//! timers** (wall time per named stage, nested via a per-thread span
//! stack), named **counters** and **gauges** (gate evaluations, epochs,
//! peak RSS), log-bucketed **histograms** ([`Recorder::observe`];
//! per-unit campaign latency, per-epoch train time/loss) and an
//! optional **JSONL event sink** (`--trace-out` on the CLI) receiving
//! one JSON object per line for spans, per-epoch training metrics,
//! campaign summaries and [`Progress`] heartbeats.
//!
//! At the end of a run the CLI folds a [`Recorder`] snapshot, the run
//! configuration, RNG seeds and output digests into a [`RunManifest`] —
//! written as `results/<run>/manifest.json` — so any reported number can
//! be traced to the exact configuration, timing breakdown and content
//! hashes that produced it. `fusa report <manifest.json>` renders it
//! back into a human-readable breakdown ([`render_manifest_report`]),
//! and `fusa compare` diffs two manifests into a regression verdict
//! ([`compare_manifests`]): digests gate hard on same-seed runs, stage
//! times and histogram quantiles gate within a noise tolerance.
//!
//! Instrumented library code records into the process-wide [`global`]
//! recorder (analogous to the `log` crate's global logger); tests and
//! embedders can also use private [`Recorder`] instances.
//!
//! # Example
//!
//! ```
//! use fusa_obs::Recorder;
//!
//! let recorder = Recorder::new();
//! {
//!     let _outer = recorder.span("campaign");
//!     let _inner = recorder.span("golden");
//!     recorder.add("gate_evals", 1024);
//! } // both spans record on drop, even during panics
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counter("gate_evals"), 1024);
//! assert!(snapshot.span_seconds("campaign/golden") >= 0.0);
//! assert_eq!(snapshot.spans.len(), 2);
//! ```

mod compare;
mod digest;
mod fleet;
mod histogram;
mod iofault;
mod json;
mod manifest;
mod progress;
mod prom;
mod recorder;
mod render;
mod rss;
mod shutdown;
mod status;
mod tracequery;

pub use compare::{
    append_bench_trajectory, compare_manifests, load_manifest_arg, CompareOptions, Comparison,
    DeltaRow, RowStatus,
};
pub use digest::{fnv1a64, fnv1a64_hex, Fnv64};
pub use fleet::{discover_status_files, FleetDamage, FleetOptions, FleetRow, FleetRun, FleetView};
pub use histogram::{Histogram, HistogramSummary};
pub use iofault::{
    arm_io_faults_from_env, degraded_reason, durability_degraded, mark_degraded, reset_degraded,
    set_io_fault_injection, write_file_with_faults, write_with_faults, IoFaultInjection,
    IoFaultKind,
};
pub use json::{Json, JsonError};
pub use manifest::{
    ManifestError, MergeSourceRecord, QuarantinedUnitRecord, RunManifest, ShardRecord, StageTime,
    MANIFEST_SCHEMA, MANIFEST_SCHEMA_V1, MANIFEST_SCHEMA_V2, MANIFEST_SCHEMA_V3,
};
pub use progress::{progress_stderr, set_progress_stderr, Progress, ProgressConfig};
pub use prom::{render_prometheus, PromRun};
pub use recorder::{EventField, Recorder, Snapshot, SpanGuard, SpanStat};
pub use render::{render_manifest_report, render_manifest_report_json};
pub use rss::peak_rss_bytes;
pub use shutdown::{
    install_signal_handlers, raise_shutdown_signal, request_shutdown, reset_shutdown,
    shutdown_flag, shutdown_requested,
};
pub use status::{
    set_status_target, status_target, unix_now, StatusSnapshot, StatusTarget, STATUS_SCHEMA,
};
pub use tracequery::{TraceFilter, TraceReport};

use std::sync::OnceLock;

/// The process-wide default recorder used by instrumented library code.
///
/// The CLI resets it at the start of each command, optionally attaches a
/// JSONL sink (`--trace-out`), and snapshots it into the run manifest at
/// the end.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}
