//! Live run-status snapshots: the `status.json` telemetry file.
//!
//! Every observed run (campaign, training, lint) publishes a
//! machine-readable [`StatusSnapshot`] into its run directory on the
//! [`crate::Progress`] heartbeat cadence. The file is rewritten
//! atomically — written to a sibling temp file and renamed into place —
//! so concurrent readers (`fusa top`, `fusa export`, node_exporter
//! textfile collectors) never observe a torn document: every read
//! either fails with `NotFound` (before the first beat) or parses as a
//! complete snapshot.
//!
//! The CLI arms snapshotting per run via [`set_status_target`]; library
//! code never writes `status.json` unless a target is armed, so
//! embedders and tests pay nothing by default. The schema is versioned
//! (`fusa-obs/status/v1`) and documented in DESIGN.md.

use crate::json::{fmt_f64, Json};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema identifier written into every snapshot.
pub const STATUS_SCHEMA: &str = "fusa-obs/status/v1";

/// Where (and as whom) the current run publishes status snapshots.
///
/// Armed process-wide by the CLI at the start of an observed run
/// ([`set_status_target`]) and read by every [`crate::Progress`]
/// heartbeat; the identity fields are copied into each snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusTarget {
    /// Snapshot path, conventionally `<run-dir>/status.json`.
    pub path: PathBuf,
    /// Run id (`faults-or1200_icfsm-shard1of3`).
    pub run_id: String,
    /// Design slug under analysis.
    pub design: String,
    /// `(index, total)` of a `--shard i/n` partial run.
    pub shard: Option<(u64, u64)>,
}

static TARGET: Mutex<Option<Arc<StatusTarget>>> = Mutex::new(None);

/// Arms (or disarms, with `None`) process-wide status snapshotting.
/// The CLI calls this when an observed run begins and clears it when
/// the run finishes.
pub fn set_status_target(target: Option<StatusTarget>) {
    *TARGET.lock().expect("status target poisoned") = target.map(Arc::new);
}

/// The currently armed status target, if any.
pub fn status_target() -> Option<Arc<StatusTarget>> {
    TARGET.lock().expect("status target poisoned").clone()
}

/// Serialises tests that touch the process-global status target, which
/// would otherwise race across the parallel test harness.
#[cfg(test)]
pub(crate) fn test_target_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Seconds since the Unix epoch, as written into `updated_unix`.
pub fn unix_now() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// One point-in-time view of a live (or just-finished) run phase.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusSnapshot {
    /// Run id the snapshot belongs to.
    pub run_id: String,
    /// Design slug.
    pub design: String,
    /// `(index, total)` of a sharded run.
    pub shard: Option<(u64, u64)>,
    /// Writing process id (operator convenience; staleness is judged
    /// from `updated_unix`, never from pid liveness).
    pub pid: u64,
    /// Current phase: the progress label (`campaign`, `train`, `lint`).
    pub phase: String,
    /// Unit name for `done`/`total` (`units`, `epochs`, `passes`).
    pub unit: String,
    /// Units completed so far (including checkpointed units on resume).
    pub done: u64,
    /// Units this run owns in total (shard-local for sharded runs).
    pub total: u64,
    /// Auxiliary work units completed (fault-cycles for campaigns).
    pub work: u64,
    /// Throughput: work units per second when `work > 0`, otherwise
    /// done units per second.
    pub rate: f64,
    /// Estimated seconds to completion (0 when done or unknown).
    pub eta_seconds: f64,
    /// Seconds since the phase started.
    pub elapsed_seconds: f64,
    /// Units quarantined after repeated panics so far.
    pub quarantined: u64,
    /// Worker threads serving the phase (0 = unknown/single-threaded).
    pub workers: u64,
    /// Fraction of `elapsed * workers` spent inside work items, in
    /// [0, 1]; 0 when the phase does not track worker busy time.
    pub busy_fraction: f64,
    /// Peak resident set size, when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// Wall-clock timestamp of this snapshot (seconds since epoch).
    /// `fusa top` flags a live run as stalled when this goes stale.
    pub updated_unix: f64,
    /// Whether this is the phase's final beat. A finished snapshot with
    /// `done < total` marks an interrupted or partial (sharded) phase.
    pub finished: bool,
    /// `true` once the run's durability degraded (a storage write
    /// outlived its retry budget; results continue in memory only).
    /// Absent in pre-degraded-mode snapshots, which parse as `false`.
    pub degraded: bool,
}

impl StatusSnapshot {
    /// Renders the snapshot as a JSON document value.
    pub fn to_json(&self) -> Json {
        let shard = match self.shard {
            Some((index, total)) => Json::Obj(vec![
                ("index".into(), Json::Num(index as f64)),
                ("total".into(), Json::Num(total as f64)),
            ]),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("schema".into(), Json::Str(STATUS_SCHEMA.into())),
            ("run_id".into(), Json::Str(self.run_id.clone())),
            ("design".into(), Json::Str(self.design.clone())),
            ("shard".into(), shard),
            ("pid".into(), Json::Num(self.pid as f64)),
            ("phase".into(), Json::Str(self.phase.clone())),
            ("unit".into(), Json::Str(self.unit.clone())),
            ("done".into(), Json::Num(self.done as f64)),
            ("total".into(), Json::Num(self.total as f64)),
            ("work".into(), Json::Num(self.work as f64)),
            ("rate".into(), Json::Num(self.rate)),
            ("eta_seconds".into(), Json::Num(self.eta_seconds)),
            ("elapsed_seconds".into(), Json::Num(self.elapsed_seconds)),
            ("quarantined".into(), Json::Num(self.quarantined as f64)),
            ("workers".into(), Json::Num(self.workers as f64)),
            ("busy_fraction".into(), Json::Num(self.busy_fraction)),
            (
                "peak_rss_bytes".into(),
                match self.peak_rss_bytes {
                    Some(bytes) => Json::Num(bytes as f64),
                    None => Json::Null,
                },
            ),
            ("updated_unix".into(), Json::Num(self.updated_unix)),
            ("finished".into(), Json::Bool(self.finished)),
            ("degraded".into(), Json::Bool(self.degraded)),
        ])
    }

    /// Parses a snapshot document, validating the schema marker.
    pub fn parse(text: &str) -> Result<StatusSnapshot, String> {
        let json = Json::parse(text).map_err(|e| format!("not JSON: {e}"))?;
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("not a status snapshot (no `schema` field)")?;
        if schema != STATUS_SCHEMA {
            return Err(format!(
                "unsupported status schema {schema:?} (expected {STATUS_SCHEMA:?})"
            ));
        }
        let str_field = |name: &str| {
            json.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("field `{name}` missing"))
        };
        let u64_field = |name: &str| {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("field `{name}` missing"))
        };
        let f64_field = |name: &str| {
            json.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("field `{name}` missing"))
        };
        let shard = match json.get("shard") {
            Some(Json::Obj(_)) => {
                let obj = json.get("shard").expect("just matched");
                match (
                    obj.get("index").and_then(Json::as_u64),
                    obj.get("total").and_then(Json::as_u64),
                ) {
                    (Some(index), Some(total)) => Some((index, total)),
                    _ => return Err("field `shard` needs index and total".into()),
                }
            }
            Some(Json::Null) | None => None,
            _ => return Err("field `shard` must be an object or null".into()),
        };
        Ok(StatusSnapshot {
            run_id: str_field("run_id")?,
            design: str_field("design")?,
            shard,
            pid: u64_field("pid")?,
            phase: str_field("phase")?,
            unit: str_field("unit")?,
            done: u64_field("done")?,
            total: u64_field("total")?,
            work: u64_field("work")?,
            rate: f64_field("rate")?,
            eta_seconds: f64_field("eta_seconds")?,
            elapsed_seconds: f64_field("elapsed_seconds")?,
            quarantined: u64_field("quarantined")?,
            workers: u64_field("workers")?,
            busy_fraction: f64_field("busy_fraction")?,
            peak_rss_bytes: match json.get("peak_rss_bytes") {
                Some(Json::Null) | None => None,
                Some(value) => Some(value.as_u64().ok_or("bad value for `peak_rss_bytes`")?),
            },
            updated_unix: f64_field("updated_unix")?,
            finished: match json.get("finished") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("field `finished` missing".into()),
            },
            // Lenient on purpose: snapshots written before degraded mode
            // existed carry no `degraded` field and must keep parsing.
            degraded: matches!(json.get("degraded"), Some(Json::Bool(true))),
        })
    }

    /// Publishes the snapshot at `path` atomically: the document is
    /// written to a sibling `.tmp` file and renamed over `path`, so a
    /// concurrent reader sees either the previous complete snapshot or
    /// this one — never a prefix.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        // Even under an injected short write the rename only happens on
        // success, so a faulted snapshot never tears the published file.
        crate::iofault::write_file_with_faults(
            "status",
            &tmp,
            self.to_json().render_pretty().as_bytes(),
        )?;
        std::fs::rename(&tmp, path)
    }

    /// Reads and parses the snapshot at `path`.
    pub fn read(path: &Path) -> Result<StatusSnapshot, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        StatusSnapshot::parse(&text).map_err(|e| format!("`{}`: {e}", path.display()))
    }

    /// Progress fraction in [0, 1].
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.done as f64 / self.total as f64).clamp(0.0, 1.0)
        }
    }

    /// Age of the snapshot relative to `now_unix`, clamped at zero
    /// (clock skew between writer and reader must not go negative).
    pub fn age_seconds(&self, now_unix: f64) -> f64 {
        (now_unix - self.updated_unix).max(0.0)
    }
}

/// `fmt_f64` is re-exported indirectly through `to_json`; keep the
/// helper referenced so the rendering path stays the shared one.
const _: fn(f64) -> String = fmt_f64;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatusSnapshot {
        StatusSnapshot {
            run_id: "faults-or1200_icfsm-shard1of3".into(),
            design: "or1200_icfsm".into(),
            shard: Some((1, 3)),
            pid: 1234,
            phase: "campaign".into(),
            unit: "units".into(),
            done: 37,
            total: 96,
            work: 1_000_000,
            rate: 1.21e7,
            eta_seconds: 3.2,
            elapsed_seconds: 1.6,
            quarantined: 1,
            workers: 4,
            busy_fraction: 0.87,
            peak_rss_bytes: Some(3 << 20),
            updated_unix: 1_700_000_000.25,
            finished: false,
            degraded: false,
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snapshot = sample();
        let text = snapshot.to_json().render_pretty();
        assert_eq!(StatusSnapshot::parse(&text).unwrap(), snapshot);

        let unsharded = StatusSnapshot {
            shard: None,
            peak_rss_bytes: None,
            finished: true,
            degraded: true,
            ..sample()
        };
        let text = unsharded.to_json().render();
        assert_eq!(StatusSnapshot::parse(&text).unwrap(), unsharded);
    }

    #[test]
    fn legacy_snapshot_without_degraded_field_parses() {
        let snapshot = sample();
        let text = snapshot
            .to_json()
            .render_pretty()
            .replace(",\n  \"degraded\": false", "");
        let parsed = StatusSnapshot::parse(&text).expect("pre-degraded-mode snapshots still parse");
        assert!(!parsed.degraded);
        assert_eq!(parsed, snapshot);
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(StatusSnapshot::parse("{}").is_err());
        assert!(StatusSnapshot::parse("not json").is_err());
        let wrong_schema = r#"{"schema": "fusa-obs/manifest/v4"}"#;
        let err = StatusSnapshot::parse(wrong_schema).unwrap_err();
        assert!(err.contains("unsupported status schema"), "{err}");
    }

    #[test]
    fn write_atomic_leaves_only_the_snapshot() {
        let dir = std::env::temp_dir().join(format!("fusa_status_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("status.json");
        let snapshot = sample();
        snapshot.write_atomic(&path).unwrap();
        assert_eq!(StatusSnapshot::read(&path).unwrap(), snapshot);
        // The temp file was renamed away, not left behind.
        assert!(!dir.join("status.json.tmp").exists());
        // A second write replaces the first.
        let finished = StatusSnapshot {
            done: 96,
            finished: true,
            ..sample()
        };
        finished.write_atomic(&path).unwrap();
        assert_eq!(StatusSnapshot::read(&path).unwrap(), finished);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn target_round_trips_and_clears() {
        let _guard = test_target_lock();
        set_status_target(None);
        assert!(status_target().is_none());
        set_status_target(Some(StatusTarget {
            path: PathBuf::from("/tmp/status.json"),
            run_id: "r".into(),
            design: "d".into(),
            shard: None,
        }));
        let armed = status_target().expect("armed");
        assert_eq!(armed.run_id, "r");
        set_status_target(None);
        assert!(status_target().is_none());
    }

    #[test]
    fn fraction_and_age_are_clamped() {
        let snapshot = sample();
        assert!((snapshot.fraction() - 37.0 / 96.0).abs() < 1e-12);
        assert_eq!(snapshot.age_seconds(snapshot.updated_unix - 5.0), 0.0);
        assert!((snapshot.age_seconds(snapshot.updated_unix + 2.0) - 2.0).abs() < 1e-9);
        let empty = StatusSnapshot {
            total: 0,
            ..sample()
        };
        assert_eq!(empty.fraction(), 0.0);
    }
}
