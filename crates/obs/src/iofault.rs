//! Injectable I/O faults and the process-global durability flag.
//!
//! The storage path — checkpoint appends, `status.json` snapshots, the
//! run manifest, the `--trace-out` sink — assumes nothing about the
//! filesystem being healthy. To *prove* that, every such write funnels
//! through [`write_with_faults`] / [`write_file_with_faults`], which
//! consult a process-global [`IoFaultInjection`] armed either from the
//! `FUSA_IO_FAIL_*` environment (mirroring the `FUSA_CAMPAIGN_*`
//! compute-fault hooks) or programmatically via
//! [`set_io_fault_injection`] from tests. An armed injection makes the
//! n-th (or every k-th) matching write fail with `ENOSPC`, `EIO`, or a
//! genuine short write — a prefix of the bytes lands on disk and the
//! call still reports failure, leaving exactly the torn data that
//! recovery tooling (`fusa fsck`) must cope with.
//!
//! Disarmed, the fast path is a single relaxed atomic load; the
//! `bench_campaign` `io_retry` section holds that to the noise floor.
//!
//! The same module owns the **durability-degraded** flag: when a
//! storage-side failure survives its retry budget, the writer calls
//! [`mark_degraded`] with a reason and the run *continues in memory* —
//! the campaign summary, manifest, `fusa report` and `fusa top` all
//! surface `durability: degraded`, and `--strict-durability` turns the
//! flag into exit status 1 at the end of the command.

use std::io;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The failure mode an injected fault presents to the writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoFaultKind {
    /// `write` fails outright with `ENOSPC` (disk full) — nothing lands.
    #[default]
    Enospc,
    /// `write` fails outright with `EIO` (device error) — nothing lands.
    Eio,
    /// Half the bytes land on disk, then the call reports `EIO`: a torn
    /// write, the hardest case for append-only logs.
    ShortWrite,
}

const ENOSPC: i32 = 28;
const EIO: i32 = 5;

impl IoFaultKind {
    /// Parses the `FUSA_IO_FAIL_KIND` spelling.
    pub fn parse(text: &str) -> Option<IoFaultKind> {
        match text.trim().to_ascii_lowercase().as_str() {
            "enospc" => Some(IoFaultKind::Enospc),
            "eio" => Some(IoFaultKind::Eio),
            "short" | "short-write" | "shortwrite" => Some(IoFaultKind::ShortWrite),
            _ => None,
        }
    }

    fn error(self) -> io::Error {
        match self {
            IoFaultKind::Enospc => io::Error::from_raw_os_error(ENOSPC),
            IoFaultKind::Eio | IoFaultKind::ShortWrite => io::Error::from_raw_os_error(EIO),
        }
    }
}

/// Which storage writes fail, when, and how.
///
/// Write sites are tagged with a target name — `checkpoint`, `status`,
/// `manifest`, `trace` — and only writes whose tag matches `targets`
/// (all of them, when empty) count toward the fault schedule. `fail_nth`
/// holds 1-based indices into that counted sequence; `fail_every`
/// additionally fails every k-th counted write. Timing-driven writers
/// (status heartbeats) make unfiltered counting nondeterministic, which
/// is why the target filter exists: CI pins `targets = ["checkpoint"]`
/// so "the 3rd write" means the 3rd checkpoint record on every run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IoFaultInjection {
    /// 1-based indices of counted writes that fail.
    pub fail_nth: Vec<u64>,
    /// Every k-th counted write fails (`None` disables).
    pub fail_every: Option<u64>,
    /// How scheduled writes fail.
    pub kind: IoFaultKind,
    /// Write-site tags that count; empty means every tagged site.
    pub targets: Vec<String>,
}

impl IoFaultInjection {
    /// `true` when no write can ever fail under this schedule.
    pub fn is_noop(&self) -> bool {
        self.fail_nth.is_empty() && self.fail_every.is_none()
    }

    /// Builds the schedule from `FUSA_IO_FAIL_{NTH,EVERY,KIND,TARGET}`.
    ///
    /// `NTH` and `TARGET` are comma-separated lists; unparsable entries
    /// are ignored (an injection hook must never take down a production
    /// run over a typo'd variable).
    pub fn from_env() -> IoFaultInjection {
        let list = |name: &str| -> Vec<u64> {
            std::env::var(name)
                .ok()
                .map(|raw| {
                    raw.split(',')
                        .filter_map(|s| s.trim().parse().ok())
                        .collect()
                })
                .unwrap_or_default()
        };
        let every = std::env::var("FUSA_IO_FAIL_EVERY")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .filter(|&k| k > 0);
        let kind = std::env::var("FUSA_IO_FAIL_KIND")
            .ok()
            .and_then(|raw| IoFaultKind::parse(&raw))
            .unwrap_or_default();
        let targets = std::env::var("FUSA_IO_FAIL_TARGET")
            .ok()
            .map(|raw| {
                raw.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default();
        IoFaultInjection {
            fail_nth: list("FUSA_IO_FAIL_NTH"),
            fail_every: every,
            kind,
            targets,
        }
    }

    fn matches_target(&self, target: &str) -> bool {
        self.targets.is_empty() || self.targets.iter().any(|t| t == target)
    }

    /// Whether the `op`-th (1-based) counted write fails.
    fn fails_at(&self, op: u64) -> bool {
        self.fail_nth.contains(&op) || self.fail_every.is_some_and(|k| op.is_multiple_of(k))
    }
}

/// Fast-path gate: one relaxed load decides "no injection armed".
static ARMED: AtomicBool = AtomicBool::new(false);
/// Counted (target-matching) writes since the injection was armed.
static OPS: AtomicU64 = AtomicU64::new(0);
static INJECTION: Mutex<Option<Arc<IoFaultInjection>>> = Mutex::new(None);

/// Arms (or disarms, with `None`) the process-global I/O fault
/// injection and resets the write counter. Tests and the CLI call this;
/// a no-op schedule disarms.
pub fn set_io_fault_injection(injection: Option<IoFaultInjection>) {
    let injection = injection.filter(|i| !i.is_noop());
    let mut slot = INJECTION.lock().unwrap_or_else(|e| e.into_inner());
    OPS.store(0, Ordering::Relaxed);
    ARMED.store(injection.is_some(), Ordering::Release);
    *slot = injection.map(Arc::new);
}

/// Arms injection from the `FUSA_IO_FAIL_*` environment when any of the
/// variables schedule a fault; otherwise leaves the current state alone
/// (so a test-armed schedule survives an env-less `ObsSession`).
pub fn arm_io_faults_from_env() {
    let injection = IoFaultInjection::from_env();
    if !injection.is_noop() {
        set_io_fault_injection(Some(injection));
    }
}

/// The fault scheduled for the next write at `target`, if any.
/// Consumes one slot of the counted-write sequence when armed and
/// matching; the disarmed fast path is a single relaxed load.
fn injected_io_fault(target: &str) -> Option<IoFaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let injection = INJECTION
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()?;
    if !injection.matches_target(target) {
        return None;
    }
    let op = OPS.fetch_add(1, Ordering::Relaxed) + 1;
    injection.fails_at(op).then_some(injection.kind)
}

/// Writes `bytes` through `writer`, honouring any injected fault for
/// `target`. A short-write fault lands a prefix of the bytes (flushed,
/// so it genuinely reaches the file) and still reports `EIO` — exactly
/// what a torn append looks like after a crash.
pub fn write_with_faults<W: Write + ?Sized>(
    target: &str,
    writer: &mut W,
    bytes: &[u8],
) -> io::Result<()> {
    match injected_io_fault(target) {
        None => writer.write_all(bytes),
        Some(IoFaultKind::ShortWrite) => {
            writer.write_all(&bytes[..bytes.len() / 2])?;
            let _ = writer.flush();
            Err(IoFaultKind::ShortWrite.error())
        }
        Some(kind) => Err(kind.error()),
    }
}

/// `std::fs::write` with fault injection for `target`; a short-write
/// fault leaves a truncated file behind.
pub fn write_file_with_faults(target: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    match injected_io_fault(target) {
        None => std::fs::write(path, bytes),
        Some(IoFaultKind::ShortWrite) => {
            std::fs::write(path, &bytes[..bytes.len() / 2])?;
            Err(IoFaultKind::ShortWrite.error())
        }
        Some(kind) => Err(kind.error()),
    }
}

/// First durability failure of the run, if any. `None` = fully durable.
static DEGRADED: Mutex<Option<String>> = Mutex::new(None);

/// Marks the run durability-degraded. The first reason sticks (it names
/// the original failure; later cascades are consequences). Callers keep
/// running — degraded mode means "results live in memory only", not
/// "abort" — and the CLI surfaces the flag in the summary, manifest,
/// status snapshots and exit status (`--strict-durability`).
pub fn mark_degraded(reason: &str) {
    let mut slot = DEGRADED.lock().unwrap_or_else(|e| e.into_inner());
    if slot.is_none() {
        *slot = Some(reason.to_string());
    }
}

/// `true` once any storage-side failure exhausted its retry budget.
pub fn durability_degraded() -> bool {
    DEGRADED.lock().unwrap_or_else(|e| e.into_inner()).is_some()
}

/// The first degradation reason, if the run is degraded.
pub fn degraded_reason() -> Option<String> {
    DEGRADED.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Clears the degraded flag (start of a command; tests).
pub fn reset_degraded() {
    *DEGRADED.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Injection state and the degraded flag are process-global; tests
    /// that arm them must not interleave.
    pub(crate) fn test_iofault_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_writes_pass_through() {
        let _guard = test_iofault_lock();
        set_io_fault_injection(None);
        let mut out = Vec::new();
        write_with_faults("checkpoint", &mut out, b"hello\n").unwrap();
        assert_eq!(out, b"hello\n");
    }

    #[test]
    fn nth_write_fails_with_requested_errno() {
        let _guard = test_iofault_lock();
        set_io_fault_injection(Some(IoFaultInjection {
            fail_nth: vec![2],
            kind: IoFaultKind::Enospc,
            ..IoFaultInjection::default()
        }));
        let mut out = Vec::new();
        write_with_faults("checkpoint", &mut out, b"a").unwrap();
        let err = write_with_faults("checkpoint", &mut out, b"b").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(ENOSPC));
        write_with_faults("checkpoint", &mut out, b"c").unwrap();
        assert_eq!(out, b"ac", "the failed write landed nothing");
        set_io_fault_injection(None);
    }

    #[test]
    fn short_write_lands_a_prefix_and_reports_eio() {
        let _guard = test_iofault_lock();
        set_io_fault_injection(Some(IoFaultInjection {
            fail_nth: vec![1],
            kind: IoFaultKind::ShortWrite,
            ..IoFaultInjection::default()
        }));
        let mut out = Vec::new();
        let err = write_with_faults("checkpoint", &mut out, b"0123456789").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(EIO));
        assert_eq!(out, b"01234", "exactly half the bytes are torn in");
        set_io_fault_injection(None);
    }

    #[test]
    fn target_filter_keeps_counting_deterministic() {
        let _guard = test_iofault_lock();
        set_io_fault_injection(Some(IoFaultInjection {
            fail_nth: vec![1],
            targets: vec!["checkpoint".into()],
            ..IoFaultInjection::default()
        }));
        let mut out = Vec::new();
        // Non-matching targets neither fail nor consume a slot.
        write_with_faults("status", &mut out, b"s").unwrap();
        write_with_faults("trace", &mut out, b"t").unwrap();
        assert!(write_with_faults("checkpoint", &mut out, b"c").is_err());
        set_io_fault_injection(None);
    }

    #[test]
    fn every_k_schedule_repeats() {
        let _guard = test_iofault_lock();
        set_io_fault_injection(Some(IoFaultInjection {
            fail_every: Some(2),
            ..IoFaultInjection::default()
        }));
        let mut out = Vec::new();
        let verdicts: Vec<bool> = (0..6)
            .map(|_| write_with_faults("checkpoint", &mut out, b"x").is_ok())
            .collect();
        assert_eq!(verdicts, vec![true, false, true, false, true, false]);
        set_io_fault_injection(None);
    }

    #[test]
    fn degraded_flag_keeps_first_reason() {
        let _guard = test_iofault_lock();
        reset_degraded();
        assert!(!durability_degraded());
        assert_eq!(degraded_reason(), None);
        mark_degraded("checkpoint write failed: ENOSPC");
        mark_degraded("manifest write failed: EIO");
        assert!(durability_degraded());
        assert_eq!(
            degraded_reason().as_deref(),
            Some("checkpoint write failed: ENOSPC"),
            "the original failure names the root cause"
        );
        reset_degraded();
        assert!(!durability_degraded());
    }

    #[test]
    fn env_parse_mirrors_campaign_hooks() {
        // Pure parsing only — no env mutation, the harness is parallel.
        assert!(IoFaultInjection::default().is_noop());
        assert_eq!(IoFaultKind::parse("enospc"), Some(IoFaultKind::Enospc));
        assert_eq!(IoFaultKind::parse("EIO"), Some(IoFaultKind::Eio));
        assert_eq!(IoFaultKind::parse("short"), Some(IoFaultKind::ShortWrite));
        assert_eq!(IoFaultKind::parse("bogus"), None);
        let injection = IoFaultInjection {
            fail_nth: vec![3, 7],
            fail_every: Some(5),
            ..IoFaultInjection::default()
        };
        assert!(injection.fails_at(3) && injection.fails_at(7));
        assert!(injection.fails_at(5) && injection.fails_at(10));
        assert!(!injection.fails_at(4));
    }
}
