//! Peak resident-set-size (allocation high-water mark) probing.

/// The process's peak resident set size in bytes, or `None` when the
/// platform does not expose it.
///
/// On Linux this reads `VmHWM` from `/proc/self/status` — the kernel's
/// high-water mark of physical memory use, which manifests record as the
/// run's allocation ceiling. Other platforms report absence rather than
/// guess; `fusa report` and `fusa compare` render "n/a" and skip the RSS
/// comparison respectively.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|status| parse_vm_hwm(&status))
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        // Fixture block mirroring /proc/self/status framing.
        let status = "Name:\tfusa\nVmPeak:\t  100 kB\nVmHWM:\t  2048 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tfusa\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_reports_nonzero_peak() {
        // Touch some memory so the HWM is definitely nonzero.
        let v = vec![1u8; 1 << 20];
        assert!(peak_rss_bytes().unwrap_or(0) > 0);
        drop(v);
    }
}
