//! Property tests for the log-bucketed histogram: on arbitrary
//! observation streams the quantile estimates must bracket the exact
//! sorted-reference quantiles within one bucket's relative error, and
//! merging any partition of the stream must equal observing it whole.

use fusa_obs::Histogram;
use proptest::prelude::*;

/// One bucket spans a factor of `2^(1/8)`; estimates may exceed the
/// exact quantile by at most this ratio (see `histogram.rs`).
const BUCKET_FACTOR: f64 = 1.0906;

/// Exact quantile of `values` by sorting: smallest element with at
/// least `ceil(q * n)` values at or below it — the same rank the
/// histogram targets.
fn exact_quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantile estimates are bounded below by the exact quantile and
    /// above by one bucket's relative error (clamped to the true max).
    #[test]
    fn quantiles_bracket_exact_reference(
        values in proptest::collection::vec(1e-6f64..1e6, 1..400),
        q in 0.01f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let exact = exact_quantile(&values, q);
        let estimate = h.quantile(q);
        prop_assert!(
            estimate >= exact,
            "estimate {estimate} below exact {exact} at q={q}"
        );
        prop_assert!(
            estimate <= exact * BUCKET_FACTOR,
            "estimate {estimate} above bound {} at q={q}",
            exact * BUCKET_FACTOR
        );
    }

    /// Observing a stream whole and observing any 3-way partition then
    /// merging agree on count, min, max and all quantiles.
    #[test]
    fn any_partition_merges_to_the_whole(
        values in proptest::collection::vec(1e-9f64..1e9, 1..300),
        splits in proptest::collection::vec(0usize..3, 1..300),
    ) {
        let mut whole = Histogram::new();
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &v) in values.iter().enumerate() {
            whole.observe(v);
            parts[splits[i % splits.len()]].observe(v);
        }
        let mut merged = Histogram::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        for q in [0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    /// Counts and sums are exact regardless of bucketing.
    #[test]
    fn count_and_sum_are_exact(values in proptest::collection::vec(0.0f64..1e3, 0..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let expected: f64 = values.iter().sum();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert!((h.sum() - expected).abs() <= expected.abs() * 1e-12 + 1e-12);
    }
}
