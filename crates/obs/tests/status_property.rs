//! Torn-read property test for `status.json` publication.
//!
//! `StatusSnapshot::write_atomic` promises that concurrent readers
//! never observe a half-written document: every successful read parses
//! as a complete schema-valid snapshot from the writer's history. This
//! test hammers one path with a writer rewriting the snapshot as fast
//! as it can while several readers poll it, and asserts the invariants
//! on every read that finds the file.

use fusa_obs::{StatusSnapshot, STATUS_SCHEMA};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn snapshot(iteration: u64) -> StatusSnapshot {
    StatusSnapshot {
        run_id: "faults-torn-shard0of2".into(),
        design: "torn".into(),
        shard: Some((0, 2)),
        pid: std::process::id() as u64,
        phase: "campaign".into(),
        unit: "units".into(),
        done: iteration,
        total: 100_000,
        // Couples `work` to `done` so readers can check cross-field
        // consistency: a torn read mixing two snapshots would break it.
        work: iteration * 1_000,
        rate: iteration as f64,
        eta_seconds: 1.5,
        elapsed_seconds: 0.25,
        quarantined: 1,
        workers: 4,
        busy_fraction: 0.75,
        peak_rss_bytes: Some(1 << 20),
        updated_unix: 1_700_000_000.0 + iteration as f64,
        finished: false,
        degraded: false,
    }
}

#[test]
fn concurrent_reads_are_never_torn() {
    const WRITES: u64 = 500;
    const READERS: usize = 3;

    let dir = std::env::temp_dir().join(format!("fusa_status_torn_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("status.json");

    let stop = AtomicBool::new(false);
    let successful_reads = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let path = &path;
        let stop = &stop;
        let successful_reads = &successful_reads;
        scope.spawn(move || {
            for iteration in 0..WRITES {
                snapshot(iteration)
                    .write_atomic(path)
                    .expect("atomic write");
            }
            stop.store(true, Ordering::Release);
        });
        for _ in 0..READERS {
            scope.spawn(move || {
                let mut last_done = 0u64;
                loop {
                    let finished = stop.load(Ordering::Acquire);
                    match std::fs::read_to_string(path) {
                        Ok(text) => {
                            // THE invariant: whatever the reader got
                            // parses as one complete snapshot...
                            let snapshot = StatusSnapshot::parse(&text)
                                .expect("read snapshot parses completely");
                            // ...whose fields are mutually consistent
                            // (no mixing of two generations) ...
                            assert_eq!(snapshot.work, snapshot.done * 1_000);
                            assert_eq!(snapshot.run_id, "faults-torn-shard0of2");
                            assert_eq!(snapshot.total, 100_000);
                            // ...and writes are observed in order.
                            assert!(
                                snapshot.done >= last_done,
                                "monotone: {} then {}",
                                last_done,
                                snapshot.done
                            );
                            last_done = snapshot.done;
                            successful_reads.fetch_add(1, Ordering::Relaxed);
                        }
                        // NotFound before the first write is the only
                        // acceptable failure; after that the file is
                        // always present (rename never unlinks it).
                        Err(e) => {
                            assert_eq!(
                                e.kind(),
                                std::io::ErrorKind::NotFound,
                                "only NotFound reads allowed: {e}"
                            );
                            assert_eq!(last_done, 0, "file vanished after a read");
                        }
                    }
                    if finished {
                        break;
                    }
                }
            });
        }
    });

    // The schema marker is what guards foreign readers.
    let final_text = std::fs::read_to_string(&path).unwrap();
    assert!(final_text.contains(STATUS_SCHEMA));
    let final_snapshot = StatusSnapshot::parse(&final_text).unwrap();
    assert_eq!(final_snapshot.done, WRITES - 1);
    assert!(
        successful_reads.load(Ordering::Relaxed) >= READERS as u64,
        "each reader read at least once"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
