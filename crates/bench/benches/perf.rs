//! Criterion performance benches covering every substrate:
//! netlist construction, levelization, scalar and bit-parallel
//! simulation, fault campaigns, graph normalization, GCN training and
//! inference, explainer iterations, and the static-analysis lint
//! passes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fusa_faultsim::{CampaignConfig, FaultCampaign, FaultList};
use fusa_gcn::pipeline::{FusaPipeline, PipelineConfig};
use fusa_gcn::{train_classifier, ExplainerConfig, GcnConfig, TrainConfig};
use fusa_graph::{normalized_adjacency, CircuitGraph, FeatureMatrix};
use fusa_logicsim::{
    BitSim, SignalStats, SignalStatsConfig, Simulator, WorkloadConfig, WorkloadSuite,
};
use fusa_netlist::designs::{or1200_icfsm, sdram_ctrl};
use fusa_netlist::Levelizer;
use std::hint::black_box;

fn bench_netlist(c: &mut Criterion) {
    c.bench_function("netlist/build_sdram_ctrl", |b| {
        b.iter(|| black_box(sdram_ctrl()))
    });
    let netlist = sdram_ctrl();
    c.bench_function("netlist/levelize_sdram_ctrl", |b| {
        b.iter(|| black_box(Levelizer::levelize(&netlist)))
    });
    let text = fusa_netlist::writer::write_verilog(&netlist);
    c.bench_function("netlist/parse_verilog_sdram_ctrl", |b| {
        b.iter(|| black_box(fusa_netlist::parser::parse_verilog(&text).expect("parses")))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let netlist = sdram_ctrl();
    let pi = netlist.primary_inputs().len();
    let vector: Vec<bool> = (0..pi).map(|i| i % 3 == 0).collect();

    c.bench_function("sim/scalar_cycle_sdram", |b| {
        let mut sim = Simulator::new(&netlist);
        let logic: Vec<fusa_logicsim::Logic> = vector
            .iter()
            .map(|&v| fusa_logicsim::Logic::from_bool(v))
            .collect();
        b.iter(|| black_box(sim.step(&logic)))
    });

    c.bench_function("sim/bitparallel_cycle_sdram_64lanes", |b| {
        let mut sim = BitSim::new(&netlist);
        b.iter(|| black_box(sim.step_broadcast(&vector)))
    });

    c.bench_function("sim/signal_stats_icfsm_64cycles", |b| {
        let small = or1200_icfsm();
        let config = SignalStatsConfig {
            cycles: 64,
            warmup: 8,
            ..Default::default()
        };
        b.iter(|| black_box(SignalStats::estimate(&small, &config)))
    });
}

fn bench_fault_campaign(c: &mut Criterion) {
    let netlist = or1200_icfsm();
    let faults = FaultList::all_gate_outputs(&netlist);
    let workloads = WorkloadSuite::generate(
        &netlist,
        &WorkloadConfig {
            num_workloads: 2,
            vectors_per_workload: 64,
            ..Default::default()
        },
    );
    c.bench_function("fault/campaign_icfsm_2x64", |b| {
        let campaign = FaultCampaign::new(CampaignConfig {
            threads: 1,
            classify_latent: true,
            ..Default::default()
        });
        b.iter(|| black_box(campaign.run(&netlist, &faults, &workloads)))
    });
}

fn bench_graph(c: &mut Criterion) {
    let netlist = sdram_ctrl();
    c.bench_function("graph/from_netlist_sdram", |b| {
        b.iter(|| black_box(CircuitGraph::from_netlist(&netlist)))
    });
    let graph = CircuitGraph::from_netlist(&netlist);
    c.bench_function("graph/normalize_sdram", |b| {
        b.iter(|| black_box(normalized_adjacency(&graph)))
    });
    let stats = SignalStats::estimate(
        &netlist,
        &SignalStatsConfig {
            cycles: 64,
            warmup: 8,
            ..Default::default()
        },
    );
    c.bench_function("graph/extract_features_sdram", |b| {
        b.iter(|| black_box(FeatureMatrix::extract(&netlist, &stats)))
    });
}

fn gcn_inputs() -> (fusa_neuro::CsrMatrix, fusa_neuro::Matrix, Vec<bool>) {
    let netlist = or1200_icfsm();
    let graph = CircuitGraph::from_netlist(&netlist);
    let adj = normalized_adjacency(&graph);
    let stats = SignalStats::estimate(
        &netlist,
        &SignalStatsConfig {
            cycles: 64,
            warmup: 8,
            ..Default::default()
        },
    );
    let features = FeatureMatrix::extract(&netlist, &stats).into_matrix();
    let labels: Vec<bool> = (0..graph.node_count())
        .map(|i| graph.degree(i) >= 4)
        .collect();
    (adj, features, labels)
}

fn bench_gcn(c: &mut Criterion) {
    let (adj, features, labels) = gcn_inputs();
    let split = fusa_neuro::split::Split::stratified(&labels, 0.8, 1);

    c.bench_function("gcn/train_10_epochs_icfsm", |b| {
        b.iter_batched(
            || (),
            |_| {
                black_box(train_classifier(
                    &adj,
                    &features,
                    &labels,
                    &split,
                    GcnConfig::default(),
                    &TrainConfig {
                        epochs: 10,
                        ..Default::default()
                    },
                ))
            },
            BatchSize::SmallInput,
        )
    });

    let (model, _, _) = train_classifier(
        &adj,
        &features,
        &labels,
        &split,
        GcnConfig::default(),
        &TrainConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    c.bench_function("gcn/inference_full_graph_icfsm", |b| {
        b.iter(|| black_box(model.predict_critical_probability(&adj, &features)))
    });

    let graph = CircuitGraph::from_netlist(&or1200_icfsm());
    c.bench_function("gcn/explain_one_node_20iter", |b| {
        let explainer = fusa_gcn::Explainer::new(
            &model,
            &graph,
            &features,
            ExplainerConfig {
                iterations: 20,
                ..Default::default()
            },
        );
        b.iter(|| black_box(explainer.explain(3)))
    });
}

fn bench_lint(c: &mut Criterion) {
    let netlist = sdram_ctrl();
    c.bench_function("lint/all_passes_sdram_ctrl", |b| {
        b.iter(|| black_box(fusa_lint::lint_netlist(&netlist)))
    });
    c.bench_function("lint/untestable_sites_sdram_ctrl", |b| {
        b.iter(|| black_box(fusa_lint::untestable_stuck_at_sites(&netlist)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("end_to_end_icfsm_fast", |b| {
        let netlist = or1200_icfsm();
        let pipeline = FusaPipeline::new(PipelineConfig::fast());
        b.iter(|| black_box(pipeline.run(&netlist).expect("runs")))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_netlist, bench_simulation, bench_fault_campaign, bench_graph, bench_gcn, bench_lint, bench_pipeline
}
criterion_main!(benches);
