//! Criterion bench for the fault-injection campaign hot path.
//!
//! Measures the accelerated campaign (cone restriction + early exit,
//! the default) against the exhaustive full-netlist reference on the
//! built-in designs. Both paths are bit-identical by construction (see
//! `crates/faultsim/tests/cone_equivalence.rs`), so the delta here is
//! pure throughput. `bench_campaign` (the companion `--bin`) turns the
//! same measurement into `BENCH_campaign.json`.
//!
//! The `accelerated_*` variants double as the progress-overhead guard:
//! they run with no trace sink and `--progress` off, the default in
//! which `fusa_obs::Progress::start` returns a disabled handle (no
//! heartbeat thread, every hot-loop hook a branch on `None`). The
//! `traced_*` variants attach a null sink so the heartbeat thread and
//! per-event serialization are included; comparing the two bounds the
//! telemetry cost when tracing is enabled. Cross-run rot on the
//! default path is caught by `fusa compare --append-bench` trajectories
//! and the `./ci` compare gate.

use criterion::{criterion_group, criterion_main, Criterion};
use fusa_faultsim::{CampaignConfig, FaultCampaign, FaultList};
use fusa_logicsim::{WorkloadConfig, WorkloadSuite};
use fusa_netlist::designs::{or1200_icfsm, synth_10k, uart_ctrl};
use fusa_netlist::{GateId, Netlist};
use std::hint::black_box;

fn workloads_for(netlist: &Netlist) -> WorkloadSuite {
    WorkloadSuite::generate(
        netlist,
        &WorkloadConfig {
            num_workloads: 2,
            vectors_per_workload: 64,
            ..Default::default()
        },
    )
}

fn accelerated() -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        ..Default::default()
    }
}

fn reference() -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        restrict_to_cone: false,
        early_exit: false,
        lane_words: 0,
        ..Default::default()
    }
}

/// Cone + early exit at a given lane width (`0` = legacy scalar): the
/// SoA-vs-legacy axis, everything else held at the accelerated default.
fn at_width(lane_words: usize) -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        lane_words,
        ..Default::default()
    }
}

/// A deterministic fault sample built from contiguous gate blocks
/// spread across the design. Contiguity matters: consecutive 64-fault
/// chunks then share fanout cones, as they do in a full-list campaign.
/// Strided single-gate sampling would push every chunk-group's union
/// cone toward the whole netlist and hide the wide kernel's sharing.
fn sampled_faults(netlist: &Netlist, count: usize) -> FaultList {
    const BLOCK: usize = 256;
    let total = netlist.gate_count();
    let count = count.min(total);
    let blocks = count.div_ceil(BLOCK).max(1);
    let mut gates: Vec<GateId> = Vec::with_capacity(count);
    for b in 0..blocks {
        let start = (total / (2 * blocks) + b * total / blocks).min(total.saturating_sub(BLOCK));
        for i in start..(start + BLOCK).min(total) {
            if gates.len() < count {
                gates.push(GateId(i as u32));
            }
        }
    }
    FaultList::for_gates(netlist, &gates)
}

/// Lane-width sweep of the structure-of-arrays kernel against the
/// legacy scalar path, on one builtin and one ~10k-gate synthesized
/// design (sampled faults). Bit-identity across these configurations is
/// enforced by `crates/faultsim/tests/lane_equivalence.rs`.
fn bench_lane_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("lane_widths");
    group.sample_size(10);
    let builtin = or1200_icfsm();
    let synthetic = synth_10k(1);
    let cases = [
        (FaultList::all_gate_outputs(&builtin), &builtin),
        (sampled_faults(&synthetic, 128), &synthetic),
    ];
    for (faults, netlist) in &cases {
        let workloads = workloads_for(netlist);
        for (label, lane_words) in [("legacy", 0usize), ("w1", 1), ("w4", 4), ("w8", 8)] {
            group.bench_function(&format!("{label}_{}", netlist.name()), |b| {
                let campaign = FaultCampaign::new(at_width(lane_words));
                b.iter(|| black_box(campaign.run(netlist, faults, &workloads)))
            });
        }
    }
    group.finish();
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    for netlist in [or1200_icfsm(), uart_ctrl()] {
        let faults = FaultList::all_gate_outputs(&netlist);
        let workloads = workloads_for(&netlist);
        group.bench_function(&format!("accelerated_{}", netlist.name()), |b| {
            let campaign = FaultCampaign::new(accelerated());
            b.iter(|| black_box(campaign.run(&netlist, &faults, &workloads)))
        });
        group.bench_function(&format!("full_netlist_{}", netlist.name()), |b| {
            let campaign = FaultCampaign::new(reference());
            b.iter(|| black_box(campaign.run(&netlist, &faults, &workloads)))
        });
        group.bench_function(&format!("traced_{}", netlist.name()), |b| {
            let campaign = FaultCampaign::new(accelerated());
            fusa_obs::global().attach_sink(Box::new(std::io::sink()));
            b.iter(|| black_box(campaign.run(&netlist, &faults, &workloads)));
            fusa_obs::global().detach_sink();
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_campaign_throughput, bench_lane_widths
}
criterion_main!(benches);
