//! Criterion bench for the fault-injection campaign hot path.
//!
//! Measures the accelerated campaign (cone restriction + early exit,
//! the default) against the exhaustive full-netlist reference on the
//! built-in designs. Both paths are bit-identical by construction (see
//! `crates/faultsim/tests/cone_equivalence.rs`), so the delta here is
//! pure throughput. `bench_campaign` (the companion `--bin`) turns the
//! same measurement into `BENCH_campaign.json`.
//!
//! The `accelerated_*` variants double as the progress-overhead guard:
//! they run with no trace sink and `--progress` off, the default in
//! which `fusa_obs::Progress::start` returns a disabled handle (no
//! heartbeat thread, every hot-loop hook a branch on `None`). The
//! `traced_*` variants attach a null sink so the heartbeat thread and
//! per-event serialization are included; comparing the two bounds the
//! telemetry cost when tracing is enabled. Cross-run rot on the
//! default path is caught by `fusa compare --append-bench` trajectories
//! and the `./ci` compare gate.

use criterion::{criterion_group, criterion_main, Criterion};
use fusa_faultsim::{CampaignConfig, FaultCampaign, FaultList};
use fusa_logicsim::{WorkloadConfig, WorkloadSuite};
use fusa_netlist::designs::{or1200_icfsm, uart_ctrl};
use fusa_netlist::Netlist;
use std::hint::black_box;

fn workloads_for(netlist: &Netlist) -> WorkloadSuite {
    WorkloadSuite::generate(
        netlist,
        &WorkloadConfig {
            num_workloads: 2,
            vectors_per_workload: 64,
            ..Default::default()
        },
    )
}

fn accelerated() -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        ..Default::default()
    }
}

fn reference() -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        restrict_to_cone: false,
        early_exit: false,
        ..Default::default()
    }
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    for netlist in [or1200_icfsm(), uart_ctrl()] {
        let faults = FaultList::all_gate_outputs(&netlist);
        let workloads = workloads_for(&netlist);
        group.bench_function(&format!("accelerated_{}", netlist.name()), |b| {
            let campaign = FaultCampaign::new(accelerated());
            b.iter(|| black_box(campaign.run(&netlist, &faults, &workloads)))
        });
        group.bench_function(&format!("full_netlist_{}", netlist.name()), |b| {
            let campaign = FaultCampaign::new(reference());
            b.iter(|| black_box(campaign.run(&netlist, &faults, &workloads)))
        });
        group.bench_function(&format!("traced_{}", netlist.name()), |b| {
            let campaign = FaultCampaign::new(accelerated());
            fusa_obs::global().attach_sink(Box::new(std::io::sink()));
            b.iter(|| black_box(campaign.run(&netlist, &faults, &workloads)));
            fusa_obs::global().detach_sink();
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_campaign_throughput
}
criterion_main!(benches);
