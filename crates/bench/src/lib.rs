//! Shared harness for the table/figure regeneration binaries.
//!
//! Every `--bin` in this crate reproduces one artifact of the paper's
//! evaluation (see DESIGN.md §4 for the index). This library holds the
//! common plumbing: the standard experiment configuration, a per-design
//! runner ([`run_design`]) that trains the GCN and all five baselines on
//! identical splits, and small text-rendering helpers (ASCII bar charts,
//! aligned tables, CSV dumps under `results/`). Key types: [`DesignRun`]
//! (one design's GCN analysis plus [`BaselineResult`]s) and the
//! [`standard_config`] / [`smoke_config`] presets.
//!
//! # Example
//!
//! ```
//! // The smoke preset trades fidelity for speed; figure binaries use
//! // standard_config() instead.
//! let fast = fusa_bench::smoke_config();
//! let full = fusa_bench::standard_config();
//! assert!(fast.workloads.num_workloads < full.workloads.num_workloads);
//! assert_eq!(fusa_bench::bar(0.5).len(), fusa_bench::bar(1.0).len());
//! ```

use fusa_baselines::all_baselines;
use fusa_gcn::pipeline::{FusaAnalysis, FusaPipeline, PipelineConfig};
use fusa_netlist::{designs, Netlist};
use fusa_neuro::metrics::{Confusion, RocCurve};
use std::path::Path;

/// Result of one baseline classifier on one design.
pub struct BaselineResult {
    /// Display name (`MLP`, `LoR`, …).
    pub name: &'static str,
    /// Validation accuracy.
    pub accuracy: f64,
    /// Validation AUC.
    pub auc: f64,
    /// Validation ROC curve.
    pub roc: RocCurve,
}

/// Everything measured for one design: the GCN pipeline output plus all
/// baseline results on the same features and split.
pub struct DesignRun {
    /// The pipeline's analysis (GCN training, evaluation, dataset, …).
    pub analysis: FusaAnalysis,
    /// Baseline results, in [`fusa_baselines::all_baselines`] order.
    pub baselines: Vec<BaselineResult>,
}

impl DesignRun {
    /// GCN validation accuracy.
    pub fn gcn_accuracy(&self) -> f64 {
        self.analysis.evaluation.accuracy
    }

    /// GCN validation AUC.
    pub fn gcn_auc(&self) -> f64 {
        self.analysis.evaluation.auc
    }

    /// Best baseline accuracy.
    pub fn best_baseline_accuracy(&self) -> f64 {
        self.baselines
            .iter()
            .map(|b| b.accuracy)
            .fold(0.0, f64::max)
    }
}

/// The full-scale experiment configuration used by every figure/table
/// binary (24 workloads × 256 vectors, threshold 0.5, 80/20 split,
/// 200 epochs — §4.1 of the paper).
pub fn standard_config() -> PipelineConfig {
    PipelineConfig::default()
}

/// A cheaper configuration for smoke-testing the binaries.
pub fn smoke_config() -> PipelineConfig {
    PipelineConfig::fast()
}

/// The three benchmark designs in paper order.
pub fn paper_designs() -> Vec<Netlist> {
    designs::paper_designs()
}

/// Runs the GCN pipeline and all baselines on one design.
///
/// Baselines are trained on the same standardized features and the same
/// stratified split the GCN used, and evaluated on the same validation
/// nodes.
///
/// # Panics
///
/// Panics if the pipeline reports degenerate labels (the standard
/// workloads on the three benchmark designs do not).
pub fn run_design(netlist: &Netlist, config: &PipelineConfig) -> DesignRun {
    let mut analysis = FusaPipeline::new(config.clone())
        .run(netlist)
        .unwrap_or_else(|e| panic!("pipeline failed on {}: {e}", netlist.name()));
    select_best_gcn(&mut analysis, config);
    let baselines = run_baselines(&analysis);
    DesignRun {
        analysis,
        baselines,
    }
}

/// Per-design hyper-parameter selection (§3.3.2): retrains the GCN over a
/// small candidate grid (hidden stacks × dropout × init seed) and keeps
/// the model with the best validation accuracy. The paper grid-searches
/// layers, layer types and feature dimensions the same way.
pub fn select_best_gcn(analysis: &mut FusaAnalysis, config: &PipelineConfig) {
    use fusa_gcn::{train_classifier, GcnConfig};
    let candidates: Vec<GcnConfig> = [
        (vec![16, 32, 64], 0.3, 0x6C4u64),
        (vec![16, 32, 64], 0.1, 0x1A7),
        (vec![32, 64], 0.3, 0x2B8),
        (vec![16, 32], 0.5, 0x3C9),
    ]
    .into_iter()
    .map(|(hidden, dropout, seed)| GcnConfig {
        in_features: analysis.features.cols(),
        hidden,
        dropout,
        seed,
    })
    .collect();

    for candidate in candidates {
        if candidate == *analysis.classifier.config() {
            continue;
        }
        let (model, history, evaluation) = train_classifier(
            &analysis.adjacency,
            &analysis.features,
            analysis.dataset.labels(),
            &analysis.split,
            candidate,
            &config.train,
        );
        if evaluation.accuracy > analysis.evaluation.accuracy {
            analysis.classifier = model;
            analysis.history = history;
            analysis.evaluation = evaluation;
        }
    }
}

/// Trains and evaluates all five baselines against an existing analysis.
pub fn run_baselines(analysis: &FusaAnalysis) -> Vec<BaselineResult> {
    let labels = analysis.labels();
    let split = &analysis.split;
    all_baselines(0xBA5E)
        .into_iter()
        .map(|mut model| {
            model.fit(&analysis.features, labels, &split.train);
            let probabilities = model.predict_proba(&analysis.features);
            let val_scores: Vec<f64> = split.validation.iter().map(|&i| probabilities[i]).collect();
            let val_predicted: Vec<bool> = val_scores.iter().map(|&p| p >= 0.5).collect();
            let val_actual: Vec<bool> = split.validation.iter().map(|&i| labels[i]).collect();
            let confusion = Confusion::from_predictions(&val_predicted, &val_actual);
            let roc = RocCurve::compute(&val_scores, &val_actual);
            BaselineResult {
                name: model.name(),
                accuracy: confusion.accuracy(),
                auc: roc.auc(),
                roc,
            }
        })
        .collect()
}

/// Renders a horizontal ASCII bar of `value` in `[0, 1]`, 40 columns
/// wide.
pub fn bar(value: f64) -> String {
    let width = 40usize;
    let filled = ((value.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "░".repeat(width - filled))
}

/// Writes `contents` under `results/`, creating the directory if needed.
/// Prints the path written. Errors are reported, not fatal (benches may
/// run in read-only sandboxes).
pub fn save_results(filename: &str, contents: &str) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(filename);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("  [saved {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Parses a `--smoke` flag from the binary's arguments (used by CI and
/// the integration tests to keep runtimes small).
pub fn config_from_args() -> PipelineConfig {
    if std::env::args().any(|a| a == "--smoke") {
        smoke_config()
    } else {
        standard_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_models() {
        let netlist = fusa_netlist::designs::or1200_icfsm();
        let run = run_design(&netlist, &smoke_config());
        assert_eq!(run.baselines.len(), 5);
        assert!(run.gcn_accuracy() > 0.5);
        for baseline in &run.baselines {
            assert!(
                (0.0..=1.0).contains(&baseline.accuracy),
                "{}",
                baseline.name
            );
            assert!((0.0..=1.0).contains(&baseline.auc), "{}", baseline.name);
        }
    }

    #[test]
    fn bar_renders_fixed_width() {
        assert_eq!(bar(0.0).chars().count(), 40);
        assert_eq!(bar(1.0).chars().count(), 40);
        assert_eq!(bar(0.5).chars().filter(|&c| c == '█').count(), 20);
    }
}
