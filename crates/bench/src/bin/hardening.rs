//! Extension: close the FuSa loop. The paper's framework exists so that
//! scarce hardening budget goes to the most critical nodes (§1). This
//! binary does exactly that: train the GCN, TMR-protect the top-K nodes
//! it predicts most critical, re-run the fault campaign on the hardened
//! design, and report how much overall criticality dropped — against a
//! random-selection baseline with the same area overhead.
//!
//! Usage: `cargo run --release -p fusa-bench --bin hardening [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, run_design, save_results};
use fusa_faultsim::{FaultCampaign, FaultList};
use fusa_logicsim::WorkloadSuite;
use fusa_netlist::harden::{original_gate_name, tmr_overhead, tmr_protect};
use fusa_netlist::{GateId, Netlist};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    let budget_fraction = 0.10; // protect 10% of gates
    println!(
        "Selective TMR hardening with a {:.0}% gate budget: GCN-guided vs random.\n",
        budget_fraction * 100.0
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "design", "baseline", "gcn-guided", "random", "gcn gain", "area x"
    );

    let mut csv = String::from(
        "design,baseline_mean_criticality,gcn_hardened,random_hardened,area_overhead\n",
    );
    for netlist in paper_designs() {
        let run = run_design(&netlist, &config);
        let analysis = &run.analysis;
        let budget = ((netlist.gate_count() as f64) * budget_fraction) as usize;

        // GCN-guided selection: top-K by predicted critical probability.
        let mut ranked: Vec<(usize, f64)> = analysis
            .evaluation
            .critical_probability
            .iter()
            .copied()
            .enumerate()
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
        let gcn_selection: Vec<GateId> = ranked
            .iter()
            .take(budget)
            .map(|&(i, _)| GateId(i as u32))
            .collect();

        // Random selection with the same budget.
        let mut rng = ChaCha8Rng::seed_from_u64(0x44D);
        let mut all: Vec<usize> = (0..netlist.gate_count()).collect();
        all.shuffle(&mut rng);
        let random_selection: Vec<GateId> = all
            .into_iter()
            .take(budget)
            .map(|i| GateId(i as u32))
            .collect();

        let baseline = gate_defect_vulnerability(&netlist, &config, None);
        let gcn_hardened = gate_defect_vulnerability(&netlist, &config, Some(&gcn_selection));
        let random_hardened = gate_defect_vulnerability(&netlist, &config, Some(&random_selection));
        let overhead = tmr_overhead(netlist.gate_count(), budget);

        println!(
            "{:<14} {:>10.3} {:>12.3} {:>12.3} {:>11.1}% {:>8.2}",
            netlist.name(),
            baseline,
            gcn_hardened,
            random_hardened,
            (baseline - gcn_hardened) / baseline.max(1e-9) * 100.0,
            overhead
        );
        let _ = writeln!(
            csv,
            "{},{:.4},{:.4},{:.4},{:.3}",
            netlist.name(),
            baseline,
            gcn_hardened,
            random_hardened,
            overhead
        );
    }
    save_results("hardening.csv", &csv);
    println!("\n(gate-defect vulnerability excl. rad-hard voter cells; lower is safer)");
}

/// Gate-defect vulnerability: the mean Algorithm-1 criticality score
/// over the defect-prone gates of the (possibly hardened) design — the
/// probability that a uniformly placed gate defect causes functional
/// errors in a random workload.
///
/// Voter cells (`*_vote`, `*_vote_or`) are excluded from the defect
/// universe — the standard TMR assumption of hardened (rad-hard) voter
/// cells; a voter-output stuck-at is otherwise an irreducible single
/// point of failure and no *selection* strategy could ever differ.
/// Logic defects in protected gates land in one of the three masked
/// copies, which is exactly what TMR buys.
fn gate_defect_vulnerability(
    netlist: &Netlist,
    config: &fusa_gcn::pipeline::PipelineConfig,
    selection: Option<&[GateId]>,
) -> f64 {
    let design = match selection {
        None => netlist.clone(),
        Some(gates) => tmr_protect(netlist, gates).expect("hardening succeeds"),
    };
    let faults = FaultList::all_gate_outputs(&design);
    let workloads = WorkloadSuite::generate(&design, &config.workloads);
    let dataset = FaultCampaign::new(config.campaign)
        .run(&design, &faults, &workloads)
        .expect("campaign runs")
        .into_dataset(config.criticality_threshold);

    let mut total = 0.0;
    let mut count = 0usize;
    for (i, gate) in design.gates().iter().enumerate() {
        let is_voter = gate.name.ends_with("_vote") || gate.name.ends_with("_vote_or");
        if !is_voter {
            total += dataset.scores()[i];
            count += 1;
        }
        // Copies remain in the universe: original_gate_name maps them
        // back for any per-node reporting.
        let _ = original_gate_name(&gate.name);
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}
