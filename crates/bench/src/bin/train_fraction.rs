//! Extension: training-fraction sweep — how little fault-injection
//! ground truth does the GCN need? This quantifies the paper's core
//! economic argument (§1: "mitigating the necessity for conventional
//! fault injection procedures across the entire circuit").
//!
//! Usage: `cargo run --release -p fusa-bench --bin train_fraction [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, save_results};
use fusa_gcn::pipeline::{FusaPipeline, PipelineConfig};
use std::fmt::Write as _;

fn main() {
    let base = config_from_args();
    println!("Training-fraction sweep: accuracy vs share of nodes with FI ground truth.\n");
    let fractions = [0.1, 0.2, 0.4, 0.6, 0.8];

    let mut csv = String::from("design,train_fraction,accuracy,auc\n");
    for netlist in paper_designs() {
        println!("=== {} ===", netlist.name());
        for &fraction in &fractions {
            let config = PipelineConfig {
                train_fraction: fraction,
                ..base.clone()
            };
            let analysis = FusaPipeline::new(config)
                .run(&netlist)
                .expect("pipeline runs");
            println!(
                "  {:>4.0}% of nodes fault-injected -> accuracy {:.2}%, AUC {:.3}",
                fraction * 100.0,
                analysis.evaluation.accuracy * 100.0,
                analysis.evaluation.auc
            );
            let _ = writeln!(
                csv,
                "{},{:.2},{:.4},{:.4}",
                netlist.name(),
                fraction,
                analysis.evaluation.accuracy,
                analysis.evaluation.auc
            );
        }
        println!();
    }
    save_results("train_fraction.csv", &csv);
}
