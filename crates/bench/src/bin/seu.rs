//! Extension: transient single-event-upset vulnerability vs stuck-at
//! criticality. Ranks flip-flops by SEU corruption rate and correlates
//! against the Algorithm-1 stuck-at criticality of the same nodes —
//! showing the stuck-at-trained view transfers (or does not) to the
//! transient-fault threat model.
//!
//! Usage: `cargo run --release -p fusa-bench --bin seu [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, save_results};
use fusa_faultsim::{FaultCampaign, FaultList, SeuCampaign, SeuConfig};
use fusa_logicsim::WorkloadSuite;
use fusa_neuro::metrics::{pearson, spearman};
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    println!("SEU (transient) vulnerability vs stuck-at criticality, per design.\n");

    let mut csv = String::from("design,flop,seu_corruption_rate,stuckat_score\n");
    for netlist in paper_designs() {
        let workloads = WorkloadSuite::generate(&netlist, &config.workloads);

        // Transient campaign over all flops.
        let seu_report = SeuCampaign::new(SeuConfig::default()).run(&netlist, &workloads);

        // Stuck-at criticality via Algorithm 1 (same settings as the
        // pipeline).
        let faults = FaultList::all_gate_outputs(&netlist);
        let dataset = FaultCampaign::new(config.campaign)
            .run(&netlist, &faults, &workloads)
            .expect("campaign runs")
            .into_dataset(config.criticality_threshold);

        let stuckat: Vec<f64> = seu_report.flops.iter().map(|&g| dataset.score(g)).collect();
        let r = pearson(&seu_report.corruption_rate, &stuckat);
        let rho = spearman(&seu_report.corruption_rate, &stuckat);
        println!(
            "=== {} ({} flops, {} experiments) ===",
            netlist.name(),
            seu_report.flops.len(),
            seu_report.experiments
        );
        println!(
            "  mean SEU corruption rate {:.3} | pearson vs stuck-at {:.3} | spearman {:.3}",
            seu_report.mean_corruption_rate(),
            r,
            rho
        );
        println!("  most SEU-vulnerable flops:");
        for (gate, rate) in seu_report.ranking().into_iter().take(5) {
            println!(
                "    {:<24} corruption {:.2}  (stuck-at score {:.2})",
                netlist.gate(gate).name,
                rate,
                dataset.score(gate)
            );
        }
        for (gate, (rate, score)) in seu_report
            .flops
            .iter()
            .zip(seu_report.corruption_rate.iter().zip(&stuckat))
        {
            let _ = writeln!(
                csv,
                "{},{},{:.4},{:.4}",
                netlist.name(),
                netlist.gate(*gate).name,
                rate,
                score
            );
        }
        println!();
    }
    save_results("seu_vs_stuckat.csv", &csv);
}
