//! E5/E6 — Figure 5: (a) feature importance scores for one node's
//! prediction; (b) globally aggregated feature rankings (Equation 3)
//! across all three designs.
//!
//! Usage:
//! `cargo run --release -p fusa-bench --bin figure5 [-- a|b] [-- --smoke]`

use fusa_bench::{bar, config_from_args, paper_designs, run_design, save_results};
use fusa_gcn::ExplainerConfig;
use fusa_graph::FEATURE_NAMES;
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    let which: Option<String> = std::env::args().nth(1).filter(|a| a == "a" || a == "b");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let explainer_config = ExplainerConfig {
        iterations: if smoke { 25 } else { 100 },
        ..Default::default()
    };

    if which.as_deref() != Some("b") {
        figure5a(&config, &explainer_config);
    }
    if which.as_deref() != Some("a") {
        figure5b(&config, &explainer_config, smoke);
    }
}

/// Figure 5(a): feature importance for one randomly selected SDRAM node.
fn figure5a(config: &fusa_gcn::pipeline::PipelineConfig, explainer_config: &ExplainerConfig) {
    let netlist = fusa_netlist::designs::sdram_ctrl();
    let run = run_design(&netlist, config);
    let explainer = run.analysis.explainer(explainer_config.clone());
    // Deterministic "random" pick: first validation node.
    let node = run.analysis.split.validation[0];
    let explanation = explainer.explain(node);

    println!(
        "Figure 5(a). Feature importance scores for node {} ({}) of {} — predicted {}.",
        node,
        netlist.gates()[node].name,
        netlist.name(),
        if explanation.predicted_class == 1 {
            "Critical"
        } else {
            "Non-critical"
        }
    );
    let mut csv = String::from("feature,score\n");
    for (name, score) in explanation.ranked_features() {
        println!("  {name:<36} {} {score:.2}", bar(score / 3.0));
        let _ = writeln!(csv, "{name},{score:.4}");
    }
    save_results("figure5a_node_importance.csv", &csv);
    println!();
}

/// Figure 5(b): Eq. 3 aggregated feature rankings over all designs.
fn figure5b(
    config: &fusa_gcn::pipeline::PipelineConfig,
    explainer_config: &ExplainerConfig,
    smoke: bool,
) {
    println!("Figure 5(b). Aggregated feature rankings for all three designs (Eq. 3).");
    let per_design_nodes = if smoke { 8 } else { 60 };
    let mut csv = String::from("design,feature,mean_rank,mean_score\n");
    let mut combined_ranks = vec![0.0; FEATURE_NAMES.len()];
    let mut designs_done = 0usize;

    for netlist in paper_designs() {
        let run = run_design(&netlist, config);
        let explainer = run.analysis.explainer(explainer_config.clone());
        // Explain a deterministic sample of validation nodes.
        let nodes: Vec<usize> = run
            .analysis
            .split
            .validation
            .iter()
            .copied()
            .take(per_design_nodes)
            .collect();
        let global = explainer.global_importance(&nodes);
        println!(
            "  --- {} ({} nodes explained) ---",
            netlist.name(),
            nodes.len()
        );
        for (feature, (&rank, &score)) in FEATURE_NAMES
            .iter()
            .zip(global.mean_ranks.iter().zip(&global.mean_scores))
        {
            println!("    {feature:<36} mean rank {rank:.2}  mean score {score:.2}");
            let _ = writeln!(csv, "{},{feature},{rank:.4},{score:.4}", netlist.name());
        }
        for (c, &r) in combined_ranks.iter_mut().zip(&global.mean_ranks) {
            *c += r;
        }
        designs_done += 1;
    }

    println!("  --- combined (lower rank = more important) ---");
    let mut combined: Vec<(usize, f64)> = combined_ranks
        .iter()
        .map(|&r| r / designs_done as f64)
        .enumerate()
        .collect();
    combined.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
    for (feature, rank) in &combined {
        println!("    {:<36} avg rank {rank:.2}", FEATURE_NAMES[*feature]);
        let _ = writeln!(csv, "combined,{},{rank:.4},", FEATURE_NAMES[*feature]);
    }
    save_results("figure5b_global_ranking.csv", &csv);
}
