//! Extension ablation: 1–4 GraphConv layers (the grid-search slice of
//! §3.3.2 along the depth axis).
//!
//! Usage: `cargo run --release -p fusa-bench --bin ablation_depth [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, save_results};
use fusa_gcn::pipeline::FusaPipeline;
use fusa_gcn::{train_classifier, GcnConfig};
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    println!("Depth ablation: validation accuracy vs number of GraphConv layers.\n");

    let depth_candidates: Vec<Vec<usize>> = vec![
        vec![16],
        vec![16, 32],
        vec![16, 32, 64],
        vec![16, 32, 64, 64],
    ];

    let mut csv = String::from("design,hidden_layers,accuracy,auc\n");
    for netlist in paper_designs() {
        let analysis = FusaPipeline::new(config.clone())
            .run(&netlist)
            .expect("pipeline runs");
        println!("=== {} ===", netlist.name());
        for hidden in &depth_candidates {
            let (_, _, evaluation) = train_classifier(
                &analysis.adjacency,
                &analysis.features,
                analysis.labels(),
                &analysis.split,
                GcnConfig {
                    in_features: analysis.features.cols(),
                    hidden: hidden.clone(),
                    ..config.model.clone()
                },
                &config.train,
            );
            println!(
                "  {} conv layers (hidden {:?}): accuracy {:.2}%, AUC {:.3}",
                hidden.len() + 1,
                hidden,
                evaluation.accuracy * 100.0,
                evaluation.auc
            );
            let _ = writeln!(
                csv,
                "{},{},{:.4},{:.4}",
                netlist.name(),
                hidden.len() + 1,
                evaluation.accuracy,
                evaluation.auc
            );
        }
        println!();
    }
    save_results("ablation_depth.csv", &csv);
}
