//! E2 — Figure 4: ROC curves and AUC of every classifier per design.
//!
//! Usage: `cargo run --release -p fusa-bench --bin figure4 [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, run_design, save_results};
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    println!("Figure 4. ROC curves to visualize the performance of various classifiers.\n");

    for (index, netlist) in paper_designs().into_iter().enumerate() {
        let run = run_design(&netlist, &config);
        let panel = char::from(b'a' + index as u8);
        println!("--- Figure 4({panel}): {} ---", netlist.name());
        println!("  {:<4} AUC", "");
        println!("  {:<4} {:.3}", "GCN", run.gcn_auc());

        let mut csv = String::from("model,threshold,fpr,tpr\n");
        for point in &run.analysis.evaluation.roc.points {
            let _ = writeln!(
                csv,
                "GCN,{:.6},{:.6},{:.6}",
                point.threshold, point.false_positive_rate, point.true_positive_rate
            );
        }
        for baseline in &run.baselines {
            println!("  {:<4} {:.3}", baseline.name, baseline.auc);
            for point in &baseline.roc.points {
                let _ = writeln!(
                    csv,
                    "{},{:.6},{:.6},{:.6}",
                    baseline.name,
                    point.threshold,
                    point.false_positive_rate,
                    point.true_positive_rate
                );
            }
        }
        let gcn_best = run.baselines.iter().all(|b| run.gcn_auc() >= b.auc - 1e-9);
        println!(
            "  GCN has the highest AUC: {}\n",
            if gcn_best {
                "yes"
            } else {
                "NO (shape deviation)"
            }
        );
        save_results(&format!("figure4{panel}_roc_{}.csv", netlist.name()), &csv);
    }
}
