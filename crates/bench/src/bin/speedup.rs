//! E8 — the paper's economic argument (§1, §2.2): once trained on a
//! subset, GCN inference replaces exhaustive fault injection on the rest
//! of the design. This binary measures both wall-clocks.
//!
//! Usage: `cargo run --release -p fusa-bench --bin speedup [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, save_results};
use fusa_faultsim::{FaultCampaign, FaultList};
use fusa_gcn::pipeline::FusaPipeline;
use fusa_logicsim::WorkloadSuite;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let config = config_from_args();
    println!("Fault-injection vs GCN-inference wall-clock (per design).\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "design", "FI campaign", "train", "inference", "FI/infer"
    );

    let mut csv = String::from("design,fi_seconds,train_seconds,inference_seconds,speedup\n");
    for netlist in paper_designs() {
        // Exhaustive fault injection over the whole design.
        let faults = FaultList::all_gate_outputs(&netlist);
        let workloads = WorkloadSuite::generate(&netlist, &config.workloads);
        let fi_started = Instant::now();
        let report = FaultCampaign::new(config.campaign)
            .run(&netlist, &faults, &workloads)
            .expect("campaign runs");
        let fi_seconds = fi_started.elapsed().as_secs_f64();
        let _ = report.mean_coverage();

        // Pipeline (includes a fresh campaign for ground truth + training).
        let train_started = Instant::now();
        let analysis = FusaPipeline::new(config.clone())
            .run(&netlist)
            .expect("pipeline runs");
        let train_seconds = train_started.elapsed().as_secs_f64();

        // Inference over every node of the design.
        let infer_started = Instant::now();
        let iterations = 10usize;
        for _ in 0..iterations {
            let _ = analysis
                .classifier
                .predict_critical_probability(&analysis.adjacency, &analysis.features);
        }
        let inference_seconds = infer_started.elapsed().as_secs_f64() / iterations as f64;

        let speedup = fi_seconds / inference_seconds.max(1e-9);
        println!(
            "{:<14} {:>11.2}s {:>11.2}s {:>11.5}s {:>9.0}x",
            netlist.name(),
            fi_seconds,
            train_seconds,
            inference_seconds,
            speedup
        );
        let _ = writeln!(
            csv,
            "{},{:.4},{:.4},{:.6},{:.1}",
            netlist.name(),
            fi_seconds,
            train_seconds,
            inference_seconds,
            speedup
        );
    }
    save_results("speedup.csv", &csv);
    println!("\n(The trained model amortizes: classifying unseen nodes needs no further FI.)");
}
