//! §3.3.2 — grid-search hyper-parameter optimization over layer stacks,
//! dropout and learning rate.
//!
//! Usage: `cargo run --release -p fusa-bench --bin grid_search [-- --smoke]`

use fusa_bench::{config_from_args, save_results};
use fusa_gcn::pipeline::FusaPipeline;
use fusa_gcn::GridSearch;
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The paper tunes on one design; we use the SDRAM controller.
    let netlist = fusa_netlist::designs::sdram_ctrl();
    let analysis = FusaPipeline::new(config)
        .run(&netlist)
        .expect("pipeline runs");

    let grid = GridSearch {
        epochs: if smoke { 25 } else { 60 },
        ..Default::default()
    };
    println!(
        "Grid search on {} ({} candidates)…\n",
        netlist.name(),
        grid.hidden_candidates.len() * grid.dropout_candidates.len() * grid.learning_rates.len()
    );
    let results = grid.run(
        &analysis.adjacency,
        &analysis.features,
        analysis.labels(),
        &analysis.split,
    );

    let mut csv = String::from("hidden,dropout,learning_rate,validation_accuracy\n");
    println!(
        "{:<18} {:>8} {:>6} {:>10}",
        "hidden", "dropout", "lr", "val acc"
    );
    for result in &results {
        println!(
            "{:<18} {:>8.2} {:>6.3} {:>9.2}%",
            format!("{:?}", result.hidden),
            result.dropout,
            result.learning_rate,
            result.validation_accuracy * 100.0
        );
        let _ = writeln!(
            csv,
            "{:?},{},{},{:.4}",
            result.hidden, result.dropout, result.learning_rate, result.validation_accuracy
        );
    }
    println!(
        "\nbest: hidden {:?}, dropout {}, lr {} ({:.2}%)",
        results[0].hidden,
        results[0].dropout,
        results[0].learning_rate,
        results[0].validation_accuracy * 100.0
    );
    save_results("grid_search.csv", &csv);
}
