//! E1 — Figure 3: critical-node classification accuracy of the GCN vs
//! MLP / LoR / RFC / SVM / EBM on all three designs.
//!
//! Usage: `cargo run --release -p fusa-bench --bin figure3 [-- --smoke]`

use fusa_bench::{bar, config_from_args, paper_designs, run_design, save_results};
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    println!("Figure 3. Critical node classification accuracy for all three designs.\n");

    let mut csv = String::from("design,model,accuracy\n");
    for netlist in paper_designs() {
        let started = std::time::Instant::now();
        let run = run_design(&netlist, &config);
        println!(
            "=== {} ({} gates, {} critical / {} nodes, {:.1}s) ===",
            netlist.name(),
            netlist.gate_count(),
            run.analysis.dataset.critical_count(),
            run.analysis.dataset.labels().len(),
            started.elapsed().as_secs_f64(),
        );
        let mut rows: Vec<(&str, f64)> = vec![("GCN", run.gcn_accuracy())];
        rows.extend(run.baselines.iter().map(|b| (b.name, b.accuracy)));
        for (name, accuracy) in &rows {
            println!("  {name:<4} {} {:.2}%", bar(*accuracy), accuracy * 100.0);
            let _ = writeln!(csv, "{},{},{:.4}", netlist.name(), name, accuracy);
        }
        let margin = run.gcn_accuracy() - run.best_baseline_accuracy();
        println!("  GCN margin over best baseline: {:+.2}%\n", margin * 100.0);
    }
    save_results("figure3_accuracy.csv", &csv);
}
