//! E4 — Table 2: sampled nodes with criticality classification, feature
//! importance scores and predicted criticality scores.
//!
//! Usage: `cargo run --release -p fusa-bench --bin table2 [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, run_design, save_results};
use fusa_gcn::{ExplainerConfig, TrainConfig};
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let nodes_per_design = 4usize;

    println!(
        "Table 2. Critical node classification with feature importance and criticality scores.\n"
    );
    println!(
        "{:<14} {:<16} {:<14} {:>6} {:>6} {:>6} {:>6} {:>6}  {:>6}",
        "Design", "Node", "Class", "conn", "P(0)", "P(1)", "trans", "inv", "score"
    );

    let mut csv = String::from(
        "design,node,classification,imp_connections,imp_p0,imp_p1,imp_transition,imp_inverting,criticality_score\n",
    );
    for netlist in paper_designs() {
        let run = run_design(&netlist, &config);
        let explainer = run.analysis.explainer(ExplainerConfig {
            iterations: if smoke { 20 } else { 100 },
            ..Default::default()
        });
        let (_regressor, scores) = run.analysis.train_regressor(&TrainConfig {
            epochs: if smoke { 60 } else { 200 },
            ..Default::default()
        });

        // Sample validation nodes: alternate predicted classes so the
        // table shows both, like the paper's selection.
        let mut picked = Vec::new();
        let mut want_critical = false;
        for &node in &run.analysis.split.validation {
            if picked.len() >= nodes_per_design {
                break;
            }
            let is_critical = run.analysis.evaluation.predicted_labels[node];
            if is_critical == want_critical {
                picked.push(node);
                want_critical = !want_critical;
            }
        }
        while picked.len() < nodes_per_design {
            let extra = run.analysis.split.validation[picked.len()];
            if !picked.contains(&extra) {
                picked.push(extra);
            }
        }

        for node in picked {
            let explanation = explainer.explain(node);
            let class = if explanation.predicted_class == 1 {
                "Critical"
            } else {
                "Non-critical"
            };
            let imp = &explanation.feature_importance;
            println!(
                "{:<14} {:<16} {:<14} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2}  {:>6.2}",
                netlist.name(),
                netlist.gates()[node].name,
                class,
                imp[0],
                imp[1],
                imp[2],
                imp[3],
                imp[4],
                scores[node]
            );
            let _ = writeln!(
                csv,
                "{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                netlist.name(),
                netlist.gates()[node].name,
                class,
                imp[0],
                imp[1],
                imp[2],
                imp[3],
                imp[4],
                scores[node]
            );
        }
    }
    save_results("table2_nodes.csv", &csv);
    println!("\n(score >= 0.5 should match a Critical classification — see the conformity binary)");
}
