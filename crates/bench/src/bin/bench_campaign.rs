//! Fault-campaign throughput measurement: accelerated hot path (cone
//! restriction + early exit + zero-alloc stepping) vs the exhaustive
//! full-netlist reference, per built-in design.
//!
//! Emits `BENCH_campaign.json` (hand-rolled JSON — the workspace
//! carries no serde) with fault-cycles/sec for both paths plus the
//! measured speedup, and cross-checks along the way that both paths
//! return bit-identical outcomes and first-divergence cycles.
//!
//! A second section sweeps the wide `[u64; W]` structure-of-arrays
//! kernel against the legacy scalar path on synthesized 10k/30k/100k-
//! gate designs (sampled faults — exhaustive lists at that scale would
//! take hours), again cross-checking bit-identity at every lane width.
//!
//! A third section measures the live `status.json` heartbeat's cost on
//! the campaign hot path: the same campaign with the status target off
//! vs armed, bit-identity cross-checked, overhead recorded (expected
//! well under 1% — snapshots ride the existing heartbeat cadence).
//!
//! Usage: `cargo run --release -p fusa-bench --bin bench_campaign
//!         [-- --smoke] [-- --out FILE]`

use fusa_faultsim::{CampaignConfig, CampaignReport, FaultCampaign, FaultList};
use fusa_logicsim::{WorkloadConfig, WorkloadSuite};
use fusa_netlist::{designs, GateId, Netlist};
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    seconds: f64,
    fault_cycles: u64,
    stepped_fault_cycles: u64,
    gate_evals: u64,
    gate_evals_full: u64,
    cone_build_seconds: f64,
    cone_coverage: f64,
    report: CampaignReport,
}

impl Measurement {
    fn fault_cycles_per_second(&self) -> f64 {
        self.fault_cycles as f64 / self.seconds.max(1e-12)
    }
}

fn measure(
    netlist: &Netlist,
    faults: &FaultList,
    workloads: &WorkloadSuite,
    config: CampaignConfig,
) -> Measurement {
    let campaign = FaultCampaign::new(config);
    let started = Instant::now();
    let report = campaign
        .run(netlist, faults, workloads)
        .expect("campaign runs");
    let seconds = started.elapsed().as_secs_f64();
    let stats = report.stats().clone();
    Measurement {
        seconds,
        fault_cycles: stats.fault_cycles,
        stepped_fault_cycles: stats.stepped_fault_cycles,
        gate_evals: stats.gate_evals,
        gate_evals_full: stats.gate_evals_full,
        cone_build_seconds: stats.cone_build_seconds,
        cone_coverage: stats.cone_coverage,
        report,
    }
}

/// Both paths must agree bit-for-bit — this is the same invariant the
/// differential tests enforce, re-checked on the real designs.
fn assert_identical(design: &str, a: &CampaignReport, b: &CampaignReport) {
    let (wa, wb) = (a.workload_reports(), b.workload_reports());
    assert_eq!(wa.len(), wb.len(), "{design}: workload count differs");
    for (x, y) in wa.iter().zip(wb) {
        assert_eq!(x.outcomes, y.outcomes, "{design}: outcomes differ");
        assert_eq!(
            x.first_divergence, y.first_divergence,
            "{design}: first_divergence differs"
        );
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_campaign.json")
        .to_string();

    let workload_config = if smoke {
        WorkloadConfig {
            num_workloads: 2,
            vectors_per_workload: 48,
            ..Default::default()
        }
    } else {
        WorkloadConfig {
            num_workloads: 4,
            vectors_per_workload: 128,
            ..Default::default()
        }
    };

    let accelerated_config = CampaignConfig {
        threads: 1,
        ..Default::default()
    };
    let reference_config = CampaignConfig {
        threads: 1,
        restrict_to_cone: false,
        early_exit: false,
        lane_words: 0,
        ..Default::default()
    };

    println!("Fault-campaign throughput: accelerated vs full-netlist reference.\n");
    println!(
        "{:<14} {:>7} {:>14} {:>14} {:>9} {:>12}",
        "design", "faults", "ref fc/s", "accel fc/s", "speedup", "evals saved"
    );

    let mut entries = String::new();
    let mut first = true;
    for netlist in designs::all_designs() {
        let faults = FaultList::all_gate_outputs(&netlist);
        let workloads = WorkloadSuite::generate(&netlist, &workload_config);

        let reference = measure(&netlist, &faults, &workloads, reference_config);
        let accelerated = measure(&netlist, &faults, &workloads, accelerated_config);
        assert_identical(netlist.name(), &reference.report, &accelerated.report);

        let speedup = accelerated.fault_cycles_per_second() / reference.fault_cycles_per_second();
        let evals_saved =
            1.0 - accelerated.gate_evals as f64 / accelerated.gate_evals_full.max(1) as f64;
        println!(
            "{:<14} {:>7} {:>14.0} {:>14.0} {:>8.2}x {:>11.1}%",
            netlist.name(),
            faults.len(),
            reference.fault_cycles_per_second(),
            accelerated.fault_cycles_per_second(),
            speedup,
            evals_saved * 100.0,
        );

        if !first {
            entries.push(',');
        }
        first = false;
        let _ = write!(
            entries,
            "\n    {{\n      \"design\": \"{}\",\n      \"gates\": {},\n      \"faults\": {},\n      \"fault_cycles\": {},\n      \"reference\": {{\n        \"seconds\": {:.4},\n        \"fault_cycles_per_second\": {:.0},\n        \"stepped_fault_cycles\": {},\n        \"gate_evals\": {}\n      }},\n      \"accelerated\": {{\n        \"seconds\": {:.4},\n        \"fault_cycles_per_second\": {:.0},\n        \"stepped_fault_cycles\": {},\n        \"gate_evals\": {},\n        \"gate_evals_full\": {},\n        \"gate_evals_saved_fraction\": {:.4},\n        \"lane_words\": {},\n        \"cone_build_seconds\": {:.4},\n        \"cone_coverage\": {:.4}\n      }},\n      \"speedup\": {:.2}\n    }}",
            json_escape(netlist.name()),
            netlist.gate_count(),
            faults.len(),
            accelerated.fault_cycles,
            reference.seconds,
            reference.fault_cycles_per_second(),
            reference.stepped_fault_cycles,
            reference.gate_evals,
            accelerated.seconds,
            accelerated.fault_cycles_per_second(),
            accelerated.stepped_fault_cycles,
            accelerated.gate_evals,
            accelerated.gate_evals_full,
            evals_saved,
            accelerated_config.lane_words,
            accelerated.cone_build_seconds,
            accelerated.cone_coverage,
            speedup,
        );
    }

    let design_sizes = measure_design_sizes(smoke);
    let status_emission = measure_status_emission(smoke);
    let io_retry = measure_io_retry(smoke);

    let json = format!(
        "{{\n  \"benchmark\": \"campaign_throughput\",\n  \"unit\": \"fault_cycles_per_second\",\n  \"threads\": 1,\n  \"workloads\": {{\n    \"num_workloads\": {},\n    \"vectors_per_workload\": {}\n  }},\n  \"bit_identical_checked\": true,\n  \"designs\": [{}\n  ],\n  \"design_sizes\": [{}\n  ],\n  \"status_emission\": {},\n  \"io_retry\": {}\n}}\n",
        workload_config.num_workloads,
        workload_config.vectors_per_workload,
        entries,
        design_sizes,
        status_emission,
        io_retry,
    );

    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\n[saved {out_path}]"),
        Err(e) => eprintln!("\nwarning: cannot write {out_path}: {e}"),
    }
    println!("(both paths verified bit-identical on every design above)");
}

/// Measures the live-status heartbeat's cost on the campaign hot path:
/// the identical single-thread campaign with the global status target
/// disarmed vs armed at a throwaway path, best-of-N wall time each.
/// Outcomes are cross-checked bit-identical per repetition — status
/// emission must observe, never perturb.
fn measure_status_emission(smoke: bool) -> String {
    use fusa_obs::{set_status_target, StatusTarget};

    // The campaign must run long enough to amortize the fixed first and
    // last snapshot writes, or the number reflects two fsync-free file
    // creations rather than the steady-state heartbeat cost.
    let netlist = if smoke {
        designs::synth_10k(1)
    } else {
        designs::synth_30k(1)
    };
    let workload_config = WorkloadConfig {
        num_workloads: if smoke { 2 } else { 8 },
        vectors_per_workload: if smoke { 32 } else { 64 },
        ..Default::default()
    };
    let faults = sampled_faults(&netlist, if smoke { 256 } else { 512 });
    let workloads = WorkloadSuite::generate(&netlist, &workload_config);
    let config = CampaignConfig {
        threads: 1,
        ..Default::default()
    };
    let reps = if smoke { 1 } else { 8 };

    let dir = std::env::temp_dir().join(format!("fusa_bench_status_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("status bench temp dir");
    let status_path = dir.join("status.json");

    let run = |armed: bool| {
        set_status_target(armed.then(|| StatusTarget {
            path: status_path.clone(),
            run_id: "bench-status".to_string(),
            design: netlist.name().to_string(),
            shard: None,
        }));
        let measurement = measure(&netlist, &faults, &workloads, config);
        set_status_target(None);
        measurement
    };

    // One unmeasured warmup, then N rounds of [off, on, off] with the
    // middle element alternating. Each round contributes a paired
    // on-vs-off delta (the on run against the mean of its bracketing
    // offs, centring out slow drift) and an off-vs-off *null* delta —
    // the measurement noise floor of the host. On a small shared box
    // back-to-back identical runs can differ by several percent, so the
    // wall delta only brackets the cost; the deterministic number is
    // the directly timed per-snapshot publication cost below.
    let _ = run(false);
    let mut off_seconds = f64::INFINITY;
    let mut on_seconds = f64::INFINITY;
    let mut wall_deltas = Vec::with_capacity(reps);
    let mut null_deltas = Vec::with_capacity(reps);
    let mut fault_cycles = 0;
    for _ in 0..reps {
        let off_a = run(false);
        let on = run(true);
        let off_b = run(false);
        assert_identical(netlist.name(), &off_a.report, &on.report);
        let off_mid = (off_a.seconds + off_b.seconds) / 2.0;
        wall_deltas.push((on.seconds / off_mid - 1.0) * 100.0);
        null_deltas.push(((off_b.seconds / off_a.seconds - 1.0) * 100.0).abs());
        off_seconds = off_seconds.min(off_a.seconds.min(off_b.seconds));
        on_seconds = on_seconds.min(on.seconds);
        fault_cycles = on.fault_cycles;
    }
    assert!(
        status_path.is_file(),
        "armed campaign published no status.json"
    );

    // The deterministic cost: time the snapshot publication itself (the
    // only work emission adds per heartbeat) and scale by the 500 ms
    // cadence. This is what an operator actually pays at steady state.
    let probe = fusa_obs::StatusSnapshot::read(&status_path).expect("probe snapshot");
    let writes = 256;
    let started = Instant::now();
    for _ in 0..writes {
        probe
            .write_atomic(&status_path)
            .expect("probe snapshot write");
    }
    let snapshot_write_seconds = started.elapsed().as_secs_f64() / writes as f64;
    let heartbeat_seconds = 0.5;
    let steady_state_pct = snapshot_write_seconds / heartbeat_seconds * 100.0;
    let _ = std::fs::remove_dir_all(&dir);

    let median = |mut values: Vec<f64>| -> f64 {
        values.sort_by(|a, b| a.total_cmp(b));
        let mid = values.len() / 2;
        if values.len() % 2 == 1 {
            values[mid]
        } else {
            (values[mid - 1] + values[mid]) / 2.0
        }
    };
    let wall_delta_pct = median(wall_deltas);
    let wall_noise_pct = median(null_deltas);
    println!(
        "\nStatus emission on {}: snapshot write {:.1} us => {:.3}% of a {}ms heartbeat;\n\
         paired wall delta {:+.2}% (off-vs-off noise floor ±{:.2}%, {} rounds).",
        netlist.name(),
        snapshot_write_seconds * 1e6,
        steady_state_pct,
        (heartbeat_seconds * 1000.0) as u64,
        wall_delta_pct,
        wall_noise_pct,
        reps,
    );
    format!(
        "{{\n    \"design\": \"{}\",\n    \"reps\": {},\n    \"fault_cycles\": {},\n    \"off_seconds\": {:.4},\n    \"on_seconds\": {:.4},\n    \"snapshot_write_seconds\": {:.6},\n    \"heartbeat_seconds\": {:.1},\n    \"steady_state_overhead_pct\": {:.3},\n    \"wall_delta_pct\": {:.2},\n    \"wall_noise_floor_pct\": {:.2},\n    \"bit_identical_checked\": true\n  }}",
        json_escape(netlist.name()),
        reps,
        fault_cycles,
        off_seconds,
        on_seconds,
        snapshot_write_seconds,
        heartbeat_seconds,
        steady_state_pct,
        wall_delta_pct,
        wall_noise_pct,
    )
}

/// Measures the storage-fault retry machinery's cost on the checkpoint
/// append path: the identical checkpointed campaign with the injection
/// layer disarmed vs armed with a transient fault every few writes
/// (each absorbed by one backoff retry). Outcomes are cross-checked
/// bit-identical per repetition — retries must recover, never perturb.
/// Like `status_emission`, the wall delta is paired ([off, on, off]
/// rounds) and reported against the host's off-vs-off noise floor.
fn measure_io_retry(smoke: bool) -> String {
    use fusa_faultsim::{DurabilityConfig, IoRetryPolicy};
    use fusa_obs::{set_io_fault_injection, IoFaultInjection, IoFaultKind};

    let netlist = if smoke {
        designs::synth_10k(1)
    } else {
        designs::synth_30k(1)
    };
    let workload_config = WorkloadConfig {
        num_workloads: if smoke { 2 } else { 8 },
        vectors_per_workload: if smoke { 32 } else { 64 },
        ..Default::default()
    };
    let faults = sampled_faults(&netlist, if smoke { 256 } else { 512 });
    let workloads = WorkloadSuite::generate(&netlist, &workload_config);
    let config = CampaignConfig {
        threads: 1,
        ..Default::default()
    };
    let policy = IoRetryPolicy::default();
    let fail_every = 3u64;
    let reps = if smoke { 1 } else { 8 };

    let dir = std::env::temp_dir().join(format!("fusa_bench_ioretry_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("io-retry bench temp dir");
    let checkpoint = dir.join("checkpoint.jsonl");

    // Both arms checkpoint, so the delta isolates the injection hook +
    // retry/backoff machinery, not checkpointing itself. The armed arm
    // fails every `fail_every`-th checkpoint write once; the retry
    // (with its 1 ms base backoff) absorbs each fault.
    let run = |armed: bool, io_retry: IoRetryPolicy| {
        set_io_fault_injection(armed.then(|| IoFaultInjection {
            fail_nth: Vec::new(),
            fail_every: Some(fail_every),
            kind: IoFaultKind::Enospc,
            targets: vec!["checkpoint".to_string()],
        }));
        let campaign = FaultCampaign::new(config).with_durability(DurabilityConfig {
            checkpoint: Some(checkpoint.clone()),
            io_retry,
            ..DurabilityConfig::default()
        });
        let started = Instant::now();
        let report = campaign
            .run(&netlist, &faults, &workloads)
            .expect("campaign runs");
        let seconds = started.elapsed().as_secs_f64();
        set_io_fault_injection(None);
        (seconds, report)
    };

    // Steady-state cost of the retry wrapper on the *unfaulted* path:
    // both arms run fault-free, toggling only the policy (full budget
    // vs single-attempt). One unfaulted append does identical work
    // under either, so any delta beyond the noise floor would expose
    // bookkeeping overhead in the wrapper itself.
    let _ = run(false, policy);
    let mut unfaulted_deltas = Vec::with_capacity(reps);
    let mut unfaulted_nulls = Vec::with_capacity(reps);
    for _ in 0..reps {
        let (none_a_seconds, none_a) = run(false, IoRetryPolicy::none());
        let (full_seconds, full) = run(false, policy);
        let (none_b_seconds, none_b) = run(false, IoRetryPolicy::none());
        assert_identical(netlist.name(), &none_a, &full);
        assert_identical(netlist.name(), &none_a, &none_b);
        let none_mid = (none_a_seconds + none_b_seconds) / 2.0;
        unfaulted_deltas.push((full_seconds / none_mid - 1.0) * 100.0);
        unfaulted_nulls.push(((none_b_seconds / none_a_seconds - 1.0) * 100.0).abs());
    }

    let run = |armed: bool| run(armed, policy);
    let mut wall_deltas = Vec::with_capacity(reps);
    let mut null_deltas = Vec::with_capacity(reps);
    let mut retries = 0u64;
    for _ in 0..reps {
        let (off_a_seconds, off_a) = run(false);
        let (on_seconds, on) = run(true);
        let (off_b_seconds, off_b) = run(false);
        assert_identical(netlist.name(), &off_a, &on);
        assert_identical(netlist.name(), &off_a, &off_b);
        assert!(
            !on.stats().durability_degraded,
            "transient faults must stay inside the retry budget"
        );
        retries = on.stats().checkpoint_write_retries;
        assert!(retries >= 1, "the armed arm injected no faults");
        let off_mid = (off_a_seconds + off_b_seconds) / 2.0;
        wall_deltas.push((on_seconds / off_mid - 1.0) * 100.0);
        null_deltas.push(((off_b_seconds / off_a_seconds - 1.0) * 100.0).abs());
    }
    let _ = std::fs::remove_dir_all(&dir);

    let median = |mut values: Vec<f64>| -> f64 {
        values.sort_by(|a, b| a.total_cmp(b));
        let mid = values.len() / 2;
        if values.len() % 2 == 1 {
            values[mid]
        } else {
            (values[mid - 1] + values[mid]) / 2.0
        }
    };
    let wall_delta_pct = median(wall_deltas);
    let wall_noise_pct = median(null_deltas);
    let unfaulted_delta_pct = median(unfaulted_deltas);
    let unfaulted_noise_pct = median(unfaulted_nulls);
    // The deterministic part of the faulted cost: the backoff sleeps
    // themselves (one first-retry delay per absorbed fault).
    let backoff_seconds = retries as f64 * policy.delay_after(1).as_secs_f64();
    println!(
        "\nI/O retry on {}: unfaulted steady state {:+.2}% (noise floor ±{:.2}%);\n\
         under faults: {} absorbed/run ({:.1} ms deterministic backoff),\n\
         paired wall delta {:+.2}% (off-vs-off noise floor ±{:.2}%, {} rounds).",
        netlist.name(),
        unfaulted_delta_pct,
        unfaulted_noise_pct,
        retries,
        backoff_seconds * 1e3,
        wall_delta_pct,
        wall_noise_pct,
        reps,
    );
    format!(
        "{{\n    \"design\": \"{}\",\n    \"reps\": {},\n    \"unfaulted_wall_delta_pct\": {:.2},\n    \"unfaulted_wall_noise_floor_pct\": {:.2},\n    \"fail_every\": {},\n    \"retries_per_run\": {},\n    \"backoff_seconds_per_run\": {:.4},\n    \"faulted_wall_delta_pct\": {:.2},\n    \"faulted_wall_noise_floor_pct\": {:.2},\n    \"bit_identical_checked\": true\n  }}",
        json_escape(netlist.name()),
        reps,
        unfaulted_delta_pct,
        unfaulted_noise_pct,
        fail_every,
        retries,
        backoff_seconds,
        wall_delta_pct,
        wall_noise_pct,
    )
}

/// A deterministic fault sample built from contiguous gate blocks
/// spread across the design. Contiguity matters: consecutive 64-fault
/// chunks then share fanout cones, as they do in a full-list campaign.
/// Strided single-gate sampling would push every chunk-group's union
/// cone toward the whole netlist and hide the wide kernel's sharing.
fn sampled_faults(netlist: &Netlist, count: usize) -> FaultList {
    const BLOCK: usize = 256;
    let total = netlist.gate_count();
    let count = count.min(total);
    let blocks = count.div_ceil(BLOCK).max(1);
    let mut gates: Vec<GateId> = Vec::with_capacity(count);
    for b in 0..blocks {
        let start = (total / (2 * blocks) + b * total / blocks).min(total.saturating_sub(BLOCK));
        for i in start..(start + BLOCK).min(total) {
            if gates.len() < count {
                gates.push(GateId(i as u32));
            }
        }
    }
    FaultList::for_gates(netlist, &gates)
}

/// Scalar-vs-wide sweep over the synthesized scaling designs, one JSON
/// entry per design size. The scalar baseline keeps cone restriction
/// and early exit on — it is exactly the pre-SoA accelerated kernel —
/// so `speedup` isolates the wide-lane rework.
fn measure_design_sizes(smoke: bool) -> String {
    let seed = 1;
    let designs: Vec<Netlist> = vec![
        designs::synth_10k(seed),
        designs::synth_30k(seed),
        designs::synth_100k(seed),
    ];
    let (sampled_gates, workload_config) = if smoke {
        (
            256,
            WorkloadConfig {
                num_workloads: 2,
                vectors_per_workload: 32,
                ..Default::default()
            },
        )
    } else {
        (
            512,
            WorkloadConfig {
                num_workloads: 8,
                vectors_per_workload: 64,
                ..Default::default()
            },
        )
    };

    println!("\nWide-lane SoA kernel vs legacy scalar on synthesized designs (sampled faults).\n");
    println!(
        "{:<12} {:>7} {:>7} {:>13} {:>13} {:>13} {:>13} {:>9}",
        "design", "gates", "faults", "scalar fc/s", "64-lane", "256-lane", "512-lane", "best"
    );

    let mut entries = String::new();
    let mut first = true;
    for netlist in &designs {
        let faults = sampled_faults(netlist, sampled_gates);
        let workloads = WorkloadSuite::generate(netlist, &workload_config);
        let scalar = measure(
            netlist,
            &faults,
            &workloads,
            CampaignConfig {
                threads: 1,
                lane_words: 0,
                ..Default::default()
            },
        );
        let mut wide_entries = String::new();
        let mut wide_rates = Vec::new();
        for (i, lane_words) in [1usize, 4, 8].into_iter().enumerate() {
            let wide = measure(
                netlist,
                &faults,
                &workloads,
                CampaignConfig {
                    threads: 1,
                    lane_words,
                    ..Default::default()
                },
            );
            assert_identical(netlist.name(), &scalar.report, &wide.report);
            if i > 0 {
                wide_entries.push(',');
            }
            let _ = write!(
                wide_entries,
                "\n        {{\n          \"lane_words\": {},\n          \"lanes\": {},\n          \"seconds\": {:.4},\n          \"fault_cycles_per_second\": {:.0},\n          \"gate_evals\": {},\n          \"cone_build_seconds\": {:.4},\n          \"cone_coverage\": {:.4},\n          \"speedup_vs_scalar\": {:.2}\n        }}",
                lane_words,
                64 * lane_words,
                wide.seconds,
                wide.fault_cycles_per_second(),
                wide.gate_evals,
                wide.cone_build_seconds,
                wide.cone_coverage,
                wide.fault_cycles_per_second() / scalar.fault_cycles_per_second(),
            );
            wide_rates.push(wide.fault_cycles_per_second());
        }
        let best = wide_rates.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<12} {:>7} {:>7} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>8.2}x",
            netlist.name(),
            netlist.gate_count(),
            faults.len(),
            scalar.fault_cycles_per_second(),
            wide_rates[0],
            wide_rates[1],
            wide_rates[2],
            best / scalar.fault_cycles_per_second(),
        );

        if !first {
            entries.push(',');
        }
        first = false;
        let _ = write!(
            entries,
            "\n    {{\n      \"design\": \"{}\",\n      \"gates\": {},\n      \"flops\": {},\n      \"faults\": {},\n      \"fault_cycles\": {},\n      \"bit_identical_checked\": true,\n      \"scalar\": {{\n        \"seconds\": {:.4},\n        \"fault_cycles_per_second\": {:.0},\n        \"gate_evals\": {},\n        \"cone_build_seconds\": {:.4},\n        \"cone_coverage\": {:.4}\n      }},\n      \"wide\": [{}\n      ],\n      \"best_speedup_vs_scalar\": {:.2}\n    }}",
            json_escape(netlist.name()),
            netlist.gate_count(),
            netlist.sequential_gates().len(),
            faults.len(),
            scalar.fault_cycles,
            scalar.seconds,
            scalar.fault_cycles_per_second(),
            scalar.gate_evals,
            scalar.cone_build_seconds,
            scalar.cone_coverage,
            wide_entries,
            best / scalar.fault_cycles_per_second(),
        );
    }
    entries
}
