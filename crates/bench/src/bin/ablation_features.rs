//! Extension ablation: drop each node feature, retrain, measure the
//! accuracy delta. Causally validates the Figure 5(b) importance
//! ranking.
//!
//! Usage: `cargo run --release -p fusa-bench --bin ablation_features [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, save_results};
use fusa_gcn::pipeline::FusaPipeline;
use fusa_gcn::{train_classifier, GcnConfig};
use fusa_graph::{FEATURE_COUNT, FEATURE_NAMES};
use fusa_neuro::Matrix;
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    println!("Feature ablation: validation accuracy with each feature removed.\n");

    let mut csv = String::from("design,dropped_feature,accuracy,delta\n");
    for netlist in paper_designs() {
        let analysis = FusaPipeline::new(config.clone())
            .run(&netlist)
            .expect("pipeline runs");
        let full_accuracy = analysis.evaluation.accuracy;
        println!(
            "=== {} (full-feature accuracy {:.2}%) ===",
            netlist.name(),
            full_accuracy * 100.0
        );

        for (dropped, &feature_name) in FEATURE_NAMES.iter().enumerate().take(FEATURE_COUNT) {
            // Rebuild the feature matrix without column `dropped`.
            let source = &analysis.features;
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(source.rows());
            for r in 0..source.rows() {
                rows.push(
                    source
                        .row(r)
                        .iter()
                        .enumerate()
                        .filter(|(c, _)| *c != dropped)
                        .map(|(_, &v)| v)
                        .collect(),
                );
            }
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let reduced = Matrix::from_rows(&refs);

            let (_, _, evaluation) = train_classifier(
                &analysis.adjacency,
                &reduced,
                analysis.labels(),
                &analysis.split,
                GcnConfig {
                    in_features: FEATURE_COUNT - 1,
                    ..config.model.clone()
                },
                &config.train,
            );
            let delta = evaluation.accuracy - full_accuracy;
            println!(
                "  - {:<36} {:.2}% ({:+.2}%)",
                feature_name,
                evaluation.accuracy * 100.0,
                delta * 100.0
            );
            let _ = writeln!(
                csv,
                "{},{},{:.4},{:.4}",
                netlist.name(),
                feature_name,
                evaluation.accuracy,
                delta
            );
        }
        println!();
    }
    save_results("ablation_features.csv", &csv);
}
