//! Extension: cross-design transfer — train the GCN on one design's
//! fault-injection ground truth, predict criticality on a *different*
//! design with zero fault injection there. This is the paper's economic
//! argument taken one step further (its §3 goal is transfer across
//! *parts of one design*).
//!
//! Usage: `cargo run --release -p fusa-bench --bin transfer [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, save_results};
use fusa_gcn::pipeline::FusaPipeline;
use fusa_neuro::metrics::{auc, Confusion};
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    println!("Cross-design transfer: train on row, evaluate on column (accuracy %).\n");

    // Full analyses (including ground truth) for every design.
    let analyses: Vec<_> = paper_designs()
        .into_iter()
        .map(|netlist| {
            FusaPipeline::new(config.clone())
                .run(&netlist)
                .expect("pipeline runs")
        })
        .collect();

    let names: Vec<String> = analyses.iter().map(|a| a.design_name.clone()).collect();
    print!("{:<14}", "train \\ eval");
    for name in &names {
        print!(" {name:>14}");
    }
    println!();

    let mut csv = String::from("train_design,eval_design,accuracy,auc\n");
    for source in &analyses {
        print!("{:<14}", source.design_name);
        for target in &analyses {
            // Apply the source-trained classifier to the target's graph
            // (features standardized by the target's own statistics —
            // what a user without target ground truth can compute).
            let probabilities = source
                .classifier
                .predict_critical_probability(&target.adjacency, &target.features);
            let predicted: Vec<bool> = probabilities.iter().map(|&p| p >= 0.5).collect();
            let accuracy = Confusion::from_predictions(&predicted, target.labels()).accuracy();
            let roc_auc = auc(&probabilities, target.labels());
            print!(" {:>13.1}%", accuracy * 100.0);
            let _ = writeln!(
                csv,
                "{},{},{:.4},{:.4}",
                source.design_name, target.design_name, accuracy, roc_auc
            );
        }
        println!();
    }
    save_results("transfer.csv", &csv);
    println!("\n(diagonal = in-design whole-graph accuracy; off-diagonal = zero-FI transfer)");
}
