//! Extension: pin-level fault universe. Compares Algorithm-1 node
//! criticality derived from (a) output faults only (the paper's model)
//! and (b) the full collapsed pin-level universe — quantifying how much
//! label churn the finer fault model causes.
//!
//! Usage: `cargo run --release -p fusa-bench --bin pin_faults [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, save_results};
use fusa_faultsim::{FaultCampaign, FaultList};
use fusa_logicsim::WorkloadSuite;
use fusa_neuro::metrics::pearson;
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    println!("Output-only vs collapsed pin-level fault universes.\n");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "design", "out faults", "pin faults", "collapsed", "label agree", "pearson"
    );

    let mut csv = String::from(
        "design,output_faults,site_faults,collapsed_faults,label_agreement,score_pearson\n",
    );
    for netlist in paper_designs() {
        let workloads = WorkloadSuite::generate(&netlist, &config.workloads);
        let campaign = FaultCampaign::new(config.campaign);

        let output_faults = FaultList::all_gate_outputs(&netlist);
        let site_faults = FaultList::all_sites(&netlist);
        let collapsed = site_faults.clone().collapse(&netlist);

        let output_dataset = campaign
            .run(&netlist, &output_faults, &workloads)
            .expect("campaign runs")
            .into_dataset(config.criticality_threshold);
        let pin_dataset = campaign
            .run(&netlist, &collapsed, &workloads)
            .expect("campaign runs")
            .into_dataset(config.criticality_threshold);

        let agreement = output_dataset
            .labels()
            .iter()
            .zip(pin_dataset.labels())
            .filter(|(a, b)| a == b)
            .count() as f64
            / netlist.gate_count() as f64;
        let correlation = pearson(output_dataset.scores(), pin_dataset.scores());

        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>11.1}% {:>10.3}",
            netlist.name(),
            output_faults.len(),
            site_faults.len(),
            collapsed.len(),
            agreement * 100.0,
            correlation
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{:.4},{:.4}",
            netlist.name(),
            output_faults.len(),
            site_faults.len(),
            collapsed.len(),
            agreement,
            correlation
        );
    }
    save_results("pin_faults.csv", &csv);
    println!("\n(high agreement justifies the paper's output-fault node model)");
}
