//! Extension ablation: criticality threshold sweep. Algorithm 1 labels a
//! node critical when its score reaches `th` (the paper fixes 0.5 and
//! notes the choice belongs to the stakeholder); this binary shows how
//! class balance and model accuracy move with `th`.
//!
//! Usage: `cargo run --release -p fusa-bench --bin ablation_threshold [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, save_results};
use fusa_gcn::pipeline::{FusaPipeline, PipelineConfig};
use std::fmt::Write as _;

fn main() {
    let base = config_from_args();
    println!("Criticality threshold sweep (Algorithm 1's th).\n");
    let thresholds = [0.3, 0.4, 0.5, 0.6, 0.7];

    let mut csv = String::from("design,threshold,critical_fraction,accuracy,auc\n");
    for netlist in paper_designs() {
        println!("=== {} ===", netlist.name());
        for &threshold in &thresholds {
            let config = PipelineConfig {
                criticality_threshold: threshold,
                ..base.clone()
            };
            match FusaPipeline::new(config).run(&netlist) {
                Ok(analysis) => {
                    println!(
                        "  th={threshold:.1}: {:>5.1}% critical, accuracy {:.2}%, AUC {:.3}",
                        analysis.dataset.critical_fraction() * 100.0,
                        analysis.evaluation.accuracy * 100.0,
                        analysis.evaluation.auc
                    );
                    let _ = writeln!(
                        csv,
                        "{},{:.2},{:.4},{:.4},{:.4}",
                        netlist.name(),
                        threshold,
                        analysis.dataset.critical_fraction(),
                        analysis.evaluation.accuracy,
                        analysis.evaluation.auc
                    );
                }
                Err(e) => {
                    println!("  th={threshold:.1}: {e}");
                    let _ = writeln!(csv, "{},{:.2},,,", netlist.name(), threshold);
                }
            }
        }
        println!();
    }
    save_results("ablation_threshold.csv", &csv);
}
