//! E7 — §4.2.2 claim: regression scores conform with the classifier on
//! more than 85% of nodes.
//!
//! Also reports the zero-simulation [`StaticRank`] baseline on the same
//! ground truth: the learned regressor must beat (or explain why it
//! ties) a ranking that needs no campaign and no training at all.
//!
//! Usage: `cargo run --release -p fusa-bench --bin conformity [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, run_design, save_results};
use fusa_gcn::{StaticRank, TrainConfig};
use fusa_neuro::metrics::{pearson, spearman};
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("Regression/classification conformity (§4.2.2; paper reports > 85%).\n");

    let mut csv = String::from(
        "design,conformity,pearson_vs_truth,spearman_vs_truth,\
         static_combined_rho,static_testability_rho\n",
    );
    for netlist in paper_designs() {
        let run = run_design(&netlist, &config);
        let (_regressor, predicted_scores) = run.analysis.train_regressor(&TrainConfig {
            epochs: if smoke { 60 } else { 200 },
            ..Default::default()
        });
        let conformity = run.analysis.regression_conformity(&predicted_scores);

        // Correlation of predicted scores against ground-truth scores on
        // validation nodes.
        let truth: Vec<f64> = run
            .analysis
            .split
            .validation
            .iter()
            .map(|&i| run.analysis.dataset.scores()[i])
            .collect();
        let predicted: Vec<f64> = run
            .analysis
            .split
            .validation
            .iter()
            .map(|&i| predicted_scores[i])
            .collect();
        let linear = pearson(&predicted, &truth);
        let rank = spearman(&predicted, &truth);

        // Static structural baseline against the full ground truth: no
        // split, because the ranking never saw any of it.
        let evaluation = StaticRank::compute(&netlist).evaluate(run.analysis.dataset.scores());
        let static_combined = evaluation.combined_rho;
        let static_testability = evaluation
            .channel_rho
            .iter()
            .find(|(name, _)| *name == "testability")
            .map(|&(_, rho)| rho)
            .unwrap_or(f64::NAN);

        println!(
            "  {:<14} conformity {:>5.1}%   pearson {:.3}   spearman {:.3}   static rank {:.3}",
            netlist.name(),
            conformity * 100.0,
            linear,
            rank,
            static_combined,
        );
        let _ = writeln!(
            csv,
            "{},{:.4},{:.4},{:.4},{:.4},{:.4}",
            netlist.name(),
            conformity,
            linear,
            rank,
            static_combined,
            static_testability,
        );
    }
    save_results("conformity.csv", &csv);
}
