//! E7 — §4.2.2 claim: regression scores conform with the classifier on
//! more than 85% of nodes.
//!
//! Usage: `cargo run --release -p fusa-bench --bin conformity [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, run_design, save_results};
use fusa_gcn::TrainConfig;
use fusa_neuro::metrics::{pearson, spearman};
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("Regression/classification conformity (§4.2.2; paper reports > 85%).\n");

    let mut csv = String::from("design,conformity,pearson_vs_truth,spearman_vs_truth\n");
    for netlist in paper_designs() {
        let run = run_design(&netlist, &config);
        let (_regressor, predicted_scores) = run.analysis.train_regressor(&TrainConfig {
            epochs: if smoke { 60 } else { 200 },
            ..Default::default()
        });
        let conformity = run.analysis.regression_conformity(&predicted_scores);

        // Correlation of predicted scores against ground-truth scores on
        // validation nodes.
        let truth: Vec<f64> = run
            .analysis
            .split
            .validation
            .iter()
            .map(|&i| run.analysis.dataset.scores()[i])
            .collect();
        let predicted: Vec<f64> = run
            .analysis
            .split
            .validation
            .iter()
            .map(|&i| predicted_scores[i])
            .collect();
        let linear = pearson(&predicted, &truth);
        let rank = spearman(&predicted, &truth);

        println!(
            "  {:<14} conformity {:>5.1}%   pearson {:.3}   spearman {:.3}",
            netlist.name(),
            conformity * 100.0,
            linear,
            rank
        );
        let _ = writeln!(
            csv,
            "{},{:.4},{:.4},{:.4}",
            netlist.name(),
            conformity,
            linear,
            rank
        );
    }
    save_results("conformity.csv", &csv);
}
