//! Extension ablation: full GCN (Table 1) vs Simplified Graph
//! Convolution (SGC, the paper's reference \[12\]) vs the strongest
//! feature-only baseline. Separates the value of *message passing* from
//! the value of *nonlinear depth*.
//!
//! Usage: `cargo run --release -p fusa-bench --bin ablation_model [-- --smoke]`

use fusa_bench::{config_from_args, paper_designs, run_design, save_results};
use fusa_gcn::sgc::{SgcClassifier, SgcConfig};
use fusa_neuro::metrics::Confusion;
use std::fmt::Write as _;

fn main() {
    let config = config_from_args();
    println!("Model ablation: GCN vs SGC vs best feature-only baseline.\n");
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>14}",
        "design", "GCN", "SGC", "SGC(K=0)", "best baseline"
    );

    let mut csv = String::from("design,gcn,sgc_k4,sgc_k0,best_baseline\n");
    for netlist in paper_designs() {
        let run = run_design(&netlist, &config);
        let analysis = &run.analysis;

        let accuracy_of = |hops: usize| {
            let model = SgcClassifier::train(
                &analysis.adjacency,
                &analysis.features,
                analysis.labels(),
                &analysis.split,
                &SgcConfig {
                    hops,
                    ..Default::default()
                },
            );
            let predictions = model.predict(&analysis.adjacency, &analysis.features);
            let val_predicted: Vec<bool> = analysis
                .split
                .validation
                .iter()
                .map(|&i| predictions[i])
                .collect();
            let val_actual: Vec<bool> = analysis
                .split
                .validation
                .iter()
                .map(|&i| analysis.labels()[i])
                .collect();
            Confusion::from_predictions(&val_predicted, &val_actual).accuracy()
        };
        let sgc_accuracy = accuracy_of(4);
        let sgc_k0_accuracy = accuracy_of(0);
        let best_baseline = run.best_baseline_accuracy();

        println!(
            "{:<14} {:>7.2}% {:>7.2}% {:>7.2}% {:>13.2}%",
            netlist.name(),
            run.gcn_accuracy() * 100.0,
            sgc_accuracy * 100.0,
            sgc_k0_accuracy * 100.0,
            best_baseline * 100.0
        );
        let _ = writeln!(
            csv,
            "{},{:.4},{:.4},{:.4},{:.4}",
            netlist.name(),
            run.gcn_accuracy(),
            sgc_accuracy,
            sgc_k0_accuracy,
            best_baseline
        );
    }
    save_results("ablation_model.csv", &csv);
    println!("\nSGC keeps message passing but removes nonlinearity; K=0 removes both.");
}
