//! E3 — Table 1: the GCN network configuration.
//!
//! Usage: `cargo run -p fusa-bench --bin table1 [-- --smoke]`

use fusa_gcn::{GcnClassifier, GcnConfig};

fn main() {
    let model = GcnClassifier::new(GcnConfig::default());
    println!("Table 1. GCN Network configuration.");
    println!("{}", model.summary());
    println!("trainable parameters: {}", model.parameter_count());
    println!("\nRegression variant (§3.4): output dim 1, no LogSoftmax:");
    let regressor = fusa_gcn::GcnRegressor::new(GcnConfig::default());
    println!("{}", regressor.summary());
}
