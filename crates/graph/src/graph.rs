//! The undirected gate-connectivity graph.

use fusa_netlist::{Driver, GateId, Netlist};
use std::collections::HashSet;

/// The circuit graph of §3.1: nodes are gates, and an undirected edge
/// joins a gate driving a net with every gate reading that net.
///
/// Node ids coincide with [`GateId`] indices, so features, labels and
/// predictions all share the same indexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitGraph {
    node_count: usize,
    /// Deduplicated undirected edges with `a < b`.
    edges: Vec<(usize, usize)>,
    /// Per-node adjacency lists (no self entries).
    neighbors: Vec<Vec<usize>>,
}

impl CircuitGraph {
    /// Builds the graph from a validated netlist.
    pub fn from_netlist(netlist: &Netlist) -> CircuitGraph {
        let _span = fusa_obs::global().span("build");
        let n = netlist.gate_count();
        let mut edge_set: HashSet<(usize, usize)> = HashSet::new();
        for (reader_index, gate) in netlist.gates().iter().enumerate() {
            for &input in &gate.inputs {
                if let Some(Driver::Gate(driver)) = netlist.net(input).driver {
                    let a = driver.index();
                    let b = reader_index;
                    if a != b {
                        edge_set.insert((a.min(b), a.max(b)));
                    }
                }
            }
        }
        let mut edges: Vec<(usize, usize)> = edge_set.into_iter().collect();
        edges.sort_unstable();
        let mut neighbors = vec![Vec::new(); n];
        for &(a, b) in &edges {
            neighbors[a].push(b);
            neighbors[b].push(a);
        }
        for list in &mut neighbors {
            list.sort_unstable();
        }
        CircuitGraph {
            node_count: n,
            edges,
            neighbors,
        }
    }

    /// Number of nodes (gates).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of undirected edges (excluding self-loops).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The undirected edges, `a < b`, sorted.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbours of a node, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.node_count()`.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.neighbors[node]
    }

    /// Graph degree of a node (distinct neighbouring gates).
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.node_count()`.
    pub fn degree(&self, node: usize) -> usize {
        self.neighbors[node].len()
    }

    /// The [`GateId`] corresponding to a node index.
    pub fn gate_id(&self, node: usize) -> GateId {
        GateId(node as u32)
    }

    /// Nodes within `hops` of `center` (including `center`) — the
    /// computation subgraph a `hops`-layer GCN actually sees for one
    /// node's prediction, used by the explainer.
    pub fn k_hop_neighborhood(&self, center: usize, hops: usize) -> Vec<usize> {
        let mut seen = vec![false; self.node_count];
        let mut frontier = vec![center];
        seen[center] = true;
        for _ in 0..hops {
            let mut next = Vec::new();
            for &node in &frontier {
                for &nb in self.neighbors(node) {
                    if !seen[nb] {
                        seen[nb] = true;
                        next.push(nb);
                    }
                }
            }
            frontier = next;
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusa_netlist::{GateKind, NetlistBuilder};

    fn chain3() -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let a = b.primary_input("a");
        let x = b.gate(GateKind::Inv, &[a]);
        let y = b.gate(GateKind::Inv, &[x]);
        let z = b.gate(GateKind::Inv, &[y]);
        b.primary_output("z", z);
        b.finish().unwrap()
    }

    #[test]
    fn chain_topology() {
        let g = CircuitGraph::from_netlist(&chain3());
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn pi_connections_are_not_edges() {
        // Two gates both reading the same primary input share no edge.
        let mut b = NetlistBuilder::new("t");
        let a = b.primary_input("a");
        let x = b.gate(GateKind::Inv, &[a]);
        let y = b.gate(GateKind::Buf, &[a]);
        b.primary_output("x", x);
        b.primary_output("y", y);
        let g = CircuitGraph::from_netlist(&b.finish().unwrap());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn parallel_pins_deduplicate() {
        // A gate reading the same net twice produces one edge.
        let mut b = NetlistBuilder::new("t");
        let a = b.primary_input("a");
        let x = b.gate(GateKind::Inv, &[a]);
        let y = b.gate(GateKind::And2, &[x, x]);
        b.primary_output("y", y);
        let g = CircuitGraph::from_netlist(&b.finish().unwrap());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_feedback_is_not_an_edge() {
        // A flop feeding itself (through no combinational logic) would be
        // a self-loop; those are added during normalization, not here.
        let mut b = NetlistBuilder::new("t");
        let q = b.net("q");
        b.gate_driving("R", GateKind::Dff, &[q], q);
        b.primary_output("q", q);
        let g = CircuitGraph::from_netlist(&b.finish().unwrap());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn k_hop_neighborhood_grows() {
        let g = CircuitGraph::from_netlist(&chain3());
        assert_eq!(g.k_hop_neighborhood(0, 0), vec![0]);
        assert_eq!(g.k_hop_neighborhood(0, 1), vec![0, 1]);
        assert_eq!(g.k_hop_neighborhood(0, 2), vec![0, 1, 2]);
        assert_eq!(g.k_hop_neighborhood(1, 1), vec![0, 1, 2]);
    }

    #[test]
    fn design_graph_is_connected_enough() {
        let netlist = fusa_netlist::designs::or1200_icfsm();
        let g = CircuitGraph::from_netlist(&netlist);
        assert_eq!(g.node_count(), netlist.gate_count());
        // Mean degree in a gate-level netlist is comfortably above 1.
        let mean: f64 =
            (0..g.node_count()).map(|i| g.degree(i) as f64).sum::<f64>() / g.node_count() as f64;
        assert!(mean > 1.5, "mean degree {mean}");
    }
}
