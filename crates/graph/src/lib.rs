//! Netlist-to-graph conversion and node feature extraction (§3.1).
//!
//! * [`CircuitGraph`] — the undirected gate-connectivity graph: one node
//!   per gate, one edge per (driver gate, reader gate) wire;
//! * [`normalized_adjacency`] — the GCN propagation operator
//!   `Â = D^{-1/2}(A+I)D^{-1/2}` of Equation 2;
//! * [`FeatureMatrix`] — the five node features of §3.1 (number of
//!   connections, intrinsic state probability of 0 and of 1, transition
//!   probability, Boolean inverting tag) plus a z-score
//!   [`Standardizer`].
//!
//! # Example
//!
//! ```
//! use fusa_graph::{CircuitGraph, FeatureMatrix, normalized_adjacency};
//! use fusa_logicsim::{SignalStats, SignalStatsConfig};
//! use fusa_netlist::designs::or1200_icfsm;
//!
//! let netlist = or1200_icfsm();
//! let graph = CircuitGraph::from_netlist(&netlist);
//! let adj = normalized_adjacency(&graph);
//! let stats = SignalStats::estimate(&netlist, &SignalStatsConfig::default());
//! let features = FeatureMatrix::extract(&netlist, &stats);
//! assert_eq!(features.matrix().rows(), graph.node_count());
//! assert_eq!(adj.rows(), graph.node_count());
//! ```

pub mod adjacency;
pub mod features;
pub mod graph;

pub use adjacency::{masked_adjacency, normalized_adjacency};
pub use features::{
    feature_names, FeatureMatrix, Standardizer, FEATURE_COUNT, FEATURE_NAMES,
    STRUCTURAL_FEATURE_COUNT, STRUCTURAL_FEATURE_NAMES,
};
pub use graph::CircuitGraph;
