//! Symmetric adjacency normalization (Equation 2 of the paper).

use crate::graph::CircuitGraph;
use fusa_neuro::CsrMatrix;

/// Builds the GCN propagation operator
/// `Â = D̂^{-1/2} (A + I) D̂^{-1/2}`, where `A` is the (symmetric)
/// adjacency of the circuit graph, `I` adds self-loops, and `D̂` is the
/// degree matrix of `A + I`.
///
/// Every row of the result sums to at most 1 and the matrix is symmetric,
/// so repeated propagation neither explodes nor collapses feature scales
/// (§2.1).
///
/// # Example
///
/// ```
/// use fusa_graph::{normalized_adjacency, CircuitGraph};
/// use fusa_netlist::designs::or1200_icfsm;
///
/// let graph = CircuitGraph::from_netlist(&or1200_icfsm());
/// let adj = normalized_adjacency(&graph);
/// assert_eq!(adj.rows(), graph.node_count());
/// // Isolated nodes still carry their self-loop.
/// assert!(adj.nnz() >= graph.node_count());
/// ```
pub fn normalized_adjacency(graph: &CircuitGraph) -> CsrMatrix {
    let _span = fusa_obs::global().span("normalize");
    let n = graph.node_count();
    // Degrees of A + I.
    let degree: Vec<f64> = (0..n).map(|i| (graph.degree(i) + 1) as f64).collect();
    let inv_sqrt: Vec<f64> = degree.iter().map(|&d| 1.0 / d.sqrt()).collect();

    let mut triplets = Vec::with_capacity(n + 2 * graph.edge_count());
    for (i, &inv) in inv_sqrt.iter().enumerate() {
        triplets.push((i, i, inv * inv));
    }
    for &(a, b) in graph.edges() {
        let w = inv_sqrt[a] * inv_sqrt[b];
        triplets.push((a, b, w));
        triplets.push((b, a, w));
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Like [`normalized_adjacency`] but with per-edge weights (self-loops at
/// weight 1), used by the explainer's soft edge mask. `edge_weights` is
/// aligned with [`CircuitGraph::edges`].
///
/// The normalization degrees stay those of the *unweighted* graph so that
/// masking an edge only removes its message, without re-scaling every
/// other message — matching GNNExplainer's masked-adjacency formulation.
///
/// # Panics
///
/// Panics if `edge_weights.len() != graph.edge_count()`.
pub fn masked_adjacency(graph: &CircuitGraph, edge_weights: &[f64]) -> CsrMatrix {
    assert_eq!(
        edge_weights.len(),
        graph.edge_count(),
        "one weight per undirected edge"
    );
    let n = graph.node_count();
    let inv_sqrt: Vec<f64> = (0..n)
        .map(|i| 1.0 / ((graph.degree(i) + 1) as f64).sqrt())
        .collect();
    let mut triplets = Vec::with_capacity(n + 2 * graph.edge_count());
    for (i, &inv) in inv_sqrt.iter().enumerate() {
        triplets.push((i, i, inv * inv));
    }
    for (&(a, b), &w) in graph.edges().iter().zip(edge_weights) {
        let value = w * inv_sqrt[a] * inv_sqrt[b];
        triplets.push((a, b, value));
        triplets.push((b, a, value));
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusa_netlist::{GateKind, NetlistBuilder};

    fn chain3_graph() -> CircuitGraph {
        let mut b = NetlistBuilder::new("chain");
        let a = b.primary_input("a");
        let x = b.gate(GateKind::Inv, &[a]);
        let y = b.gate(GateKind::Inv, &[x]);
        let z = b.gate(GateKind::Inv, &[y]);
        b.primary_output("z", z);
        CircuitGraph::from_netlist(&b.finish().unwrap())
    }

    #[test]
    fn normalization_is_symmetric() {
        let adj = normalized_adjacency(&chain3_graph());
        let dense = adj.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert!((dense.get(r, c) - dense.get(c, r)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn known_values_for_chain() {
        // Degrees of A+I: node0=2, node1=3, node2=2.
        let adj = normalized_adjacency(&chain3_graph());
        assert!((adj.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((adj.get(1, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((adj.get(0, 1) - 1.0 / (2.0f64 * 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(adj.get(0, 2), 0.0);
    }

    #[test]
    fn entries_are_positive_and_at_most_one() {
        let netlist = fusa_netlist::designs::sdram_ctrl();
        let graph = CircuitGraph::from_netlist(&netlist);
        let adj = normalized_adjacency(&graph);
        for r in 0..graph.node_count() {
            let sum: f64 = adj.row_entries(r).map(|(_, v)| v).sum();
            assert!(sum > 0.0, "row {r} has no mass");
            for (c, v) in adj.row_entries(r) {
                assert!(v > 0.0 && v <= 1.0 + 1e-12, "entry ({r},{c}) = {v}");
            }
        }
    }

    #[test]
    fn spectral_norm_bounded_by_one() {
        // The symmetric normalization with self-loops has largest
        // eigenvalue ≤ 1, so repeated propagation never grows the L2
        // norm of a vector.
        let netlist = fusa_netlist::designs::or1200_icfsm();
        let graph = CircuitGraph::from_netlist(&netlist);
        let adj = normalized_adjacency(&graph);
        let n = graph.node_count();
        let mut v = fusa_neuro::Matrix::filled(n, 1, 1.0);
        let initial_norm = v.frobenius_norm();
        for _ in 0..20 {
            v = adj.matmul(&v);
            assert!(
                v.frobenius_norm() <= initial_norm + 1e-9,
                "propagation grew the norm"
            );
        }
    }

    #[test]
    fn zero_mask_leaves_only_self_loops() {
        let graph = chain3_graph();
        let masked = masked_adjacency(&graph, &[0.0, 0.0]);
        assert_eq!(masked.get(0, 1), 0.0);
        assert!(masked.get(0, 0) > 0.0);
    }

    #[test]
    fn full_mask_equals_normalized() {
        let graph = chain3_graph();
        let full = masked_adjacency(&graph, &[1.0, 1.0]);
        let plain = normalized_adjacency(&graph);
        assert_eq!(full.to_dense(), plain.to_dense());
    }

    #[test]
    #[should_panic(expected = "one weight per undirected edge")]
    fn wrong_mask_length_panics() {
        let graph = chain3_graph();
        let _ = masked_adjacency(&graph, &[1.0]);
    }
}
