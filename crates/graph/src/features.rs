//! Node feature extraction (§3.1) and standardization.

use fusa_logicsim::SignalStats;
use fusa_netlist::structural::cost_to_feature;
use fusa_netlist::{GateId, Netlist, StructuralProfile};
use fusa_neuro::Matrix;

/// Number of node features.
pub const FEATURE_COUNT: usize = 5;

/// Feature names in column order, matching Table 2 of the paper.
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "Number of connections",
    "Intrinsic state probability of 0",
    "Intrinsic state probability of 1",
    "State transition probability",
    "Boolean inverting tag",
];

/// Number of optional structural channels appended by
/// [`FeatureMatrix::extract_with_structure`].
pub const STRUCTURAL_FEATURE_COUNT: usize = 6;

/// Names of the structural channels, in column order after
/// [`FEATURE_NAMES`].
pub const STRUCTURAL_FEATURE_NAMES: [&str; STRUCTURAL_FEATURE_COUNT] = [
    "SCOAP 0-controllability (log)",
    "SCOAP 1-controllability (log)",
    "SCOAP observability (log)",
    "Fanout betweenness (log)",
    "PageRank influence",
    "Convergence dominance (log)",
];

/// Column names of a feature matrix with `cols` columns: the paper's
/// base features, optionally followed by the structural channels.
///
/// # Panics
///
/// Panics if `cols` is neither the base width nor the extended width.
pub fn feature_names(cols: usize) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = FEATURE_NAMES.to_vec();
    if cols == FEATURE_COUNT {
        return names;
    }
    assert_eq!(
        cols,
        FEATURE_COUNT + STRUCTURAL_FEATURE_COUNT,
        "unknown feature layout: {cols} columns"
    );
    names.extend(STRUCTURAL_FEATURE_NAMES);
    names
}

/// The `N × 5` node feature matrix of §3.1.
///
/// Column order follows [`FEATURE_NAMES`]:
/// 0. number of connections (fanin pins + fanout readers + PO tap);
/// 1. intrinsic state probability of 0;
/// 2. intrinsic state probability of 1;
/// 3. intrinsic transition probability;
/// 4. Boolean inverting tag (1 for negating cells).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    matrix: Matrix,
}

impl FeatureMatrix {
    /// Extracts raw (unstandardized) features for every gate.
    pub fn extract(netlist: &Netlist, stats: &SignalStats) -> FeatureMatrix {
        let _span = fusa_obs::global().span("extract");
        let n = netlist.gate_count();
        let mut matrix = Matrix::zeros(n, FEATURE_COUNT);
        for i in 0..n {
            fill_base_features(matrix.row_mut(i), netlist, stats, GateId(i as u32));
        }
        FeatureMatrix { matrix }
    }

    /// Extracts the base features plus the simulation-free structural
    /// channels ([`STRUCTURAL_FEATURE_NAMES`]) computed from `profile`.
    ///
    /// SCOAP costs are log-compressed via
    /// [`fusa_netlist::structural::cost_to_feature`] (infinite costs
    /// saturate at a fixed cap); betweenness and dominance are `ln(1+x)`
    /// compressed; PageRank is scaled by the gate count so its mean is 1
    /// regardless of design size.
    pub fn extract_with_structure(
        netlist: &Netlist,
        stats: &SignalStats,
        profile: &StructuralProfile,
    ) -> FeatureMatrix {
        let _span = fusa_obs::global().span("extract");
        let n = netlist.gate_count();
        let mut matrix = Matrix::zeros(n, FEATURE_COUNT + STRUCTURAL_FEATURE_COUNT);
        for i in 0..n {
            let gate_id = GateId(i as u32);
            let row = matrix.row_mut(i);
            fill_base_features(row, netlist, stats, gate_id);
            row[FEATURE_COUNT] = cost_to_feature(profile.gate_cc0(netlist, gate_id));
            row[FEATURE_COUNT + 1] = cost_to_feature(profile.gate_cc1(netlist, gate_id));
            row[FEATURE_COUNT + 2] = cost_to_feature(profile.gate_co(netlist, gate_id));
            row[FEATURE_COUNT + 3] = (1.0 + profile.betweenness[i]).ln();
            row[FEATURE_COUNT + 4] = profile.pagerank[i] * n as f64;
            row[FEATURE_COUNT + 5] = f64::from(1 + profile.dominated[i]).ln();
        }
        FeatureMatrix { matrix }
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.matrix.cols()
    }

    /// The underlying `N × F` matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Consumes self, returning the matrix.
    pub fn into_matrix(self) -> Matrix {
        self.matrix
    }

    /// The raw feature row of one gate.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range.
    pub fn row(&self, gate: GateId) -> &[f64] {
        self.matrix.row(gate.index())
    }
}

/// Fills the paper's five base features into the head of `row`.
fn fill_base_features(row: &mut [f64], netlist: &Netlist, stats: &SignalStats, gate_id: GateId) {
    row[0] = netlist.connection_count(gate_id) as f64;
    row[1] = stats.probability_zero(gate_id);
    row[2] = stats.probability_one(gate_id);
    row[3] = stats.transition_probability(gate_id);
    row[4] = f64::from(netlist.gates()[gate_id.index()].kind.is_inverting());
}

/// Z-score standardizer fitted on training columns and applied to the
/// whole matrix (constant columns pass through unchanged).
///
/// # Example
///
/// ```
/// use fusa_graph::Standardizer;
/// use fusa_neuro::Matrix;
///
/// let x = Matrix::from_rows(&[&[1.0], &[3.0]]);
/// let standardizer = Standardizer::fit(&x);
/// let z = standardizer.transform(&x);
/// assert!((z.get(0, 0) + 1.0).abs() < 1e-12);
/// assert!((z.get(1, 0) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits column means and standard deviations.
    ///
    /// # Panics
    ///
    /// Panics if `x` has zero rows.
    pub fn fit(x: &Matrix) -> Standardizer {
        assert!(x.rows() > 0, "cannot fit on an empty matrix");
        let n = x.rows() as f64;
        let mut mean = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for (c, &v) in x.row(r).iter().enumerate() {
                var[c] += (v - mean[c]).powi(2);
            }
        }
        let std: Vec<f64> = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Standardizer { mean, std }
    }

    /// Applies `(x - mean) / std` column-wise.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.len(), "column count mismatch");
        let mut out = x.clone();
        for r in 0..out.rows() {
            for (c, v) in out.row_mut(r).iter_mut().enumerate() {
                *v = (*v - self.mean[c]) / self.std[c];
            }
        }
        out
    }

    /// Fitted column means.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Fitted column standard deviations (1.0 for constant columns).
    pub fn std(&self) -> &[f64] {
        &self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusa_logicsim::SignalStatsConfig;
    use fusa_netlist::{GateKind, NetlistBuilder};

    fn features_of(netlist: &Netlist) -> FeatureMatrix {
        let stats = SignalStats::estimate(
            netlist,
            &SignalStatsConfig {
                cycles: 200,
                warmup: 8,
                ..Default::default()
            },
        );
        FeatureMatrix::extract(netlist, &stats)
    }

    #[test]
    fn feature_columns_are_labelled() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
        assert_eq!(FEATURE_NAMES[0], "Number of connections");
        assert_eq!(FEATURE_NAMES[4], "Boolean inverting tag");
    }

    #[test]
    fn inverting_tag_and_connections() {
        let mut b = NetlistBuilder::new("t");
        let a = b.primary_input("a");
        let c = b.primary_input("b");
        let x = b.gate(GateKind::Nand2, &[a, c]); // inverting, feeds 1 gate
        let y = b.gate(GateKind::Buf, &[x]); // non-inverting, drives PO
        b.primary_output("y", y);
        let netlist = b.finish().unwrap();
        let features = features_of(&netlist);
        let xrow = features.row(GateId(0));
        assert_eq!(xrow[0], 3.0); // 2 fanin + 1 reader
        assert_eq!(xrow[4], 1.0);
        let yrow = features.row(GateId(1));
        assert_eq!(yrow[0], 2.0); // 1 fanin + PO
        assert_eq!(yrow[4], 0.0);
    }

    #[test]
    fn structural_channels_append_after_base_features() {
        let netlist = fusa_netlist::designs::or1200_icfsm();
        let stats = SignalStats::estimate(
            &netlist,
            &SignalStatsConfig {
                cycles: 200,
                warmup: 8,
                ..Default::default()
            },
        );
        let profile = StructuralProfile::analyze(&netlist);
        let base = FeatureMatrix::extract(&netlist, &stats);
        let extended = FeatureMatrix::extract_with_structure(&netlist, &stats, &profile);
        assert_eq!(base.cols(), FEATURE_COUNT);
        assert_eq!(extended.cols(), FEATURE_COUNT + STRUCTURAL_FEATURE_COUNT);
        for i in 0..netlist.gate_count() {
            let id = GateId(i as u32);
            assert_eq!(&extended.row(id)[..FEATURE_COUNT], base.row(id));
            for &v in &extended.row(id)[FEATURE_COUNT..] {
                assert!(v.is_finite());
            }
        }
        // PageRank channel has mean 1 by construction.
        let n = netlist.gate_count();
        let mean: f64 = (0..n)
            .map(|i| extended.matrix().get(i, FEATURE_COUNT + 4))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 1e-6, "pagerank mean {mean}");
    }

    #[test]
    fn feature_names_cover_both_layouts() {
        assert_eq!(feature_names(FEATURE_COUNT), FEATURE_NAMES.to_vec());
        let extended = feature_names(FEATURE_COUNT + STRUCTURAL_FEATURE_COUNT);
        assert_eq!(extended.len(), FEATURE_COUNT + STRUCTURAL_FEATURE_COUNT);
        assert_eq!(extended[FEATURE_COUNT], STRUCTURAL_FEATURE_NAMES[0]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let netlist = fusa_netlist::designs::or1200_icfsm();
        let features = features_of(&netlist);
        for i in 0..netlist.gate_count() {
            let row = features.matrix().row(i);
            assert!((row[1] + row[2] - 1.0).abs() < 1e-9, "node {i}");
            assert!((0.0..=1.0).contains(&row[3]), "node {i}");
        }
    }

    #[test]
    fn standardizer_zero_mean_unit_std() {
        let netlist = fusa_netlist::designs::or1200_icfsm();
        let features = features_of(&netlist);
        let standardizer = Standardizer::fit(features.matrix());
        let z = standardizer.transform(features.matrix());
        let n = z.rows() as f64;
        for c in 0..FEATURE_COUNT {
            let mean: f64 = (0..z.rows()).map(|r| z.get(r, c)).sum::<f64>() / n;
            assert!(mean.abs() < 1e-9, "column {c} mean {mean}");
        }
    }

    #[test]
    fn constant_column_passes_through() {
        let x = Matrix::from_rows(&[&[5.0, 1.0], &[5.0, 3.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        // Constant column: centered but not divided by ~0.
        assert_eq!(z.get(0, 0), 0.0);
        assert_eq!(z.get(1, 0), 0.0);
        assert!(z.get(1, 1) > 0.0);
    }

    #[test]
    fn transform_applies_training_statistics_to_new_data() {
        let train = Matrix::from_rows(&[&[0.0], &[2.0]]);
        let s = Standardizer::fit(&train);
        let test = Matrix::from_rows(&[&[4.0]]);
        let z = s.transform(&test);
        // mean 1, std 1 -> (4-1)/1 = 3.
        assert!((z.get(0, 0) - 3.0).abs() < 1e-12);
    }
}
