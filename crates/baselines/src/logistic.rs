//! Logistic regression ("LoR" in Figure 3).

use crate::Classifier;
use fusa_neuro::layers::sigmoid;
use fusa_neuro::Matrix;

/// L2-regularized logistic regression trained by full-batch gradient
/// descent.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    weights: Vec<f64>,
    bias: f64,
    #[allow(dead_code)]
    seed: u64,
}

impl LogisticRegression {
    /// Creates an untrained model (the seed is accepted for interface
    /// uniformity; training is deterministic).
    pub fn new(seed: u64) -> LogisticRegression {
        LogisticRegression {
            epochs: 500,
            learning_rate: 0.5,
            l2: 1e-4,
            weights: Vec::new(),
            bias: 0.0,
            seed,
        }
    }

    /// Fitted weights (empty before training).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    fn margin(&self, row: &[f64]) -> f64 {
        self.bias
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(&w, &v)| w * v)
                .sum::<f64>()
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression::new(0)
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "LoR"
    }

    fn fit(&mut self, x: &Matrix, labels: &[bool], train_indices: &[usize]) {
        let _span = fusa_obs::global().span_rooted("baselines/logistic");
        crate::check_fit_inputs(x, labels, train_indices);
        self.weights = vec![0.0; x.cols()];
        self.bias = 0.0;
        let m = train_indices.len() as f64;
        for _ in 0..self.epochs {
            let mut grad_w = vec![0.0; x.cols()];
            let mut grad_b = 0.0;
            for &i in train_indices {
                let row = x.row(i);
                let error = sigmoid(self.margin(row)) - f64::from(labels[i]);
                for (g, &v) in grad_w.iter_mut().zip(row) {
                    *g += error * v;
                }
                grad_b += error;
            }
            for (w, g) in self.weights.iter_mut().zip(&grad_w) {
                *w -= self.learning_rate * (g / m + self.l2 * *w);
            }
            self.bias -= self.learning_rate * grad_b / m;
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows())
            .map(|i| sigmoid(self.margin(x.row(i))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn solves_linear_task() {
        let (x, labels) = testutil::linear_task(300, 11);
        let mut model = LogisticRegression::default();
        let accuracy = testutil::train_accuracy(&mut model, &x, &labels);
        assert!(accuracy > 0.95, "accuracy {accuracy}");
    }

    #[test]
    fn cannot_solve_xor() {
        let (x, labels) = testutil::xor_task(400, 12);
        let mut model = LogisticRegression::default();
        let accuracy = testutil::train_accuracy(&mut model, &x, &labels);
        assert!(
            accuracy < 0.7,
            "linear model should fail XOR, got {accuracy}"
        );
    }

    #[test]
    fn recovered_weights_have_correct_signs() {
        let (x, labels) = testutil::linear_task(400, 13);
        let mut model = LogisticRegression::default();
        let all: Vec<usize> = (0..x.rows()).collect();
        model.fit(&x, &labels, &all);
        // Task: margin = 1.5 f0 - 2.0 f2.
        assert!(model.weights()[0] > 0.0);
        assert!(model.weights()[2] < 0.0);
        assert!(model.weights()[0].abs() > model.weights()[1].abs());
    }

    #[test]
    fn training_subset_is_respected() {
        let (x, labels) = testutil::linear_task(300, 14);
        let mut model = LogisticRegression::default();
        // Train only on the first half.
        let half: Vec<usize> = (0..150).collect();
        model.fit(&x, &labels, &half);
        let predictions = model.predict(&x);
        let test_accuracy =
            (150..300).filter(|&i| predictions[i] == labels[i]).count() as f64 / 150.0;
        assert!(test_accuracy > 0.9, "generalization {test_accuracy}");
    }
}
