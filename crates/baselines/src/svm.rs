//! Support vector machine baseline ("SVM" in Figure 3).

use crate::Classifier;
use fusa_neuro::layers::sigmoid;
use fusa_neuro::Matrix;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A linear soft-margin SVM trained with the Pegasos stochastic
/// sub-gradient algorithm (Shalev-Shwartz et al.), with a logistic link
/// on the margin for probability-like scores.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Regularization parameter λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of stochastic epochs over the training set.
    pub epochs: usize,
    seed: u64,
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Creates an untrained SVM.
    pub fn new(seed: u64) -> LinearSvm {
        LinearSvm {
            lambda: 1e-3,
            epochs: 60,
            seed,
            weights: Vec::new(),
            bias: 0.0,
        }
    }

    /// The separating hyperplane's weights (empty before training).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Signed distance-proportional margin of one row.
    pub fn margin(&self, row: &[f64]) -> f64 {
        self.bias
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(&w, &v)| w * v)
                .sum::<f64>()
    }
}

impl Default for LinearSvm {
    fn default() -> Self {
        LinearSvm::new(0)
    }
}

impl Classifier for LinearSvm {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn fit(&mut self, x: &Matrix, labels: &[bool], train_indices: &[usize]) {
        let _span = fusa_obs::global().span_rooted("baselines/svm");
        crate::check_fit_inputs(x, labels, train_indices);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.weights = vec![0.0; x.cols()];
        self.bias = 0.0;
        let mut t = 0u64;
        for _ in 0..self.epochs {
            let mut order = train_indices.to_vec();
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (self.lambda * t as f64);
                let y = if labels[i] { 1.0 } else { -1.0 };
                let row = x.row(i);
                let margin = self.margin(row);
                // w ← (1 − ηλ)w (+ ηy·x on hinge violation).
                let shrink = 1.0 - eta * self.lambda;
                for w in &mut self.weights {
                    *w *= shrink;
                }
                if y * margin < 1.0 {
                    for (w, &v) in self.weights.iter_mut().zip(row) {
                        *w += eta * y * v;
                    }
                    self.bias += eta * y;
                }
            }
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.weights.is_empty(), "model is trained");
        (0..x.rows())
            .map(|i| sigmoid(self.margin(x.row(i))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn solves_linear_task() {
        let (x, labels) = testutil::linear_task(300, 41);
        let mut model = LinearSvm::default();
        let accuracy = testutil::train_accuracy(&mut model, &x, &labels);
        assert!(accuracy > 0.93, "accuracy {accuracy}");
    }

    #[test]
    fn cannot_solve_xor() {
        let (x, labels) = testutil::xor_task(400, 42);
        let mut model = LinearSvm::default();
        let accuracy = testutil::train_accuracy(&mut model, &x, &labels);
        assert!(accuracy < 0.7, "linear SVM should fail XOR, got {accuracy}");
    }

    #[test]
    fn margin_separates_classes() {
        let (x, labels) = testutil::linear_task(200, 43);
        let mut model = LinearSvm::default();
        let all: Vec<usize> = (0..x.rows()).collect();
        model.fit(&x, &labels, &all);
        let mut pos_margin = 0.0;
        let mut neg_margin = 0.0;
        let mut pos_count = 0;
        let mut neg_count = 0;
        for (i, &label) in labels.iter().enumerate().take(x.rows()) {
            let m = model.margin(x.row(i));
            if label {
                pos_margin += m;
                pos_count += 1;
            } else {
                neg_margin += m;
                neg_count += 1;
            }
        }
        assert!(pos_margin / pos_count as f64 > 0.5);
        assert!((neg_margin / neg_count as f64) < 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, labels) = testutil::linear_task(100, 44);
        let all: Vec<usize> = (0..x.rows()).collect();
        let mut a = LinearSvm::new(9);
        let mut b = LinearSvm::new(9);
        a.fit(&x, &labels, &all);
        b.fit(&x, &labels, &all);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }
}
