//! Explainable Boosting Machine baseline ("EBM" in Figure 3).
//!
//! An EBM is a cyclic gradient-boosted generalized additive model: the
//! logit is a sum of one shape function per feature,
//! `logit(x) = β₀ + Σ_c f_c(x_c)`, where each `f_c` is a piecewise-
//! constant function over a histogram binning of feature `c`. Training
//! cycles round-robin over the features, each round nudging one shape
//! function towards the current logistic-loss residuals — which keeps the
//! model fully interpretable (per-feature contribution plots), the reason
//! the paper includes it.

use crate::Classifier;
use fusa_neuro::layers::sigmoid;
use fusa_neuro::Matrix;

/// One per-feature shape function: equal-width bins over the observed
/// training range.
#[derive(Debug, Clone)]
struct ShapeFunction {
    minimum: f64,
    maximum: f64,
    /// Additive logit contribution per bin.
    contributions: Vec<f64>,
}

impl ShapeFunction {
    fn new(minimum: f64, maximum: f64, bins: usize) -> ShapeFunction {
        ShapeFunction {
            minimum,
            maximum,
            contributions: vec![0.0; bins],
        }
    }

    fn bin(&self, value: f64) -> usize {
        if self.maximum <= self.minimum {
            return 0;
        }
        let normalized = (value - self.minimum) / (self.maximum - self.minimum);
        ((normalized * self.contributions.len() as f64) as usize).min(self.contributions.len() - 1)
    }

    fn evaluate(&self, value: f64) -> f64 {
        self.contributions[self.bin(value)]
    }
}

/// Cyclic-boosting EBM with histogram shape functions.
#[derive(Debug, Clone)]
pub struct ExplainableBoosting {
    /// Histogram bins per feature.
    pub bins: usize,
    /// Boosting rounds (each round updates every feature once).
    pub rounds: usize,
    /// Shrinkage applied to each boosting step.
    pub learning_rate: f64,
    #[allow(dead_code)]
    seed: u64,
    intercept: f64,
    shapes: Vec<ShapeFunction>,
}

impl ExplainableBoosting {
    /// Creates an untrained EBM (the seed is accepted for interface
    /// uniformity; training is deterministic).
    pub fn new(seed: u64) -> ExplainableBoosting {
        ExplainableBoosting {
            bins: 16,
            rounds: 80,
            learning_rate: 0.3,
            seed,
            intercept: 0.0,
            shapes: Vec::new(),
        }
    }

    /// Per-feature logit contributions for one sample — the EBM's
    /// native explanation.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained or `row` width mismatches.
    pub fn feature_contributions(&self, row: &[f64]) -> Vec<f64> {
        assert!(!self.shapes.is_empty(), "model is trained");
        assert_eq!(row.len(), self.shapes.len(), "feature width mismatch");
        self.shapes
            .iter()
            .zip(row)
            .map(|(shape, &v)| shape.evaluate(v))
            .collect()
    }

    fn logit(&self, row: &[f64]) -> f64 {
        self.intercept
            + self
                .shapes
                .iter()
                .zip(row)
                .map(|(shape, &v)| shape.evaluate(v))
                .sum::<f64>()
    }
}

impl Default for ExplainableBoosting {
    fn default() -> Self {
        ExplainableBoosting::new(0)
    }
}

impl Classifier for ExplainableBoosting {
    fn name(&self) -> &'static str {
        "EBM"
    }

    fn fit(&mut self, x: &Matrix, labels: &[bool], train_indices: &[usize]) {
        let _span = fusa_obs::global().span_rooted("baselines/ebm");
        crate::check_fit_inputs(x, labels, train_indices);
        let cols = x.cols();

        // Initialize shapes over the observed training range.
        self.shapes = (0..cols)
            .map(|c| {
                let mut minimum = f64::MAX;
                let mut maximum = f64::MIN;
                for &i in train_indices {
                    minimum = minimum.min(x.get(i, c));
                    maximum = maximum.max(x.get(i, c));
                }
                ShapeFunction::new(minimum, maximum, self.bins)
            })
            .collect();
        let positives = train_indices.iter().filter(|&&i| labels[i]).count();
        let prior = (positives as f64 / train_indices.len() as f64).clamp(1e-6, 1.0 - 1e-6);
        self.intercept = (prior / (1.0 - prior)).ln();

        // Cached per-sample logits, updated incrementally.
        let mut logits: Vec<f64> = train_indices.iter().map(|_| self.intercept).collect();

        for _round in 0..self.rounds {
            for c in 0..cols {
                // Residuals of the logistic loss: y − σ(logit).
                let mut bin_residual = vec![0.0; self.bins];
                let mut bin_count = vec![0usize; self.bins];
                for (k, &i) in train_indices.iter().enumerate() {
                    let bin = self.shapes[c].bin(x.get(i, c));
                    bin_residual[bin] += f64::from(labels[i]) - sigmoid(logits[k]);
                    bin_count[bin] += 1;
                }
                // One Newton-ish step per bin, shrunk by the learning
                // rate (empty bins stay put).
                let mut deltas = vec![0.0; self.bins];
                for b in 0..self.bins {
                    if bin_count[b] > 0 {
                        deltas[b] =
                            self.learning_rate * bin_residual[b] / bin_count[b] as f64 * 4.0;
                    }
                }
                for (d, delta) in self.shapes[c].contributions.iter_mut().zip(&deltas) {
                    *d += delta;
                }
                for (k, &i) in train_indices.iter().enumerate() {
                    logits[k] += deltas[self.shapes[c].bin(x.get(i, c))];
                }
            }
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.shapes.is_empty(), "model is trained");
        (0..x.rows())
            .map(|i| sigmoid(self.logit(x.row(i))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn solves_linear_task() {
        let (x, labels) = testutil::linear_task(300, 51);
        let mut model = ExplainableBoosting::default();
        let accuracy = testutil::train_accuracy(&mut model, &x, &labels);
        assert!(accuracy > 0.9, "accuracy {accuracy}");
    }

    #[test]
    fn additive_model_cannot_solve_xor() {
        // XOR has zero main effects: a GAM without interactions fails.
        let (x, labels) = testutil::xor_task(500, 52);
        let mut model = ExplainableBoosting::default();
        let accuracy = testutil::train_accuracy(&mut model, &x, &labels);
        assert!(
            accuracy < 0.75,
            "EBM without pairs should fail XOR, got {accuracy}"
        );
    }

    #[test]
    fn contributions_identify_informative_features() {
        let (x, labels) = testutil::linear_task(400, 53);
        let mut model = ExplainableBoosting::default();
        let all: Vec<usize> = (0..x.rows()).collect();
        model.fit(&x, &labels, &all);
        // Range (max-min) of each shape function ~ feature importance.
        let mut spans = vec![0.0f64; 4];
        for i in 0..x.rows() {
            let contributions = model.feature_contributions(x.row(i));
            for (s, &c) in spans.iter_mut().zip(&contributions) {
                *s = s.max(c.abs());
            }
        }
        // Task uses f0 and f2 only.
        assert!(spans[0] > spans[1], "spans {spans:?}");
        assert!(spans[2] > spans[3], "spans {spans:?}");
    }

    #[test]
    fn constant_feature_contributes_nothing_harmful() {
        let x = Matrix::from_rows(&[&[1.0, 0.2], &[1.0, 0.8], &[1.0, 0.3], &[1.0, 0.9]]);
        let labels = [false, true, false, true];
        let mut model = ExplainableBoosting::default();
        model.fit(&x, &labels, &[0, 1, 2, 3]);
        assert_eq!(model.predict(&x), vec![false, true, false, true]);
    }

    #[test]
    fn intercept_matches_class_prior_before_boosting() {
        let mut model = ExplainableBoosting {
            rounds: 0,
            ..ExplainableBoosting::new(0)
        };
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let labels = [true, true, true, false];
        model.fit(&x, &labels, &[0, 1, 2, 3]);
        let p = model.predict_proba(&x)[0];
        assert!((p - 0.75).abs() < 1e-9, "prior {p}");
    }
}
