//! Multi-layer perceptron baseline ("MLP" in Figure 3).

use crate::Classifier;
use fusa_neuro::layers::{sigmoid, Dense, Relu};
use fusa_neuro::optim::Adam;
use fusa_neuro::Matrix;

/// A two-hidden-layer perceptron with ReLU activations and a logistic
/// output, trained with Adam on binary cross-entropy.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Hidden layer widths.
    pub hidden: (usize, usize),
    /// Training epochs (full-batch).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    seed: u64,
    layers: Option<(Dense, Relu, Dense, Relu, Dense)>,
}

impl Mlp {
    /// Creates an untrained MLP.
    pub fn new(seed: u64) -> Mlp {
        Mlp {
            hidden: (32, 16),
            epochs: 400,
            learning_rate: 0.01,
            seed,
            layers: None,
        }
    }

    fn forward_scores(&self, x: &Matrix) -> Vec<f64> {
        let (l1, _, l2, _, l3) = self.layers.as_ref().expect("model is trained");
        let h1 = l1.forward_inference(x).map(|v| v.max(0.0));
        let h2 = l2.forward_inference(&h1).map(|v| v.max(0.0));
        let out = l3.forward_inference(&h2);
        (0..out.rows()).map(|r| sigmoid(out.get(r, 0))).collect()
    }
}

impl Default for Mlp {
    fn default() -> Self {
        Mlp::new(0)
    }
}

impl Classifier for Mlp {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn fit(&mut self, x: &Matrix, labels: &[bool], train_indices: &[usize]) {
        let _span = fusa_obs::global().span_rooted("baselines/mlp");
        crate::check_fit_inputs(x, labels, train_indices);
        // Gather the training submatrix.
        let rows: Vec<&[f64]> = train_indices.iter().map(|&i| x.row(i)).collect();
        let train_x = Matrix::from_rows(&rows);
        let train_y: Vec<f64> = train_indices
            .iter()
            .map(|&i| f64::from(labels[i]))
            .collect();

        let mut l1 = Dense::new(x.cols(), self.hidden.0, self.seed);
        let mut r1 = Relu::new();
        let mut l2 = Dense::new(self.hidden.0, self.hidden.1, self.seed.wrapping_add(1));
        let mut r2 = Relu::new();
        let mut l3 = Dense::new(self.hidden.1, 1, self.seed.wrapping_add(2));
        let mut optimizer = Adam::new(self.learning_rate);
        let m = train_indices.len() as f64;

        for _ in 0..self.epochs {
            let h1 = r1.forward(&l1.forward(&train_x));
            let h2 = r2.forward(&l2.forward(&h1));
            let out = l3.forward(&h2);

            // BCE through the logistic link: ∂L/∂logit = σ(z) - y.
            let mut grad = Matrix::zeros(out.rows(), 1);
            for (r, &y) in train_y.iter().enumerate().take(out.rows()) {
                grad.set(r, 0, (sigmoid(out.get(r, 0)) - y) / m);
            }

            for p in l1
                .params_mut()
                .into_iter()
                .chain(l2.params_mut())
                .chain(l3.params_mut())
            {
                p.zero_grad();
            }
            let g = l3.backward(&grad);
            let g = r2.backward(&g);
            let g = l2.backward(&g);
            let g = r1.backward(&g);
            let _ = l1.backward(&g);

            let mut params = l1.params_mut();
            params.extend(l2.params_mut());
            params.extend(l3.params_mut());
            optimizer.step(&mut params);
        }
        self.layers = Some((l1, r1, l2, r2, l3));
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.forward_scores(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn solves_linear_task() {
        let (x, labels) = testutil::linear_task(300, 21);
        let mut model = Mlp::default();
        let accuracy = testutil::train_accuracy(&mut model, &x, &labels);
        assert!(accuracy > 0.93, "accuracy {accuracy}");
    }

    #[test]
    fn solves_xor_unlike_linear_models() {
        let (x, labels) = testutil::xor_task(400, 22);
        let mut model = Mlp::new(5);
        let accuracy = testutil::train_accuracy(&mut model, &x, &labels);
        assert!(accuracy > 0.9, "MLP should solve XOR, got {accuracy}");
    }

    #[test]
    #[should_panic(expected = "model is trained")]
    fn predicting_before_fit_panics() {
        let model = Mlp::default();
        let x = Matrix::zeros(1, 2);
        let _ = model.predict_proba(&x);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, labels) = testutil::linear_task(100, 23);
        let all: Vec<usize> = (0..x.rows()).collect();
        let mut a = Mlp::new(7);
        let mut b = Mlp::new(7);
        a.fit(&x, &labels, &all);
        b.fit(&x, &labels, &all);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }
}
