//! Feature-only baseline classifiers (Figure 3 / Figure 4 comparators).
//!
//! The paper compares its GCN against five conventional ML models that
//! see node features but not graph structure: a multi-layer perceptron,
//! logistic regression, a random forest, a support vector machine and an
//! Explainable Boosting Machine. All five are implemented here from
//! scratch behind the common [`Classifier`] trait so the benchmark
//! harness can sweep them uniformly.
//!
//! # Example
//!
//! ```
//! use fusa_baselines::{Classifier, LogisticRegression};
//! use fusa_neuro::Matrix;
//!
//! let x = Matrix::from_rows(&[&[0.0], &[1.0], &[0.1], &[0.9]]);
//! let y = [false, true, false, true];
//! let mut model = LogisticRegression::default();
//! model.fit(&x, &y, &[0, 1, 2, 3]);
//! assert_eq!(model.predict(&x), vec![false, true, false, true]);
//! ```

pub mod ebm;
pub mod forest;
pub mod logistic;
pub mod mlp;
pub mod svm;

pub use ebm::ExplainableBoosting;
pub use forest::RandomForest;
pub use logistic::LogisticRegression;
pub use mlp::Mlp;
pub use svm::LinearSvm;

use fusa_neuro::Matrix;

/// A feature-only binary classifier.
///
/// Implementations train on the rows of `x` selected by `train_indices`
/// and score every row at prediction time (mirroring how the GCN is
/// trained on a node split but evaluated graph-wide).
pub trait Classifier {
    /// Short display name used in figures (e.g. `"LoR"`).
    fn name(&self) -> &'static str;

    /// Fits the model on the selected training rows.
    ///
    /// # Panics
    ///
    /// Implementations panic if `labels.len() != x.rows()` or an index
    /// is out of range.
    fn fit(&mut self, x: &Matrix, labels: &[bool], train_indices: &[usize]);

    /// Positive-class probability (or a monotone score in `[0, 1]`) for
    /// every row of `x`.
    fn predict_proba(&self, x: &Matrix) -> Vec<f64>;

    /// Hard predictions at the 0.5 probability threshold.
    fn predict(&self, x: &Matrix) -> Vec<bool> {
        self.predict_proba(x).iter().map(|&p| p >= 0.5).collect()
    }
}

/// Instantiates all five baselines with the given seed.
pub fn all_baselines(seed: u64) -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(Mlp::new(seed)),
        Box::new(LogisticRegression::new(seed)),
        Box::new(RandomForest::new(seed)),
        Box::new(LinearSvm::new(seed)),
        Box::new(ExplainableBoosting::new(seed)),
    ]
}

/// Validation helper shared by the implementations.
pub(crate) fn check_fit_inputs(x: &Matrix, labels: &[bool], train_indices: &[usize]) {
    assert_eq!(labels.len(), x.rows(), "label count mismatch");
    assert!(!train_indices.is_empty(), "empty training set");
    for &i in train_indices {
        assert!(i < x.rows(), "training index {i} out of range");
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use fusa_neuro::Matrix;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    /// A feature-separable binary task: class follows the sign of a
    /// noisy linear combination of two of the four features.
    pub fn linear_task(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let f: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let margin = 1.5 * f[0] - 2.0 * f[2] + rng.gen_range(-0.2..0.2);
            labels.push(margin > 0.0);
            rows.push(f);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), labels)
    }

    /// An XOR-style task only nonlinear models can solve.
    pub fn xor_task(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            labels.push((a > 0.0) != (b > 0.0));
            rows.push(vec![a, b]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), labels)
    }

    pub fn train_accuracy(model: &mut dyn crate::Classifier, x: &Matrix, labels: &[bool]) -> f64 {
        let all: Vec<usize> = (0..x.rows()).collect();
        model.fit(x, labels, &all);
        let predictions = model.predict(x);
        predictions
            .iter()
            .zip(labels)
            .filter(|(p, a)| p == a)
            .count() as f64
            / labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_have_distinct_names() {
        let models = all_baselines(1);
        let names: std::collections::HashSet<&str> = models.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn every_baseline_learns_a_linear_task() {
        let (x, labels) = testutil::linear_task(300, 9);
        for mut model in all_baselines(3) {
            let accuracy = testutil::train_accuracy(model.as_mut(), &x, &labels);
            assert!(
                accuracy > 0.85,
                "{} got {accuracy} on the linear task",
                model.name()
            );
        }
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (x, labels) = testutil::linear_task(120, 2);
        for mut model in all_baselines(5) {
            let all: Vec<usize> = (0..x.rows()).collect();
            model.fit(&x, &labels, &all);
            for p in model.predict_proba(&x) {
                assert!((0.0..=1.0).contains(&p), "{}: {p}", model.name());
            }
        }
    }
}
