//! Random forest baseline ("RFC" in Figure 3).

use crate::Classifier;
use fusa_neuro::Matrix;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A CART decision tree node.
#[derive(Debug, Clone)]
enum TreeNode {
    Leaf {
        /// Fraction of positive training samples reaching this leaf.
        probability: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<TreeNode>,
        right: Box<TreeNode>,
    },
}

impl TreeNode {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            TreeNode::Leaf { probability } => *probability,
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    left.predict(row)
                } else {
                    right.predict(row)
                }
            }
        }
    }
}

/// A bootstrap-aggregated ensemble of Gini-split decision trees with
/// per-split feature subsampling.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub num_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    seed: u64,
    trees: Vec<TreeNode>,
}

impl RandomForest {
    /// Creates an untrained forest.
    pub fn new(seed: u64) -> RandomForest {
        RandomForest {
            num_trees: 50,
            max_depth: 8,
            min_samples_split: 4,
            seed,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees (0 before training).
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest::new(0)
    }
}

fn gini(positive: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = positive as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

/// Shared, immutable inputs of one tree induction, so the recursion
/// only threads the per-node state (samples, depth, RNG).
struct TreeBuilder<'a> {
    x: &'a Matrix,
    labels: &'a [bool],
    max_depth: usize,
    min_samples_split: usize,
    features_per_split: usize,
}

impl TreeBuilder<'_> {
    fn build(&self, samples: &[usize], depth: usize, rng: &mut ChaCha8Rng) -> TreeNode {
        let TreeBuilder {
            x,
            labels,
            max_depth,
            min_samples_split,
            features_per_split,
        } = *self;
        let positives = samples.iter().filter(|&&i| labels[i]).count();
        let probability = positives as f64 / samples.len().max(1) as f64;
        if depth >= max_depth
            || samples.len() < min_samples_split
            || positives == 0
            || positives == samples.len()
        {
            return TreeNode::Leaf { probability };
        }

        // Candidate features for this split.
        let mut feature_pool: Vec<usize> = (0..x.cols()).collect();
        feature_pool.shuffle(rng);
        feature_pool.truncate(features_per_split.max(1));

        let parent_impurity = gini(positives, samples.len());
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for &feature in &feature_pool {
            // Sort samples by the feature and scan split points.
            let mut values: Vec<(f64, bool)> = samples
                .iter()
                .map(|&i| (x.get(i, feature), labels[i]))
                .collect();
            values.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN features"));
            let total = values.len();
            let total_pos = positives;
            let mut left_pos = 0usize;
            for k in 1..total {
                if values[k - 1].1 {
                    left_pos += 1;
                }
                if values[k].0 == values[k - 1].0 {
                    continue;
                }
                let left_n = k;
                let right_n = total - k;
                let right_pos = total_pos - left_pos;
                let weighted = (left_n as f64 * gini(left_pos, left_n)
                    + right_n as f64 * gini(right_pos, right_n))
                    / total as f64;
                let gain = parent_impurity - weighted;
                let threshold = (values[k - 1].0 + values[k].0) / 2.0;
                if best.map(|(g, _, _)| gain > g).unwrap_or(gain > 1e-12) {
                    best = Some((gain, feature, threshold));
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            return TreeNode::Leaf { probability };
        };
        let (left_samples, right_samples): (Vec<usize>, Vec<usize>) = samples
            .iter()
            .partition(|&&i| x.get(i, feature) <= threshold);
        if left_samples.is_empty() || right_samples.is_empty() {
            return TreeNode::Leaf { probability };
        }
        TreeNode::Split {
            feature,
            threshold,
            left: Box::new(self.build(&left_samples, depth + 1, rng)),
            right: Box::new(self.build(&right_samples, depth + 1, rng)),
        }
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RFC"
    }

    fn fit(&mut self, x: &Matrix, labels: &[bool], train_indices: &[usize]) {
        let _span = fusa_obs::global().span_rooted("baselines/forest");
        crate::check_fit_inputs(x, labels, train_indices);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let features_per_split = (x.cols() as f64).sqrt().ceil() as usize;
        self.trees = (0..self.num_trees)
            .map(|_| {
                // Bootstrap sample of the training indices.
                let bootstrap: Vec<usize> = (0..train_indices.len())
                    .map(|_| train_indices[rng.gen_range(0..train_indices.len())])
                    .collect();
                TreeBuilder {
                    x,
                    labels,
                    max_depth: self.max_depth,
                    min_samples_split: self.min_samples_split,
                    features_per_split,
                }
                .build(&bootstrap, 0, &mut rng)
            })
            .collect();
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "model is trained");
        (0..x.rows())
            .map(|i| {
                let row = x.row(i);
                self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn solves_linear_task() {
        let (x, labels) = testutil::linear_task(300, 31);
        let mut model = RandomForest::default();
        let accuracy = testutil::train_accuracy(&mut model, &x, &labels);
        assert!(accuracy > 0.93, "accuracy {accuracy}");
    }

    #[test]
    fn solves_xor() {
        let (x, labels) = testutil::xor_task(400, 32);
        let mut model = RandomForest::new(3);
        let accuracy = testutil::train_accuracy(&mut model, &x, &labels);
        assert!(
            accuracy > 0.9,
            "forest should carve out XOR, got {accuracy}"
        );
    }

    #[test]
    fn builds_requested_number_of_trees() {
        let (x, labels) = testutil::linear_task(60, 33);
        let mut model = RandomForest {
            num_trees: 7,
            ..RandomForest::new(1)
        };
        let all: Vec<usize> = (0..x.rows()).collect();
        model.fit(&x, &labels, &all);
        assert_eq!(model.tree_count(), 7);
    }

    #[test]
    fn pure_leaf_stops_splitting() {
        // All-positive data yields a single leaf with probability 1.
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let labels = [true, true, true];
        let mut model = RandomForest {
            num_trees: 1,
            ..RandomForest::new(0)
        };
        model.fit(&x, &labels, &[0, 1, 2]);
        assert_eq!(model.predict_proba(&x), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, labels) = testutil::linear_task(100, 34);
        let all: Vec<usize> = (0..x.rows()).collect();
        let mut a = RandomForest::new(9);
        let mut b = RandomForest::new(9);
        a.fit(&x, &labels, &all);
        b.fit(&x, &labels, &all);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }
}
