//! Differential tests: a campaign that is interrupted mid-run,
//! checkpointed, and resumed must be bit-identical to one that ran
//! uninterrupted — across thread counts, cone restriction and early
//! exit, on random netlists.
//!
//! Interruption is injected deterministically with
//! [`FaultInjection::interrupt_after_units`] (no process-global signal
//! state), so shrinking stays meaningful when a case fails.

use fusa_faultsim::{
    CampaignConfig, CampaignReport, DurabilityConfig, FaultCampaign, FaultInjection, FaultList,
};
use fusa_logicsim::{WorkloadConfig, WorkloadSuite};
use fusa_netlist::designs::{random_netlist, RandomNetlistConfig};
use fusa_netlist::Netlist;
use proptest::prelude::*;
use std::path::PathBuf;

fn workloads_for(netlist: &Netlist, seed: u64) -> WorkloadSuite {
    WorkloadSuite::generate(
        netlist,
        &WorkloadConfig {
            num_workloads: 2,
            vectors_per_workload: 24,
            reset_cycles: 0,
            seed,
        },
    )
}

/// A collision-free checkpoint path per proptest case (cases from
/// different test binaries and shrink iterations must not share files).
fn checkpoint_path(tag: &str, seed: u64, threads: usize, cone: bool, early: bool) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fusa_durability_eq_{}_{tag}_{seed:x}_{threads}_{cone}_{early}.jsonl",
        std::process::id()
    ))
}

fn assert_reports_identical(context: &str, reference: &CampaignReport, candidate: &CampaignReport) {
    let (a, b) = (reference.workload_reports(), candidate.workload_reports());
    assert_eq!(a.len(), b.len(), "{context}: workload count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.workload_name, y.workload_name,
            "{context}: workload order"
        );
        assert_eq!(
            x.outcomes, y.outcomes,
            "{context}: outcomes differ in workload {}",
            x.workload_name
        );
        assert_eq!(
            x.first_divergence, y.first_divergence,
            "{context}: first_divergence differs in workload {}",
            x.workload_name
        );
    }
    // The digested summary must agree too: resume state leaks into the
    // stable text only through outcomes, never through bookkeeping.
    assert_eq!(
        reference.summary_opts(false),
        candidate.summary_opts(false),
        "{context}: stable summary"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Interrupt after K units, then resume from the checkpoint: the
    /// stitched-together report is bit-identical to an uninterrupted
    /// run with the same acceleration configuration.
    #[test]
    fn interrupted_then_resumed_campaign_is_bit_identical(
        seed in 0u64..1u64 << 48,
        num_gates in 40usize..100,
        sequential_fraction in 0.05f64..0.4,
        interrupt_fraction in 0.1f64..0.9,
        threads in 1usize..4,
        restrict_to_cone in any::<bool>(),
        early_exit in any::<bool>(),
    ) {
        let netlist = random_netlist(&RandomNetlistConfig {
            num_inputs: 6,
            num_gates,
            sequential_fraction,
            num_outputs: 5,
            seed,
        });
        let faults = FaultList::all_sites(&netlist);
        let workloads = workloads_for(&netlist, seed ^ 0xD0_4A8);
        let config = CampaignConfig {
            threads,
            classify_latent: true,
            min_divergence_fraction: 0.0,
            restrict_to_cone,
            early_exit,
            ..CampaignConfig::default()
        };

        let reference = FaultCampaign::new(config)
            .run(&netlist, &faults, &workloads)
            .expect("reference campaign runs");
        let unit_count = workloads.workloads().len() * faults.len().div_ceil(64);
        let after = ((unit_count as f64 * interrupt_fraction) as usize).clamp(1, unit_count - 1);

        let path = checkpoint_path("resume", seed, threads, restrict_to_cone, early_exit);
        let _ = std::fs::remove_file(&path);

        let partial = FaultCampaign::new(config)
            .with_durability(DurabilityConfig {
                checkpoint: Some(path.clone()),
                ..Default::default()
            })
            .with_injection(FaultInjection {
                interrupt_after_units: Some(after),
                ..Default::default()
            })
            .run(&netlist, &faults, &workloads)
            .expect("interrupted campaign still returns a report");
        prop_assert!(partial.interrupted(), "after={after}/{unit_count}");
        prop_assert!(partial.stats().units_skipped > 0 || threads > 1);

        let resumed = FaultCampaign::new(config)
            .with_durability(DurabilityConfig {
                checkpoint: Some(path.clone()),
                resume: true,
                ..Default::default()
            })
            .run(&netlist, &faults, &workloads)
            .expect("resumed campaign runs");
        prop_assert!(!resumed.interrupted());
        prop_assert!(resumed.stats().units_from_checkpoint >= after.min(unit_count));

        assert_reports_identical(
            &format!(
                "seed={seed:x} after={after}/{unit_count} threads={threads} \
                 cone={restrict_to_cone} early_exit={early_exit}"
            ),
            &reference,
            &resumed,
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Quarantining a unit never corrupts the rest of the campaign: all
    /// other units match the reference bit for bit, and a subsequent
    /// resume from the same checkpoint re-simulates only the quarantined
    /// unit — converging on the full clean report.
    #[test]
    fn quarantine_is_isolated_and_resume_heals_it(
        seed in 0u64..1u64 << 48,
        num_gates in 40usize..100,
        threads in 1usize..4,
    ) {
        let netlist = random_netlist(&RandomNetlistConfig {
            num_inputs: 6,
            num_gates,
            sequential_fraction: 0.2,
            num_outputs: 5,
            seed,
        });
        let faults = FaultList::all_sites(&netlist);
        let workloads = workloads_for(&netlist, seed ^ 0x9_B1D);
        let config = CampaignConfig {
            threads,
            classify_latent: false,
            min_divergence_fraction: 0.0,
            restrict_to_cone: true,
            early_exit: true,
            ..CampaignConfig::default()
        };
        let unit_count = workloads.workloads().len() * faults.len().div_ceil(64);
        let bad_unit = (seed as usize) % unit_count;

        let reference = FaultCampaign::new(config)
            .run(&netlist, &faults, &workloads)
            .expect("reference campaign runs");

        let path = checkpoint_path("heal", seed, threads, true, true);
        let _ = std::fs::remove_file(&path);
        let degraded = FaultCampaign::new(config)
            .with_durability(DurabilityConfig {
                checkpoint: Some(path.clone()),
                max_unit_retries: 1,
                ..Default::default()
            })
            .with_injection(FaultInjection {
                panic_units: vec![bad_unit],
                ..Default::default()
            })
            .run(&netlist, &faults, &workloads)
            .expect("degraded campaign completes");
        prop_assert!(!degraded.interrupted());
        prop_assert_eq!(degraded.quarantined().len(), 1);
        prop_assert_eq!(degraded.quarantined()[0].unit, bad_unit);
        prop_assert_eq!(degraded.quarantined()[0].attempts, 2u32);

        // Every non-quarantined unit's outcomes match the reference: the
        // panicking unit contaminated nothing.
        let chunk_count = faults.len().div_ceil(64);
        for (w, (x, y)) in reference
            .workload_reports()
            .iter()
            .zip(degraded.workload_reports())
            .enumerate()
        {
            for (i, (a, b)) in x.outcomes.iter().zip(&y.outcomes).enumerate() {
                let unit = w * chunk_count + i / 64;
                if unit != bad_unit {
                    prop_assert_eq!(a, b, "workload {} fault {}", w, i);
                }
            }
        }

        // Resume (injection disarmed): only the quarantined unit is
        // missing from the checkpoint, so the healed run equals the
        // clean reference exactly.
        let healed = FaultCampaign::new(config)
            .with_durability(DurabilityConfig {
                checkpoint: Some(path.clone()),
                resume: true,
                ..Default::default()
            })
            .run(&netlist, &faults, &workloads)
            .expect("healed campaign runs");
        prop_assert_eq!(healed.quarantined().len(), 0);
        prop_assert_eq!(healed.stats().units_from_checkpoint, unit_count - 1);
        assert_reports_identical(
            &format!("seed={seed:x} bad_unit={bad_unit} threads={threads}"),
            &reference,
            &healed,
        );
        let _ = std::fs::remove_file(&path);
    }
}
