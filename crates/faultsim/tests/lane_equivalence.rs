//! Differential tests: the wide `[u64; W]` structure-of-arrays kernel
//! must be bit-identical to the legacy scalar `u64` path.
//!
//! The proptest generates random sequential netlists, injects every
//! stuck-at site (gate outputs *and* input pins), and compares every
//! `FaultOutcome` and every `first_divergence` cycle between the scalar
//! reference (`lane_words: 0`) and each wide width, across thread
//! counts and the cone/early-exit accelerations. A second property
//! checks durability: a checkpoint written at one lane width resumes
//! bit-identically at another, because the checkpoint unit is always
//! the 64-fault chunk regardless of how many chunks a pass packs.

use fusa_faultsim::{
    CampaignConfig, CampaignReport, DurabilityConfig, FaultCampaign, FaultInjection, FaultList,
};
use fusa_logicsim::{WorkloadConfig, WorkloadSuite};
use fusa_netlist::designs::{random_netlist, RandomNetlistConfig};
use fusa_netlist::Netlist;
use proptest::prelude::*;

fn workloads_for(netlist: &Netlist, seed: u64) -> WorkloadSuite {
    WorkloadSuite::generate(
        netlist,
        &WorkloadConfig {
            num_workloads: 2,
            vectors_per_workload: 24,
            reset_cycles: 0,
            seed,
        },
    )
}

fn run_with(
    netlist: &Netlist,
    faults: &FaultList,
    workloads: &WorkloadSuite,
    threads: usize,
    restrict_to_cone: bool,
    early_exit: bool,
    lane_words: usize,
) -> CampaignReport {
    FaultCampaign::new(CampaignConfig {
        threads,
        classify_latent: true,
        min_divergence_fraction: 0.0,
        restrict_to_cone,
        early_exit,
        lane_words,
        shard: None,
    })
    .run(netlist, faults, workloads)
    .expect("campaign runs")
}

fn assert_reports_identical(context: &str, reference: &CampaignReport, candidate: &CampaignReport) {
    let (a, b) = (reference.workload_reports(), candidate.workload_reports());
    assert_eq!(a.len(), b.len(), "{context}: workload count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.workload_name, y.workload_name,
            "{context}: workload order"
        );
        assert_eq!(
            x.outcomes, y.outcomes,
            "{context}: outcomes differ in workload {}",
            x.workload_name
        );
        assert_eq!(
            x.first_divergence, y.first_divergence,
            "{context}: first_divergence differs in workload {}",
            x.workload_name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Every wide width, under every acceleration combination and
    /// thread count, reproduces the scalar kernel bit for bit — on
    /// random netlists over every stuck-at site including input pins.
    #[test]
    fn wide_kernel_is_bit_identical_to_scalar(
        seed in 0u64..1u64 << 48,
        num_gates in 40usize..120,
        sequential_fraction in 0.05f64..0.4,
    ) {
        let netlist = random_netlist(&RandomNetlistConfig {
            num_inputs: 6,
            num_gates,
            sequential_fraction,
            num_outputs: 5,
            seed,
        });
        let faults = FaultList::all_sites(&netlist);
        let workloads = workloads_for(&netlist, seed ^ 0x1A9E5);

        let reference = run_with(&netlist, &faults, &workloads, 1, false, false, 0);
        for lane_words in [1usize, 4, 8] {
            for threads in [1usize, 4] {
                for (restrict_to_cone, early_exit) in [(false, false), (true, true)] {
                    let candidate = run_with(
                        &netlist, &faults, &workloads,
                        threads, restrict_to_cone, early_exit, lane_words,
                    );
                    assert_reports_identical(
                        &format!(
                            "W={lane_words} threads={threads} cone={restrict_to_cone} early_exit={early_exit}"
                        ),
                        &reference,
                        &candidate,
                    );
                }
            }
        }
    }

    /// A `--lanes 512` (`lane_words: 8`) resume of a checkpoint written
    /// by a `--lanes 64` (`lane_words: 1`) run is bit-identical to an
    /// uninterrupted scalar campaign, wherever the interruption lands.
    #[test]
    fn resume_across_lane_widths_is_bit_identical(
        seed in 0u64..1u64 << 48,
        num_gates in 40usize..100,
        interrupt_after in 1usize..6,
    ) {
        let netlist = random_netlist(&RandomNetlistConfig {
            num_inputs: 6,
            num_gates,
            sequential_fraction: 0.2,
            num_outputs: 5,
            seed,
        });
        let faults = FaultList::all_sites(&netlist);
        let workloads = workloads_for(&netlist, seed ^ 0xCAFE);
        let reference = run_with(&netlist, &faults, &workloads, 1, false, false, 0);

        let path = std::env::temp_dir().join(format!(
            "fusa_lane_equivalence_{}_{seed:x}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let partial = FaultCampaign::new(CampaignConfig {
            threads: 1,
            lane_words: 1,
            ..CampaignConfig::default()
        })
        .with_durability(DurabilityConfig {
            checkpoint: Some(path.clone()),
            ..DurabilityConfig::default()
        })
        .with_injection(FaultInjection {
            interrupt_after_units: Some(interrupt_after),
            ..FaultInjection::default()
        })
        .run(&netlist, &faults, &workloads)
        .expect("partial campaign runs");
        prop_assert!(partial.interrupted());

        let resumed = FaultCampaign::new(CampaignConfig {
            threads: 2,
            lane_words: 8,
            ..CampaignConfig::default()
        })
        .with_durability(DurabilityConfig {
            checkpoint: Some(path.clone()),
            resume: true,
            ..DurabilityConfig::default()
        })
        .run(&netlist, &faults, &workloads)
        .expect("resumed campaign runs");
        std::fs::remove_file(&path).ok();

        prop_assert!(!resumed.interrupted());
        prop_assert!(resumed.stats().units_from_checkpoint >= interrupt_after);
        assert_reports_identical("lane 1 -> lane 8 resume", &reference, &resumed);
        prop_assert_eq!(reference.summary_opts(false), resumed.summary_opts(false));
    }
}

/// The built-in designs, checked once per width (cheap config): the
/// proptest covers the space, this pins the real designs CI ships.
#[test]
fn builtin_designs_all_widths_agree() {
    for netlist in fusa_netlist::designs::all_designs() {
        let faults = FaultList::all_gate_outputs(&netlist);
        let workloads = workloads_for(&netlist, 7);
        let reference = run_with(&netlist, &faults, &workloads, 1, false, false, 0);
        for lane_words in [1usize, 4, 8] {
            let wide = run_with(&netlist, &faults, &workloads, 4, true, true, lane_words);
            assert_reports_identical(
                &format!("{} W={lane_words}", netlist.name()),
                &reference,
                &wide,
            );
        }
    }
}

/// The synthetic scaling designs run the wide kernel too: a 10k-gate
/// generator output at default width matches the scalar reference on a
/// sampled fault list (full coverage would dominate the test suite).
#[test]
fn synthetic_design_widths_agree() {
    let netlist =
        fusa_netlist::designs::synthetic_design(&fusa_netlist::designs::SyntheticConfig {
            name: "lane_probe".to_string(),
            datapath_width: 16,
            pipeline_stages: 10,
            banks: 2,
            bank_counter_bits: 4,
            seed: 3,
        });
    let faults = FaultList::all_gate_outputs(&netlist);
    let workloads = workloads_for(&netlist, 11);
    let reference = run_with(&netlist, &faults, &workloads, 1, false, false, 0);
    for lane_words in [4usize, 8] {
        let wide = run_with(&netlist, &faults, &workloads, 2, true, true, lane_words);
        assert_reports_identical(&format!("synthetic W={lane_words}"), &reference, &wide);
    }
}
