//! Chaos property suite for the storage-fault layer: random injected
//! I/O failures (ENOSPC, EIO, short writes) against the checkpoint
//! append path, across thread counts, lane widths and resume.
//!
//! The invariant under chaos is two-sided:
//!
//! * a **transient** fault (one failed attempt inside the retry budget)
//!   must be invisible — the run completes, is not degraded, and its
//!   stable summary digests identically to a fault-free reference;
//! * a **persistent** fault (every attempt fails) must degrade, never
//!   corrupt: the campaign still completes in memory with bit-identical
//!   outcomes, the degradation is flagged in the stable summary, and
//!   `fsck --repair` + `--resume` on the abandoned checkpoint recovers
//!   a run that digests identically to the reference.
//!
//! The injection schedule and the degraded flag are process globals
//! (mirroring the `FUSA_IO_FAIL_*` environment hooks), so every case
//! serializes on [`CHAOS_LOCK`].

use fusa_faultsim::{
    fsck_path, CampaignConfig, CampaignReport, DurabilityConfig, FaultCampaign, FaultList,
    FsckOptions, IoRetryPolicy,
};
use fusa_logicsim::{WorkloadConfig, WorkloadSuite};
use fusa_netlist::designs::{random_netlist, RandomNetlistConfig};
use fusa_netlist::Netlist;
use fusa_obs::{reset_degraded, set_io_fault_injection, IoFaultInjection, IoFaultKind};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Mutex;

/// Serializes every chaos case: the injection schedule and the
/// degraded flag are process globals.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn workloads_for(netlist: &Netlist, seed: u64) -> WorkloadSuite {
    WorkloadSuite::generate(
        netlist,
        &WorkloadConfig {
            num_workloads: 2,
            vectors_per_workload: 16,
            reset_cycles: 0,
            seed,
        },
    )
}

fn chaos_netlist(seed: u64, num_gates: usize) -> Netlist {
    random_netlist(&RandomNetlistConfig {
        seed,
        num_gates,
        num_inputs: 8,
        num_outputs: 6,
        sequential_fraction: 0.2,
    })
}

fn checkpoint_path(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fusa_io_chaos_{tag}_{seed:x}_{}.jsonl",
        std::process::id()
    ))
}

fn kind_from(index: usize) -> IoFaultKind {
    [
        IoFaultKind::Enospc,
        IoFaultKind::Eio,
        IoFaultKind::ShortWrite,
    ][index % 3]
}

/// Arms a checkpoint-targeted schedule; the target filter keeps the op
/// numbering independent of timing-driven status/trace writes.
fn arm(fail_nth: Vec<u64>, fail_every: Option<u64>, kind: IoFaultKind) {
    set_io_fault_injection(Some(IoFaultInjection {
        fail_nth,
        fail_every,
        kind,
        targets: vec!["checkpoint".to_string()],
    }));
}

fn assert_outcomes_identical(
    context: &str,
    reference: &CampaignReport,
    candidate: &CampaignReport,
) {
    let (a, b) = (reference.workload_reports(), candidate.workload_reports());
    assert_eq!(a.len(), b.len(), "{context}: workload count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.outcomes, y.outcomes,
            "{context}: outcomes differ in workload {}",
            x.workload_name
        );
        assert_eq!(
            x.first_divergence, y.first_divergence,
            "{context}: first_divergence differs in workload {}",
            x.workload_name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5 })]

    /// One failed write attempt inside the default retry budget is
    /// invisible: the run completes undegraded and digests identically
    /// to a fault-free reference, whatever the fault kind, thread count
    /// or lane width — and whatever torn fragment the failed attempt
    /// left behind, `fsck` can always repair the checkpoint to clean.
    #[test]
    fn transient_write_fault_is_absorbed_by_retry(
        seed in 0u64..1u64 << 48,
        num_gates in 60usize..100,
        fail_op in 2u64..5,
        kind_index in 0usize..3,
        threads in 1usize..4,
        lane_index in 0usize..3,
    ) {
        let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let netlist = chaos_netlist(seed, num_gates);
        let faults = FaultList::all_gate_outputs(&netlist);
        let workloads = workloads_for(&netlist, seed ^ 0x5eed);
        let config = CampaignConfig {
            threads,
            lane_words: [0, 1, 4][lane_index],
            ..CampaignConfig::default()
        };

        reset_degraded();
        set_io_fault_injection(None);
        let reference = FaultCampaign::new(config)
            .run(&netlist, &faults, &workloads)
            .expect("reference run");

        let path = checkpoint_path("transient", seed);
        arm(vec![fail_op], None, kind_from(kind_index));
        let chaotic = FaultCampaign::new(config)
            .with_durability(DurabilityConfig {
                checkpoint: Some(path.clone()),
                ..DurabilityConfig::default()
            })
            .run(&netlist, &faults, &workloads)
            .expect("chaotic run completes");
        set_io_fault_injection(None);

        prop_assert!(
            !chaotic.stats().durability_degraded,
            "one transient fault must stay inside the retry budget"
        );
        prop_assert!(
            chaotic.stats().checkpoint_write_retries >= 1,
            "the injected fault was retried"
        );
        assert_outcomes_identical("transient", &reference, &chaotic);
        prop_assert_eq!(
            reference.summary_opts(false),
            chaotic.summary_opts(false),
            "an absorbed fault must not leak into the stable summary"
        );

        // Whatever the failed attempt tore into the file, repair
        // converges to a checkpoint fsck calls clean.
        fsck_path(&path, &FsckOptions { repair: true }).expect("fsck runs");
        let clean = fsck_path(&path, &FsckOptions::default()).expect("re-check");
        prop_assert!(clean.sound(), "post-repair damage: {:?}", clean.issues);
        prop_assert!(clean.issues.is_empty());

        reset_degraded();
        std::fs::remove_file(&path).ok();
    }

    /// A fault that outlives every retry degrades the run but corrupts
    /// nothing: outcomes stay bit-identical, the stable summary flags
    /// the degradation (and only that differs from the reference), and
    /// `fsck --repair` + `--resume` on the abandoned checkpoint
    /// recovers a run that digests identically to the reference.
    #[test]
    fn persistent_write_fault_degrades_then_fsck_and_resume_recover(
        seed in 0u64..1u64 << 48,
        num_gates in 60usize..100,
        fail_every in 2u64..5,
        kind_index in 0usize..3,
        threads in 1usize..4,
        lane_index in 0usize..3,
    ) {
        let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let netlist = chaos_netlist(seed, num_gates);
        let faults = FaultList::all_gate_outputs(&netlist);
        let workloads = workloads_for(&netlist, seed ^ 0xdead);
        let config = CampaignConfig {
            threads,
            lane_words: [0, 1, 4][lane_index],
            ..CampaignConfig::default()
        };

        reset_degraded();
        set_io_fault_injection(None);
        let reference = FaultCampaign::new(config)
            .run(&netlist, &faults, &workloads)
            .expect("reference run");

        let path = checkpoint_path("persistent", seed);
        arm(Vec::new(), Some(fail_every), kind_from(kind_index));
        let degraded = FaultCampaign::new(config)
            .with_durability(DurabilityConfig {
                checkpoint: Some(path.clone()),
                // No retries: the first injected fault must escalate,
                // keeping the degradation point deterministic.
                io_retry: IoRetryPolicy::none(),
                ..DurabilityConfig::default()
            })
            .run(&netlist, &faults, &workloads)
            .expect("degraded run still completes in memory");
        set_io_fault_injection(None);

        prop_assert!(
            degraded.stats().durability_degraded,
            "an unretried persistent fault must degrade the run"
        );
        assert_outcomes_identical("degraded", &reference, &degraded);
        let degraded_summary = degraded.summary_opts(false);
        prop_assert!(
            degraded_summary.contains("durability: degraded"),
            "stable summary flags the degradation:\n{degraded_summary}"
        );
        // Only the durability flag may separate the two summaries.
        let strip = |summary: &str| -> Vec<String> {
            summary
                .lines()
                .filter(|line| !line.contains("durability: degraded"))
                .map(str::to_string)
                .collect()
        };
        prop_assert_eq!(
            strip(&degraded_summary),
            strip(&reference.summary_opts(false)),
            "degraded summary differs beyond the durability line"
        );

        // Recovery: repair the abandoned checkpoint, then resume. The
        // header write (op 1) always survives arming at fail_every >= 2,
        // so the file is repairable by construction.
        let fsck = fsck_path(&path, &FsckOptions { repair: true }).expect("fsck runs");
        prop_assert!(fsck.sound(), "unrepaired damage: {:?}", fsck.issues);

        reset_degraded();
        let resumed = FaultCampaign::new(config)
            .with_durability(DurabilityConfig {
                checkpoint: Some(path.clone()),
                resume: true,
                ..DurabilityConfig::default()
            })
            .run(&netlist, &faults, &workloads)
            .expect("resume after repair");
        prop_assert!(!resumed.stats().durability_degraded);
        assert_outcomes_identical("recovered", &reference, &resumed);
        prop_assert_eq!(
            reference.summary_opts(false),
            resumed.summary_opts(false),
            "repair + resume recovers the reference digest"
        );

        reset_degraded();
        std::fs::remove_file(&path).ok();
    }
}
