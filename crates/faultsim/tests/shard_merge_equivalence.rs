//! Differential tests: a campaign split into N shards, merged with
//! [`merge_checkpoints`], must be bit-identical to one single-process
//! uninterrupted run — across shard counts, per-shard thread counts and
//! lane widths, with one shard interrupted mid-run and resumed.
//!
//! This is the property the whole sharding feature rests on: shard
//! assignment depends only on the unit id (never on threads, lanes or
//! resume state), so the union of the shard checkpoints carries exactly
//! the information of one full campaign.

use fusa_faultsim::{
    merge_checkpoints, CampaignConfig, CampaignReport, DurabilityConfig, FaultCampaign,
    FaultInjection, FaultList, ShardSpec,
};
use fusa_logicsim::{WorkloadConfig, WorkloadSuite};
use fusa_netlist::designs::{random_netlist, RandomNetlistConfig};
use fusa_netlist::Netlist;
use proptest::prelude::*;
use std::path::PathBuf;

fn workloads_for(netlist: &Netlist, seed: u64) -> WorkloadSuite {
    WorkloadSuite::generate(
        netlist,
        &WorkloadConfig {
            num_workloads: 2,
            vectors_per_workload: 24,
            reset_cycles: 0,
            seed,
        },
    )
}

/// A collision-free scratch path per proptest case (cases from parallel
/// test binaries and shrink iterations must not share files).
fn scratch_path(tag: &str, seed: u64, index: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fusa_shard_merge_{}_{tag}_{seed:x}_{index}.jsonl",
        std::process::id()
    ))
}

fn assert_reports_identical(context: &str, reference: &CampaignReport, candidate: &CampaignReport) {
    let (a, b) = (reference.workload_reports(), candidate.workload_reports());
    assert_eq!(a.len(), b.len(), "{context}: workload count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.workload_name, y.workload_name,
            "{context}: workload order"
        );
        assert_eq!(
            x.outcomes, y.outcomes,
            "{context}: outcomes differ in workload {}",
            x.workload_name
        );
        assert_eq!(
            x.first_divergence, y.first_divergence,
            "{context}: first_divergence differs in workload {}",
            x.workload_name
        );
    }
    // The digested summary must agree too: shard bookkeeping leaks into
    // the stable text only through outcomes, never through scheduling.
    assert_eq!(
        reference.summary_opts(false),
        candidate.summary_opts(false),
        "{context}: stable summary"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Run every shard of an N-way partition (each with its own thread
    /// count and lane width, one interrupted mid-run and resumed), merge
    /// the shard checkpoints, and resume a campaign from the merged
    /// checkpoint: the result is bit-identical to a single uninterrupted
    /// run, down to the digested summary.
    #[test]
    fn merged_shards_equal_single_uninterrupted_run(
        seed in 0u64..1u64 << 48,
        num_gates in 40usize..100,
        sequential_fraction in 0.05f64..0.4,
        total_selector in 0usize..3,
        interrupted_selector in 0usize..5,
        interrupt_fraction in 0.2f64..0.8,
        schedule_seed in any::<u64>(),
    ) {
        let total = [2usize, 3, 5][total_selector];
        let netlist = random_netlist(&RandomNetlistConfig {
            num_inputs: 6,
            num_gates,
            sequential_fraction,
            num_outputs: 5,
            seed,
        });
        let faults = FaultList::all_sites(&netlist);
        let workloads = workloads_for(&netlist, seed ^ 0x5AAD);
        let base = CampaignConfig {
            classify_latent: true,
            min_divergence_fraction: 0.0,
            ..CampaignConfig::default()
        };
        let unit_count = workloads.workloads().len() * faults.len().div_ceil(64);
        let interrupted_shard = interrupted_selector % total + 1;

        let reference = FaultCampaign::new(CampaignConfig { threads: 2, ..base })
            .run(&netlist, &faults, &workloads)
            .expect("reference campaign runs");

        let mut paths = Vec::new();
        for index in 1..=total {
            let shard = ShardSpec { index, total };
            // Every shard gets its own scheduling: assignment and
            // outcomes must not depend on threads or lane width.
            let config = CampaignConfig {
                threads: (schedule_seed >> index) as usize % 3 + 1,
                lane_words: [0usize, 1, 4, 8][(schedule_seed >> (2 * index)) as usize % 4],
                shard: Some(shard),
                ..base
            };
            let path = scratch_path("shard", seed ^ (total as u64), index);
            let _ = std::fs::remove_file(&path);
            let owned = (0..unit_count).filter(|&unit| shard.owns(unit)).count();

            if index == interrupted_shard && owned >= 2 {
                // Interrupt this shard partway through its owned units,
                // leaving a partial checkpoint for the resume below.
                let after = ((owned as f64 * interrupt_fraction) as usize).clamp(1, owned - 1);
                let partial = FaultCampaign::new(config)
                    .with_durability(DurabilityConfig {
                        checkpoint: Some(path.clone()),
                        ..Default::default()
                    })
                    .with_injection(FaultInjection {
                        interrupt_after_units: Some(after),
                        ..Default::default()
                    })
                    .run(&netlist, &faults, &workloads)
                    .expect("interrupted shard still returns a report");
                prop_assert!(partial.interrupted(), "after={after}/{owned}");
            }

            let report = FaultCampaign::new(config)
                .with_durability(DurabilityConfig {
                    checkpoint: Some(path.clone()),
                    resume: index == interrupted_shard,
                    ..Default::default()
                })
                .run(&netlist, &faults, &workloads)
                .expect("shard campaign runs");
            prop_assert!(!report.interrupted());
            prop_assert_eq!(report.shard(), Some(shard));
            prop_assert_eq!(report.stats().units_in_shard, owned);
            paths.push(path);
        }

        let merged_path = scratch_path("merged", seed ^ (total as u64), 0);
        let _ = std::fs::remove_file(&merged_path);
        let outcome = merge_checkpoints(&paths, &merged_path).expect("shards merge cleanly");
        prop_assert_eq!(outcome.unit_count, unit_count);
        prop_assert!(outcome.header.shard.is_none(), "merged header is shard-free");
        prop_assert_eq!(outcome.sources.len(), total);

        // Resuming from the merged checkpoint finds every unit complete:
        // zero simulation, and the report equals the single-process run.
        let merged = FaultCampaign::new(CampaignConfig { threads: 1, lane_words: 1, ..base })
            .with_durability(DurabilityConfig {
                checkpoint: Some(merged_path.clone()),
                resume: true,
                ..Default::default()
            })
            .run(&netlist, &faults, &workloads)
            .expect("merged campaign runs");
        prop_assert_eq!(merged.stats().units_from_checkpoint, unit_count);
        prop_assert!(merged.shard().is_none());
        assert_reports_identical(
            &format!(
                "seed={seed:x} total={total} interrupted_shard={interrupted_shard} \
                 schedule={schedule_seed:x}"
            ),
            &reference,
            &merged,
        );

        for path in paths {
            let _ = std::fs::remove_file(path);
        }
        let _ = std::fs::remove_file(&merged_path);
    }
}
