//! Differential tests: the accelerated campaign hot path (cone
//! restriction, early exit, multi-threaded unit scheduling) must be
//! bit-identical to the exhaustive full-netlist reference.
//!
//! The proptest generates random sequential netlists, injects every
//! stuck-at site (gate outputs *and* input pins), and compares every
//! `FaultOutcome` and every `first_divergence` cycle across the
//! acceleration configurations. Any divergence is a correctness bug in
//! the cone/boundary/early-exit machinery, not a tuning regression.

use fusa_faultsim::{CampaignConfig, CampaignReport, FaultCampaign, FaultList};
use fusa_logicsim::{WorkloadConfig, WorkloadSuite};
use fusa_netlist::designs::{random_netlist, RandomNetlistConfig};
use fusa_netlist::Netlist;
use proptest::prelude::*;

fn workloads_for(netlist: &Netlist, seed: u64) -> WorkloadSuite {
    WorkloadSuite::generate(
        netlist,
        &WorkloadConfig {
            num_workloads: 2,
            vectors_per_workload: 24,
            reset_cycles: 0,
            seed,
        },
    )
}

fn run_with(
    netlist: &Netlist,
    faults: &FaultList,
    workloads: &WorkloadSuite,
    threads: usize,
    restrict_to_cone: bool,
    early_exit: bool,
    classify_latent: bool,
) -> CampaignReport {
    FaultCampaign::new(CampaignConfig {
        threads,
        classify_latent,
        min_divergence_fraction: 0.0,
        restrict_to_cone,
        early_exit,
        // Legacy scalar kernel: the wide-lane differential lives in
        // tests/lane_equivalence.rs.
        lane_words: 0,
        shard: None,
    })
    .run(netlist, faults, workloads)
    .expect("campaign runs")
}

fn assert_reports_identical(context: &str, reference: &CampaignReport, candidate: &CampaignReport) {
    let (a, b) = (reference.workload_reports(), candidate.workload_reports());
    assert_eq!(a.len(), b.len(), "{context}: workload count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.workload_name, y.workload_name,
            "{context}: workload order"
        );
        assert_eq!(
            x.outcomes, y.outcomes,
            "{context}: outcomes differ in workload {}",
            x.workload_name
        );
        assert_eq!(
            x.first_divergence, y.first_divergence,
            "{context}: first_divergence differs in workload {}",
            x.workload_name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Cone-restricted simulation, early exit, and the threaded unit
    /// queue are all bit-identical to the naive single-threaded
    /// full-netlist campaign — on random netlists, over every stuck-at
    /// site including input pins, with latent classification on or off.
    #[test]
    fn accelerated_campaign_is_bit_identical_on_random_netlists(
        seed in 0u64..1u64 << 48,
        num_gates in 40usize..120,
        sequential_fraction in 0.05f64..0.4,
        classify_latent in any::<bool>(),
    ) {
        let netlist = random_netlist(&RandomNetlistConfig {
            num_inputs: 6,
            num_gates,
            sequential_fraction,
            num_outputs: 5,
            seed,
        });
        // Input-pin faults included: cones rooted at the faulty gate
        // must cover pin-fault propagation too.
        let faults = FaultList::all_sites(&netlist);
        let workloads = workloads_for(&netlist, seed ^ 0x570C4);

        let reference = run_with(&netlist, &faults, &workloads, 1, false, false, classify_latent);
        for threads in [1usize, 4] {
            for restrict_to_cone in [false, true] {
                for early_exit in [false, true] {
                    if threads == 1 && !restrict_to_cone && !early_exit {
                        continue;
                    }
                    let candidate = run_with(
                        &netlist, &faults, &workloads,
                        threads, restrict_to_cone, early_exit, classify_latent,
                    );
                    assert_reports_identical(
                        &format!(
                            "threads={threads} cone={restrict_to_cone} early_exit={early_exit} latent={classify_latent}"
                        ),
                        &reference,
                        &candidate,
                    );
                }
            }
        }
    }
}

/// The four built-in designs, checked once each (cheap config): the
/// proptest covers the space, this pins the real designs CI actually
/// ships.
#[test]
fn builtin_designs_cone_on_off_agree() {
    for netlist in fusa_netlist::designs::all_designs() {
        let faults = FaultList::all_gate_outputs(&netlist);
        let workloads = workloads_for(&netlist, 7);
        let reference = run_with(&netlist, &faults, &workloads, 1, false, false, true);
        let accelerated = run_with(&netlist, &faults, &workloads, 4, true, true, true);
        assert_reports_identical(netlist.name(), &reference, &accelerated);
    }
}
