//! Stuck-at fault injection campaigns and criticality dataset generation.
//!
//! This crate is the reproduction's substitute for the commercial fault
//! simulator used in the paper (Cadence Xcelium, §4.1): it enumerates
//! stuck-at-0/1 faults on every gate output ([`FaultList`]), runs each
//! workload against all faults using the 64-lane fault-parallel engine
//! from [`fusa_logicsim::BitSim`] ([`FaultCampaign`]), classifies each
//! (fault, workload) outcome as *Dangerous*, *Latent* or *Benign*
//! ([`FaultOutcome`]), and finally aggregates per-node criticality scores
//! and labels exactly as Algorithm 1 of the paper ([`CriticalityDataset`]).
//!
//! # Example
//!
//! ```
//! use fusa_faultsim::{CampaignConfig, FaultCampaign, FaultList};
//! use fusa_logicsim::{WorkloadConfig, WorkloadSuite};
//! use fusa_netlist::designs::or1200_icfsm;
//!
//! let netlist = or1200_icfsm();
//! let faults = FaultList::all_gate_outputs(&netlist);
//! let workloads = WorkloadSuite::generate(
//!     &netlist,
//!     &WorkloadConfig { num_workloads: 2, vectors_per_workload: 32, ..Default::default() },
//! );
//! let report = FaultCampaign::new(CampaignConfig::default())
//!     .run(&netlist, &faults, &workloads)
//!     .expect("campaign runs");
//! let dataset = report.into_dataset(0.5);
//! assert_eq!(dataset.scores().len(), netlist.gate_count());
//! ```

pub mod campaign;
pub mod checkpoint;
pub mod dataset;
pub mod durability;
pub mod fault;
pub mod fsck;
pub mod merge;
pub mod report;
pub mod seu;
pub mod shard;

pub use campaign::{CampaignConfig, FaultCampaign};
pub use checkpoint::{
    read_header, read_unit_count, CheckpointError, CheckpointHeader, CHECKPOINT_SCHEMA,
    CHECKPOINT_SCHEMA_V1,
};
pub use dataset::CriticalityDataset;
pub use durability::{
    CampaignError, DurabilityConfig, FaultInjection, IoRetryPolicy, QuarantinedUnit,
};
pub use fault::{Fault, FaultList, FaultSite, StuckAt};
pub use fsck::{fsck_path, FsckError, FsckIssue, FsckOptions, FsckReport};
pub use merge::{merge_checkpoints, MergeError, MergeOutcome, MergeSource};
pub use report::{CampaignReport, CampaignStats, FaultOutcome, WorkloadReport};
pub use seu::{SeuCampaign, SeuConfig, SeuOutcome, SeuReport};
pub use shard::{shard_of, ShardSpec};
