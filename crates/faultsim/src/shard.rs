//! Digest-stable partitioning of the campaign unit space across shards.
//!
//! A *shard* owns a subset of the (workload × 64-fault-chunk) unit space
//! so that N independent processes — potentially on N hosts sharing
//! nothing but the design source — can each simulate a disjoint slice of
//! a campaign and later union their checkpoints with `fusa merge` into a
//! result bit-identical to a single uninterrupted run.
//!
//! The assignment must therefore depend on nothing but the unit index
//! and the shard count: not on thread count, lane width, scheduling
//! order, or which shard resumed after a crash. [`ShardSpec::owns`]
//! hashes the little-endian unit index with FNV-1a64 and reduces it
//! modulo the shard total, which satisfies all of those invariants and
//! spreads expensive units (which cluster by workload) roughly evenly.

use fusa_obs::fnv1a64;
use std::fmt;

/// One shard's slice of a campaign, written `i/n` on the command line:
/// shard `index` (1-based) out of `total`.
///
/// ```
/// use fusa_faultsim::ShardSpec;
///
/// let shard = ShardSpec::parse("2/3").unwrap();
/// assert_eq!((shard.index, shard.total), (2, 3));
/// assert_eq!(shard.to_string(), "2/3");
///
/// // Every unit is owned by exactly one of the n shards.
/// for unit in 0..1000 {
///     let owners = (1..=3)
///         .filter(|&i| ShardSpec { index: i, total: 3 }.owns(unit))
///         .count();
///     assert_eq!(owners, 1);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 1-based shard index, `1 <= index <= total`.
    pub index: usize,
    /// Total number of shards the campaign is split across.
    pub total: usize,
}

impl ShardSpec {
    /// Parse the command-line form `i/n` (for example `2/3`).
    ///
    /// Rejects malformed input, `n == 0`, `i == 0`, and `i > n` with a
    /// human-readable message suitable for CLI errors.
    pub fn parse(text: &str) -> Result<ShardSpec, String> {
        let err = || format!("invalid shard spec `{text}`: expected i/n with 1 <= i <= n");
        let (index, total) = text.split_once('/').ok_or_else(err)?;
        let index: usize = index.trim().parse().map_err(|_| err())?;
        let total: usize = total.trim().parse().map_err(|_| err())?;
        if total == 0 || index == 0 || index > total {
            return Err(err());
        }
        Ok(ShardSpec { index, total })
    }

    /// Whether this shard owns `unit`.
    ///
    /// The assignment is a pure function of `(unit, total)`: FNV-1a64
    /// over the little-endian unit index, reduced modulo `total`. It is
    /// deliberately independent of thread count, lane width, and
    /// scheduling order so that checkpoints written by different shard
    /// configurations stay mergeable and digest-stable.
    pub fn owns(&self, unit: usize) -> bool {
        shard_of(unit, self.total) == self.index
    }
}

/// The 1-based index of the shard that owns `unit` in an `n`-way split.
pub fn shard_of(unit: usize, total: usize) -> usize {
    (fnv1a64(&(unit as u64).to_le_bytes()) % total as u64) as usize + 1
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_specs() {
        assert_eq!(
            ShardSpec::parse("1/1").unwrap(),
            ShardSpec { index: 1, total: 1 }
        );
        assert_eq!(
            ShardSpec::parse("2/3").unwrap(),
            ShardSpec { index: 2, total: 3 }
        );
        assert_eq!(
            ShardSpec::parse("5/5").unwrap(),
            ShardSpec { index: 5, total: 5 }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["", "3", "0/3", "4/3", "1/0", "a/b", "1/3/5", "-1/3"] {
            assert!(ShardSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_round_trips() {
        for text in ["1/1", "2/3", "5/5", "17/64"] {
            assert_eq!(ShardSpec::parse(text).unwrap().to_string(), text);
        }
    }

    #[test]
    fn every_unit_has_exactly_one_owner() {
        for total in [1, 2, 3, 5, 8] {
            for unit in 0..512 {
                let owners = (1..=total)
                    .filter(|&index| ShardSpec { index, total }.owns(unit))
                    .count();
                assert_eq!(owners, 1, "unit {unit} total {total}");
            }
        }
    }

    /// The assignment function is part of the on-disk contract: shard
    /// checkpoints produced by one build must merge with shards produced
    /// by another. Pin exact values so an accidental change to the hash
    /// or the reduction shows up as a test failure, not a fleet-wide
    /// merge error.
    #[test]
    fn assignment_is_pinned() {
        let assigned: Vec<usize> = (0..16).map(|unit| shard_of(unit, 3)).collect();
        assert_eq!(assigned, [2, 1, 1, 3, 1, 3, 3, 2, 3, 2, 2, 1, 2, 1, 1, 3]);
        assert_eq!(shard_of(0, 1), 1);
        assert_eq!(shard_of(1000, 5), 2);
    }

    #[test]
    fn assignment_is_roughly_balanced() {
        let total = 4;
        let mut counts = [0usize; 4];
        for unit in 0..4096 {
            counts[shard_of(unit, total) - 1] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!(
                (count as f64 - 1024.0).abs() < 256.0,
                "shard {} owns {} of 4096 units",
                i + 1,
                count
            );
        }
    }
}
