//! Unioning shard checkpoints into one full-campaign checkpoint.
//!
//! A `--shard i/n` campaign writes a checkpoint containing only the
//! units that shard owns (see [`ShardSpec::owns`]). [`merge_checkpoints`]
//! takes the N shard checkpoints — produced on any mix of hosts, thread
//! counts and lane widths — and unions their unit records into a single
//! merged checkpoint that is indistinguishable from one written by an
//! uninterrupted single-process campaign. Resuming a campaign from the
//! merged file therefore simulates nothing and reproduces the full
//! report, bit-identical digests included.
//!
//! # Validation state machine
//!
//! Merging proceeds through three checks, each with a typed error:
//!
//! 1. **Header compatibility.** Every input's header must match the
//!    first input's on all outcome-affecting fields (design, fault and
//!    workload digests, `classify_latent`, `min_divergence_fraction`) —
//!    the same rule `--resume` applies, except the shard spec is
//!    excluded from the comparison, because differing only in shard
//!    spec is exactly what shard checkpoints do. Violation:
//!    [`MergeError::HeaderMismatch`].
//! 2. **Conflict detection.** A unit may appear in several inputs (for
//!    example after overlapping shard reruns). Records whose canonical
//!    encoding is identical are deduplicated; records that disagree
//!    about a unit's outcomes mean the inputs were not produced by the
//!    same campaign, and the merge aborts with
//!    [`MergeError::ConflictingUnit`] rather than guess. Torn or
//!    corrupt lines (a shard killed mid-write) are skipped and counted,
//!    exactly as `--resume` would skip them.
//! 3. **Coverage.** After all inputs are read, every unit of the full
//!    campaign must be present. Holes — a shard never ran, or was
//!    interrupted and not resumed — abort with
//!    [`MergeError::MissingUnits`], which names the exact
//!    `fusa faults … --shard i/n` commands that fill them.
//!
//! Only when all three pass is the merged checkpoint written: the
//! common header with the shard fields stripped, then every unit line
//! in unit order.
//!
//! ```
//! use fusa_faultsim::{
//!     merge_checkpoints, CampaignConfig, DurabilityConfig, FaultCampaign, FaultList, ShardSpec,
//! };
//! use fusa_logicsim::{WorkloadConfig, WorkloadSuite};
//!
//! let netlist = fusa_netlist::designs::or1200_icfsm();
//! let faults = FaultList::all_gate_outputs(&netlist);
//! let workloads = WorkloadSuite::generate(
//!     &netlist,
//!     &WorkloadConfig { num_workloads: 2, vectors_per_workload: 16, reset_cycles: 0, seed: 3 },
//! );
//! let dir = std::env::temp_dir().join(format!("fusa_merge_doc_{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//!
//! // Run each shard the way its own process (or host) would.
//! let mut shard_paths = Vec::new();
//! for index in 1..=2 {
//!     let path = dir.join(format!("shard{index}.jsonl"));
//!     let config = CampaignConfig {
//!         shard: Some(ShardSpec { index, total: 2 }),
//!         ..Default::default()
//!     };
//!     FaultCampaign::new(config)
//!         .with_durability(DurabilityConfig {
//!             checkpoint: Some(path.clone()),
//!             ..Default::default()
//!         })
//!         .run(&netlist, &faults, &workloads)
//!         .unwrap();
//!     shard_paths.push(path);
//! }
//!
//! // Union the shard checkpoints…
//! let merged_path = dir.join("merged.jsonl");
//! let outcome = merge_checkpoints(&shard_paths, &merged_path).unwrap();
//! assert_eq!(outcome.sources.len(), 2);
//!
//! // …then resume from the merged file: every unit is already complete,
//! // so nothing is simulated and the report covers the full campaign.
//! let report = FaultCampaign::new(CampaignConfig::default())
//!     .with_durability(DurabilityConfig {
//!         checkpoint: Some(merged_path),
//!         resume: true,
//!         ..Default::default()
//!     })
//!     .run(&netlist, &faults, &workloads)
//!     .unwrap();
//! assert_eq!(report.stats().units_from_checkpoint, outcome.unit_count);
//! assert!(report.shard().is_none());
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::campaign::LANES;
use crate::checkpoint::{self, CheckpointError, CheckpointHeader};
use crate::shard::{shard_of, ShardSpec};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Errors raised by [`merge_checkpoints`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No input checkpoints were given.
    NoInputs,
    /// An input could not be opened, or its header line is missing or
    /// malformed.
    Checkpoint(CheckpointError),
    /// An input's header disagrees with the first input's on an
    /// outcome-affecting field (shard spec excluded from the
    /// comparison).
    HeaderMismatch {
        /// The offending input.
        path: String,
        /// The field-level mismatch.
        mismatch: CheckpointError,
    },
    /// Two inputs record different results for the same unit — they
    /// cannot come from the same campaign.
    ConflictingUnit {
        /// Flat unit index.
        unit: usize,
        /// Input that contributed the unit first.
        first: String,
        /// Input that contradicted it.
        second: String,
    },
    /// The union does not cover the full campaign.
    MissingUnits {
        /// Design name from the common header (for the re-run hints).
        design: String,
        /// Units of the full campaign.
        unit_count: usize,
        /// The uncovered units, ascending.
        missing: Vec<usize>,
        /// Exact commands that would fill each hole.
        rerun: Vec<String>,
    },
    /// The merged output could not be written.
    Io {
        /// Path of the merged output.
        path: String,
        /// Rendered I/O error.
        message: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoInputs => write!(f, "no shard checkpoints to merge"),
            MergeError::Checkpoint(e) => write!(f, "{e}"),
            MergeError::HeaderMismatch { path, mismatch } => write!(
                f,
                "shard checkpoint {path} was not produced by the same campaign: {mismatch}"
            ),
            MergeError::ConflictingUnit {
                unit,
                first,
                second,
            } => write!(
                f,
                "unit {unit} has conflicting results in {first} and {second}; \
                 the inputs are not shards of one campaign"
            ),
            MergeError::MissingUnits {
                unit_count,
                missing,
                rerun,
                ..
            } => {
                write!(
                    f,
                    "merged coverage is incomplete: {} of {unit_count} units missing \
                     (units {})",
                    missing.len(),
                    preview(missing)
                )?;
                for command in rerun {
                    write!(f, "\n  fill the hole with: {command}")?;
                }
                Ok(())
            }
            MergeError::Io { path, message } => {
                write!(f, "cannot write merged checkpoint {path}: {message}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

impl From<CheckpointError> for MergeError {
    fn from(e: CheckpointError) -> Self {
        MergeError::Checkpoint(e)
    }
}

/// Renders at most the first eight entries of `units`.
fn preview(units: &[usize]) -> String {
    let shown: Vec<String> = units.iter().take(8).map(usize::to_string).collect();
    if units.len() > shown.len() {
        format!("{}, …", shown.join(", "))
    } else {
        shown.join(", ")
    }
}

/// One input's contribution to a merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSource {
    /// The input checkpoint.
    pub path: PathBuf,
    /// Shard spec from the input's header (`None` for an unsharded or
    /// already-merged input).
    pub shard: Option<ShardSpec>,
    /// Units first contributed by this input (duplicates of earlier
    /// inputs not counted).
    pub units: usize,
}

/// Successful result of [`merge_checkpoints`].
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome {
    /// The common header, shard fields stripped — also the header of
    /// the merged checkpoint.
    pub header: CheckpointHeader,
    /// Per-input provenance, in input order.
    pub sources: Vec<MergeSource>,
    /// Units of the full campaign (all covered after a successful
    /// merge).
    pub unit_count: usize,
    /// Unit records that duplicated an identical earlier record and
    /// were dropped.
    pub duplicate_units: usize,
    /// Torn, corrupt or out-of-range lines that were skipped.
    pub skipped_lines: usize,
}

/// Unions the unit records of `inputs` into a merged checkpoint at
/// `out`, validating header compatibility, per-unit consistency and
/// full coverage. See the [module docs](self) for the exact rules.
pub fn merge_checkpoints(inputs: &[PathBuf], out: &Path) -> Result<MergeOutcome, MergeError> {
    if inputs.is_empty() {
        return Err(MergeError::NoInputs);
    }
    let mut common: Option<CheckpointHeader> = None;
    // BTreeMap so the merged checkpoint lists units in unit order — the
    // canonical form a fresh single-process run would also settle into
    // after sorting, and the easiest form to eyeball.
    let mut merged: BTreeMap<usize, String> = BTreeMap::new();
    let mut first_source: HashMap<usize, usize> = HashMap::new();
    let mut sources: Vec<MergeSource> = Vec::new();
    let mut duplicate_units = 0usize;
    let mut skipped_lines = 0usize;

    for (source_index, path) in inputs.iter().enumerate() {
        let header = checkpoint::read_header(path)?;
        match &common {
            Some(common) => {
                header
                    .check_compatible_ignoring_shard(common)
                    .map_err(|mismatch| MergeError::HeaderMismatch {
                        path: path.display().to_string(),
                        mismatch,
                    })?;
            }
            None => {
                let mut stripped = header.clone();
                stripped.shard = None;
                common = Some(stripped);
            }
        }
        let unit_count = campaign_unit_count(common.as_ref().expect("common header set"));

        let file = File::open(path).map_err(|e| {
            MergeError::Checkpoint(CheckpointError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })
        })?;
        let mut contributed = 0usize;
        for line in BufReader::new(file).lines().skip(1) {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            // Decode validates the per-record digest, so a canonical
            // re-encoding is equal if and only if the payloads agree.
            match checkpoint::decode_unit(&line) {
                Some((unit, output)) if unit < unit_count => {
                    let canonical = checkpoint::encode_unit(unit, &output);
                    match merged.entry(unit) {
                        Entry::Occupied(existing) => {
                            if existing.get() != &canonical {
                                return Err(MergeError::ConflictingUnit {
                                    unit,
                                    first: inputs[first_source[&unit]].display().to_string(),
                                    second: path.display().to_string(),
                                });
                            }
                            duplicate_units += 1;
                        }
                        Entry::Vacant(slot) => {
                            slot.insert(canonical);
                            first_source.insert(unit, source_index);
                            contributed += 1;
                        }
                    }
                }
                _ => skipped_lines += 1,
            }
        }
        sources.push(MergeSource {
            path: path.clone(),
            shard: header.shard,
            units: contributed,
        });
    }

    let header = common.expect("at least one input");
    let unit_count = campaign_unit_count(&header);
    let missing: Vec<usize> = (0..unit_count)
        .filter(|unit| !merged.contains_key(unit))
        .collect();
    if !missing.is_empty() {
        let rerun = rerun_commands(&header, &sources, &missing);
        return Err(MergeError::MissingUnits {
            design: header.design.clone(),
            unit_count,
            missing,
            rerun,
        });
    }

    let io_error = |e: &std::io::Error| MergeError::Io {
        path: out.display().to_string(),
        message: e.to_string(),
    };
    let file = File::create(out).map_err(|e| io_error(&e))?;
    let mut writer = BufWriter::new(file);
    let write_all = |writer: &mut BufWriter<File>| -> std::io::Result<()> {
        writer.write_all(header.to_json_line().as_bytes())?;
        writer.write_all(b"\n")?;
        for line in merged.values() {
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()
    };
    write_all(&mut writer).map_err(|e| io_error(&e))?;

    Ok(MergeOutcome {
        header,
        sources,
        unit_count,
        duplicate_units,
        skipped_lines,
    })
}

/// Units of the full campaign a header describes. Shared with `fsck`,
/// which validates a single checkpoint against the same unit space.
pub(crate) fn campaign_unit_count(header: &CheckpointHeader) -> usize {
    header.workload_count * header.fault_count.div_ceil(LANES)
}

/// Builds the exact `fusa faults … --shard i/n` commands that would
/// fill `missing`. When every input carries a shard spec with a common
/// total, holes are grouped per owning shard and the command resumes
/// that shard's checkpoint if it was among the inputs; otherwise a
/// single unsharded resume hint is emitted. Shared with `fsck`, which
/// prints the same hints for holes left after a `--repair`.
pub(crate) fn rerun_commands(
    header: &CheckpointHeader,
    sources: &[MergeSource],
    missing: &[usize],
) -> Vec<String> {
    let design = &header.design;
    let common_total = sources
        .iter()
        .map(|s| s.shard.map(|shard| shard.total))
        .collect::<Option<Vec<_>>>()
        .and_then(|totals| {
            let first = *totals.first()?;
            totals.iter().all(|&t| t == first).then_some(first)
        });
    let Some(total) = common_total else {
        return vec![format!(
            "fusa faults {design} --checkpoint <checkpoint> --resume"
        )];
    };
    let mut holes: BTreeMap<usize, usize> = BTreeMap::new();
    for &unit in missing {
        *holes.entry(shard_of(unit, total)).or_default() += 1;
    }
    holes
        .keys()
        .map(|&index| {
            let shard = ShardSpec { index, total };
            match sources.iter().find(|s| s.shard == Some(shard)) {
                Some(source) => format!(
                    "fusa faults {design} --shard {shard} --checkpoint {} --resume",
                    source.path.display()
                ),
                None => format!("fusa faults {design} --shard {shard}"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, UnitOutput};
    use crate::fault::FaultList;
    use crate::report::FaultOutcome;
    use fusa_logicsim::{WorkloadConfig, WorkloadSuite};

    /// A real header (or1200_icfsm, 2 workloads) whose unit space the
    /// tests populate with synthetic records.
    fn sample_header(shard: Option<ShardSpec>) -> CheckpointHeader {
        let netlist = fusa_netlist::designs::or1200_icfsm();
        let faults = FaultList::all_gate_outputs(&netlist);
        let workloads = WorkloadSuite::generate(
            &netlist,
            &WorkloadConfig {
                num_workloads: 2,
                vectors_per_workload: 8,
                reset_cycles: 0,
                seed: 3,
            },
        );
        let config = CampaignConfig {
            shard,
            ..Default::default()
        };
        CheckpointHeader::capture(&netlist, &faults, &workloads, &config)
    }

    fn sample_output(unit: usize) -> UnitOutput {
        UnitOutput {
            outcomes: vec![
                FaultOutcome::Dangerous,
                FaultOutcome::Latent,
                FaultOutcome::Benign,
            ],
            first_divergence: vec![Some(unit as u32), None, None],
            stepped_fault_cycles: 10 + unit as u64,
            gate_evals: 100 + unit as u64,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fusa_merge_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Writes a checkpoint containing `header` and the units of `units`.
    fn write_checkpoint(path: &Path, header: &CheckpointHeader, units: &[usize]) {
        let mut text = header.to_json_line();
        text.push('\n');
        for &unit in units {
            text.push_str(&checkpoint::encode_unit(unit, &sample_output(unit)));
            text.push('\n');
        }
        std::fs::write(path, text).unwrap();
    }

    fn owned_units(shard: ShardSpec, unit_count: usize) -> Vec<usize> {
        (0..unit_count).filter(|&u| shard.owns(u)).collect()
    }

    #[test]
    fn disjoint_shards_merge_to_full_coverage_in_unit_order() {
        let dir = temp_dir("disjoint");
        let unit_count = campaign_unit_count(&sample_header(None));
        assert!(unit_count >= 4, "test design too small: {unit_count} units");
        let mut paths = Vec::new();
        for index in 1..=2 {
            let shard = ShardSpec { index, total: 2 };
            let path = dir.join(format!("shard{index}.jsonl"));
            write_checkpoint(
                &path,
                &sample_header(Some(shard)),
                &owned_units(shard, unit_count),
            );
            paths.push(path);
        }
        let out = dir.join("merged.jsonl");
        let outcome = merge_checkpoints(&paths, &out).unwrap();
        assert_eq!(outcome.unit_count, unit_count);
        assert_eq!(outcome.duplicate_units, 0);
        assert_eq!(outcome.skipped_lines, 0);
        assert_eq!(
            outcome.sources.iter().map(|s| s.units).sum::<usize>(),
            unit_count
        );
        assert_eq!(outcome.header.shard, None);

        // The merged file: shard-free header, then every unit ascending.
        let text = std::fs::read_to_string(&out).unwrap();
        let mut lines = text.lines();
        let header = CheckpointHeader::parse(lines.next().unwrap()).unwrap();
        assert_eq!(header.shard, None);
        let units: Vec<usize> = lines
            .map(|l| checkpoint::decode_unit(l).unwrap().0)
            .collect();
        let expected: Vec<usize> = (0..unit_count).collect();
        assert_eq!(units, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_duplicates_dedupe_conflicting_payloads_abort() {
        let dir = temp_dir("overlap");
        let unit_count = campaign_unit_count(&sample_header(None));
        let all: Vec<usize> = (0..unit_count).collect();
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        // Both inputs cover everything with identical payloads: dedupe.
        write_checkpoint(&a, &sample_header(None), &all);
        write_checkpoint(&b, &sample_header(None), &all);
        let outcome = merge_checkpoints(&[a.clone(), b.clone()], &dir.join("m.jsonl")).unwrap();
        assert_eq!(outcome.duplicate_units, unit_count);

        // Flip one unit's payload in b: typed hard error naming both files.
        let mut text = sample_header(None).to_json_line();
        text.push('\n');
        for &unit in &all {
            let output = if unit == 1 {
                UnitOutput {
                    outcomes: vec![FaultOutcome::Benign],
                    first_divergence: vec![None],
                    stepped_fault_cycles: 1,
                    gate_evals: 1,
                }
            } else {
                sample_output(unit)
            };
            text.push_str(&checkpoint::encode_unit(unit, &output));
            text.push('\n');
        }
        std::fs::write(&b, text).unwrap();
        let err = merge_checkpoints(&[a, b], &dir.join("m2.jsonl")).unwrap_err();
        assert!(
            matches!(err, MergeError::ConflictingUnit { unit: 1, .. }),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shard_reports_hole_with_exact_rerun_command() {
        let dir = temp_dir("missing");
        let unit_count = campaign_unit_count(&sample_header(None));
        let mut paths = Vec::new();
        // Shards 1 and 3 of 3 present, shard 2 never ran.
        for index in [1usize, 3] {
            let shard = ShardSpec { index, total: 3 };
            let path = dir.join(format!("shard{index}.jsonl"));
            write_checkpoint(
                &path,
                &sample_header(Some(shard)),
                &owned_units(shard, unit_count),
            );
            paths.push(path);
        }
        let err = merge_checkpoints(&paths, &dir.join("m.jsonl")).unwrap_err();
        let MergeError::MissingUnits {
            design,
            missing,
            rerun,
            ..
        } = &err
        else {
            panic!("expected MissingUnits, got {err}");
        };
        assert_eq!(design, "or1200_icfsm");
        let shard2 = ShardSpec { index: 2, total: 3 };
        assert_eq!(missing, &owned_units(shard2, unit_count));
        assert_eq!(rerun, &["fusa faults or1200_icfsm --shard 2/3".to_string()]);
        assert!(err.to_string().contains("--shard 2/3"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_shard_hole_suggests_resuming_its_checkpoint() {
        let dir = temp_dir("resume_hint");
        let unit_count = campaign_unit_count(&sample_header(None));
        let mut paths = Vec::new();
        for index in 1..=2 {
            let shard = ShardSpec { index, total: 2 };
            let mut units = owned_units(shard, unit_count);
            if index == 2 {
                // Shard 2 was interrupted before its last unit.
                units.pop();
            }
            let path = dir.join(format!("shard{index}.jsonl"));
            write_checkpoint(&path, &sample_header(Some(shard)), &units);
            paths.push(path);
        }
        let err = merge_checkpoints(&paths, &dir.join("m.jsonl")).unwrap_err();
        let MergeError::MissingUnits { rerun, .. } = &err else {
            panic!("expected MissingUnits, got {err}");
        };
        let expected = format!(
            "fusa faults or1200_icfsm --shard 2/2 --checkpoint {} --resume",
            paths[1].display()
        );
        assert_eq!(rerun, &[expected]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_line_is_tolerated_when_covered_elsewhere() {
        let dir = temp_dir("torn");
        let unit_count = campaign_unit_count(&sample_header(None));
        let shard1 = ShardSpec { index: 1, total: 2 };
        let shard2 = ShardSpec { index: 2, total: 2 };
        let a = dir.join("shard1.jsonl");
        let b = dir.join("shard2.jsonl");
        write_checkpoint(
            &a,
            &sample_header(Some(shard1)),
            &owned_units(shard1, unit_count),
        );
        write_checkpoint(
            &b,
            &sample_header(Some(shard2)),
            &owned_units(shard2, unit_count),
        );
        // Tear shard 2's final line mid-record, as a kill -9 would. The
        // unit's complete record is already in the file above the torn
        // tail, so coverage survives and the torn line is just counted.
        let last = owned_units(shard2, unit_count).pop().unwrap();
        let mut torn = std::fs::read_to_string(&b).unwrap();
        torn.push_str(&checkpoint::encode_unit(last, &sample_output(last))[..20]);
        std::fs::write(&b, &torn).unwrap();
        let outcome = merge_checkpoints(&[a.clone(), b.clone()], &dir.join("m.jsonl")).unwrap();
        assert_eq!(outcome.skipped_lines, 1);
        assert_eq!(outcome.duplicate_units, 0);

        // If the torn record was the unit's only copy, it is a hole.
        let mut units = owned_units(shard2, unit_count);
        let last = units.pop().unwrap();
        write_checkpoint(&b, &sample_header(Some(shard2)), &units);
        let mut torn = std::fs::read_to_string(&b).unwrap();
        torn.push_str(&checkpoint::encode_unit(last, &sample_output(last))[..20]);
        std::fs::write(&b, &torn).unwrap();
        let err = merge_checkpoints(&[a, b], &dir.join("m2.jsonl")).unwrap_err();
        let MergeError::MissingUnits { missing, .. } = &err else {
            panic!("expected MissingUnits, got {err}");
        };
        assert_eq!(missing, &[last]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_header_line_is_a_typed_error_naming_the_file() {
        // A tear in the *header* (disk filled while line 1 was written,
        // or truncation rewound into it) is unrepairable damage — unit
        // lines cannot be interpreted without the fingerprint. Merging
        // must fail with a typed error carrying the file path; any panic
        // here would take down a whole merge over one bad shard.
        let dir = temp_dir("torn_header");
        let unit_count = campaign_unit_count(&sample_header(None));
        let shard1 = ShardSpec { index: 1, total: 2 };
        let shard2 = ShardSpec { index: 2, total: 2 };
        let a = dir.join("shard1.jsonl");
        let b = dir.join("shard2.jsonl");
        write_checkpoint(
            &a,
            &sample_header(Some(shard1)),
            &owned_units(shard1, unit_count),
        );
        write_checkpoint(
            &b,
            &sample_header(Some(shard2)),
            &owned_units(shard2, unit_count),
        );
        // Truncate shard 2 mid-header: the file opens, line 1 is garbage.
        let intact = std::fs::read_to_string(&b).unwrap();
        std::fs::write(&b, &intact[..40]).unwrap();
        let err = merge_checkpoints(&[a.clone(), b.clone()], &dir.join("m.jsonl")).unwrap_err();
        let MergeError::Checkpoint(CheckpointError::Corrupt { path, .. }) = &err else {
            panic!("expected Checkpoint(Corrupt), got {err}");
        };
        assert_eq!(path, &b.display().to_string(), "error names the file");

        // An empty file (torn before any byte of the header) is the
        // same typed error, not a panic.
        std::fs::write(&b, "").unwrap();
        let err = merge_checkpoints(&[a, b.clone()], &dir.join("m2.jsonl")).unwrap_err();
        let MergeError::Checkpoint(CheckpointError::Corrupt { path, message }) = &err else {
            panic!("expected Checkpoint(Corrupt), got {err}");
        };
        assert_eq!(path, &b.display().to_string());
        assert!(message.contains("empty"), "{message}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_mismatch_and_empty_inputs_are_typed_errors() {
        let dir = temp_dir("mismatch");
        assert_eq!(
            merge_checkpoints(&[], &dir.join("m.jsonl")).unwrap_err(),
            MergeError::NoInputs
        );

        let unit_count = campaign_unit_count(&sample_header(None));
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        write_checkpoint(&a, &sample_header(None), &[0]);
        let mut other = sample_header(None);
        other.workload_digest = "fnv1a64:0000000000000000".into();
        write_checkpoint(&b, &other, &(1..unit_count).collect::<Vec<_>>());
        let err = merge_checkpoints(&[a, b], &dir.join("m.jsonl")).unwrap_err();
        assert!(matches!(err, MergeError::HeaderMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
