//! Campaign reports: per-(fault, workload) outcome classification.

use crate::dataset::CriticalityDataset;
use crate::fault::FaultList;
use fusa_netlist::Netlist;
use std::fmt;

/// Outcome of one fault under one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// The fault changed at least one primary-output value — a functional
    /// error (the paper's "Dangerous" label).
    Dangerous,
    /// No output diverged, but register state differs at the end of the
    /// workload — the fault is latent and may surface later.
    Latent,
    /// The fault had no observable effect.
    Benign,
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultOutcome::Dangerous => "Dangerous",
            FaultOutcome::Latent => "Latent",
            FaultOutcome::Benign => "Benign",
        };
        f.write_str(s)
    }
}

/// Results of one workload: `outcomes[i]` classifies `faults[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadReport {
    /// Name of the workload that was simulated.
    pub workload_name: String,
    /// Outcome per fault, aligned with the campaign's [`FaultList`].
    pub outcomes: Vec<FaultOutcome>,
    /// Cycle of first output divergence per fault (`None` if never).
    pub first_divergence: Vec<Option<u32>>,
}

impl WorkloadReport {
    /// Number of dangerous faults in this workload.
    pub fn dangerous_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|&&o| o == FaultOutcome::Dangerous)
            .count()
    }

    /// Fault coverage: fraction of faults classified dangerous.
    pub fn coverage(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.dangerous_count() as f64 / self.outcomes.len() as f64
    }
}

/// Aggregated results of a full campaign: every workload against every
/// fault.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub(crate) faults: FaultList,
    pub(crate) gate_count: usize,
    pub(crate) workload_reports: Vec<WorkloadReport>,
}

impl CampaignReport {
    /// Per-workload reports, in workload order.
    pub fn workload_reports(&self) -> &[WorkloadReport] {
        &self.workload_reports
    }

    /// The fault list the outcomes are aligned with.
    pub fn faults(&self) -> &FaultList {
        &self.faults
    }

    /// Number of workloads (`N` in Algorithm 1).
    pub fn workload_count(&self) -> usize {
        self.workload_reports.len()
    }

    /// Mean fault coverage across workloads.
    pub fn mean_coverage(&self) -> f64 {
        if self.workload_reports.is_empty() {
            return 0.0;
        }
        self.workload_reports
            .iter()
            .map(WorkloadReport::coverage)
            .sum::<f64>()
            / self.workload_reports.len() as f64
    }

    /// Runs Algorithm 1: aggregates per-node criticality scores (fraction
    /// of workloads in which a fault at the node was dangerous) and
    /// thresholds them at `threshold` into critical / non-critical labels.
    pub fn into_dataset(self, threshold: f64) -> CriticalityDataset {
        CriticalityDataset::from_report(&self, threshold)
    }

    /// Renders a compact text summary (one line per workload).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign: {} faults x {} workloads",
            self.faults.len(),
            self.workload_count()
        );
        for report in &self.workload_reports {
            let latent = report
                .outcomes
                .iter()
                .filter(|&&o| o == FaultOutcome::Latent)
                .count();
            let _ = writeln!(
                out,
                "  {:<20} dangerous {:>5} ({:>5.1}%) latent {:>5}",
                report.workload_name,
                report.dangerous_count(),
                report.coverage() * 100.0,
                latent
            );
        }
        out
    }

    /// Writes the report as CSV (`fault,workload,outcome,first_cycle`).
    pub fn to_csv(&self, netlist: &Netlist) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("gate,fault,workload,outcome,first_divergence_cycle\n");
        for report in &self.workload_reports {
            for (fault, (outcome, first)) in self
                .faults
                .iter()
                .zip(report.outcomes.iter().zip(&report.first_divergence))
            {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{}",
                    netlist.gate(fault.gate).name,
                    fault.stuck_at,
                    report.workload_name,
                    outcome,
                    first.map(|c| c.to_string()).unwrap_or_default()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultSite, StuckAt};
    use fusa_netlist::{GateId, NetId};

    fn fake_report() -> CampaignReport {
        let faults: FaultList = vec![
            Fault {
                gate: GateId(0),
                net: NetId(1),
                stuck_at: StuckAt::Zero,
                site: FaultSite::Output,
            },
            Fault {
                gate: GateId(0),
                net: NetId(1),
                stuck_at: StuckAt::One,
                site: FaultSite::Output,
            },
        ]
        .into_iter()
        .collect();
        CampaignReport {
            faults,
            gate_count: 1,
            workload_reports: vec![
                WorkloadReport {
                    workload_name: "w0".into(),
                    outcomes: vec![FaultOutcome::Dangerous, FaultOutcome::Benign],
                    first_divergence: vec![Some(3), None],
                },
                WorkloadReport {
                    workload_name: "w1".into(),
                    outcomes: vec![FaultOutcome::Latent, FaultOutcome::Dangerous],
                    first_divergence: vec![None, Some(7)],
                },
            ],
        }
    }

    #[test]
    fn coverage_counts_dangerous_only() {
        let r = fake_report();
        assert_eq!(r.workload_reports()[0].dangerous_count(), 1);
        assert!((r.workload_reports()[0].coverage() - 0.5).abs() < 1e-12);
        assert!((r.mean_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_workloads() {
        let text = fake_report().summary();
        assert!(text.contains("w0"));
        assert!(text.contains("w1"));
        assert!(text.contains("2 faults"));
    }

    #[test]
    fn outcome_display() {
        assert_eq!(FaultOutcome::Dangerous.to_string(), "Dangerous");
        assert_eq!(FaultOutcome::Latent.to_string(), "Latent");
        assert_eq!(FaultOutcome::Benign.to_string(), "Benign");
    }
}
