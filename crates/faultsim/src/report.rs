//! Campaign reports: per-(fault, workload) outcome classification.

use crate::dataset::CriticalityDataset;
use crate::fault::FaultList;
use fusa_netlist::Netlist;
use std::fmt;

/// Outcome of one fault under one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// The fault changed at least one primary-output value — a functional
    /// error (the paper's "Dangerous" label).
    Dangerous,
    /// No output diverged, but register state differs at the end of the
    /// workload — the fault is latent and may surface later.
    Latent,
    /// The fault had no observable effect.
    Benign,
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultOutcome::Dangerous => "Dangerous",
            FaultOutcome::Latent => "Latent",
            FaultOutcome::Benign => "Benign",
        };
        f.write_str(s)
    }
}

/// Results of one workload: `outcomes[i]` classifies `faults[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadReport {
    /// Name of the workload that was simulated.
    pub workload_name: String,
    /// Outcome per fault, aligned with the campaign's [`FaultList`].
    pub outcomes: Vec<FaultOutcome>,
    /// Cycle of first output divergence per fault (`None` if never).
    pub first_divergence: Vec<Option<u32>>,
}

impl WorkloadReport {
    /// Number of dangerous faults in this workload.
    pub fn dangerous_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|&&o| o == FaultOutcome::Dangerous)
            .count()
    }

    /// Fault coverage: fraction of faults classified dangerous.
    pub fn coverage(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.dangerous_count() as f64 / self.outcomes.len() as f64
    }
}

/// Timing and throughput statistics of one campaign run.
///
/// Stats are observability only: they never participate in outcome
/// equality (differential tests compare [`WorkloadReport`]s directly).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignStats {
    /// End-to-end wall time of [`crate::FaultCampaign::run`], seconds.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub threads: usize,
    /// `(workload × fault-chunk)` units in the full campaign.
    pub units: usize,
    /// Units owned by this process: equal to [`units`](Self::units) for
    /// a full campaign, the owned subset under `--shard i/n`.
    pub units_in_shard: usize,
    /// Logical campaign size: Σ faults × workload cycles. Independent of
    /// cone restriction and early exit, so `fault_cycles / wall_seconds`
    /// is comparable across implementations.
    pub fault_cycles: u64,
    /// Fault-cycles actually stepped (early exit lowers this).
    pub stepped_fault_cycles: u64,
    /// Gate evaluations performed by fault machines (cone restriction
    /// and early exit lower this).
    pub gate_evals: u64,
    /// Gate evaluations a full-netlist, no-early-exit run would cost.
    pub gate_evals_full: u64,
    /// Busy seconds per worker (length = `threads`).
    pub worker_busy_seconds: Vec<f64>,
    /// Units loaded from the checkpoint instead of simulated (resume).
    pub units_from_checkpoint: usize,
    /// Units quarantined after exhausting their retry budget.
    pub units_quarantined: usize,
    /// Unit attempts that panicked and were retried.
    pub unit_retries: u64,
    /// Checkpoint write attempts that failed transiently and were
    /// retried (bounded exponential backoff; see `IoRetryPolicy`).
    pub checkpoint_write_retries: u64,
    /// `true` when a checkpoint write (or the checkpoint open itself)
    /// outlived the retry budget: the campaign completed in memory but
    /// the on-disk checkpoint is untrustworthy for `--resume`.
    pub durability_degraded: bool,
    /// Units never attempted because the campaign was interrupted.
    pub units_skipped: usize,
    /// Lane width the run used, in 64-lane `u64` words (`0` = legacy
    /// scalar kernel).
    pub lane_words: usize,
    /// Seconds spent building fanout cones (cone restriction only).
    pub cone_build_seconds: f64,
    /// Mean union-cone size as a fraction of the design's gate count,
    /// in `(0, 1]`; `0.0` when cone restriction was off. High values
    /// explain poor cone speedups (e.g. dense designs where every cone
    /// covers most of the netlist).
    pub cone_coverage: f64,
}

impl CampaignStats {
    /// Campaign throughput: logical fault-cycles per wall second.
    pub fn fault_cycles_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.fault_cycles as f64 / self.wall_seconds
    }

    /// Fraction of full-run gate evaluations avoided (cone restriction
    /// plus early exit).
    pub fn gate_evals_saved_fraction(&self) -> f64 {
        if self.gate_evals_full == 0 {
            return 0.0;
        }
        1.0 - self.gate_evals as f64 / self.gate_evals_full as f64
    }

    /// Mean worker busy-time divided by wall time, in `[0, 1]`.
    pub fn mean_utilization(&self) -> f64 {
        if self.worker_busy_seconds.is_empty() || self.wall_seconds <= 0.0 {
            return 0.0;
        }
        let mean =
            self.worker_busy_seconds.iter().sum::<f64>() / self.worker_busy_seconds.len() as f64;
        (mean / self.wall_seconds).clamp(0.0, 1.0)
    }

    /// Publishes the stats into `recorder` as `campaign.*` counters and
    /// gauges, and emits one `campaign` trace event when a sink is
    /// attached. Called by [`crate::FaultCampaign::run`] so run manifests
    /// pick the numbers up without replumbing every caller.
    pub fn publish(&self, recorder: &fusa_obs::Recorder) {
        recorder.add("campaign.units", self.units as u64);
        recorder.add("campaign.fault_cycles", self.fault_cycles);
        recorder.add("campaign.stepped_fault_cycles", self.stepped_fault_cycles);
        recorder.add("campaign.gate_evals", self.gate_evals);
        recorder.add("campaign.gate_evals_full", self.gate_evals_full);
        recorder.gauge_max("campaign.threads", self.threads as f64);
        recorder.gauge_set(
            "campaign.fault_cycles_per_second",
            self.fault_cycles_per_second(),
        );
        recorder.gauge_set(
            "campaign.gate_evals_saved_fraction",
            self.gate_evals_saved_fraction(),
        );
        recorder.gauge_set("campaign.utilization", self.mean_utilization());
        recorder.gauge_set("campaign.lane_words", self.lane_words as f64);
        recorder.gauge_set("campaign.cone_build_seconds", self.cone_build_seconds);
        recorder.gauge_set("campaign.cone_coverage", self.cone_coverage);
        // Durability counters are published only when nonzero so clean
        // runs keep their established manifest shape.
        if self.units_from_checkpoint > 0 {
            recorder.add(
                "campaign.units_from_checkpoint",
                self.units_from_checkpoint as u64,
            );
        }
        if self.units_quarantined > 0 {
            recorder.add("campaign.units_quarantined", self.units_quarantined as u64);
        }
        if self.unit_retries > 0 {
            recorder.add("campaign.unit_retries", self.unit_retries);
        }
        if self.checkpoint_write_retries > 0 {
            recorder.add(
                "campaign.checkpoint_write_retries",
                self.checkpoint_write_retries,
            );
        }
        if self.durability_degraded {
            recorder.add("campaign.durability_degraded", 1);
        }
        if self.units_skipped > 0 {
            recorder.add("campaign.units_skipped", self.units_skipped as u64);
        }
        // Published only for sharded runs, where ownership is a strict
        // subset, so full-campaign manifests keep their shape.
        if self.units_in_shard != self.units {
            recorder.add("campaign.units_in_shard", self.units_in_shard as u64);
        }
        if recorder.has_sink() {
            use fusa_obs::EventField::{F64, U64};
            recorder.event(
                "campaign",
                &[
                    ("fault_cycles", U64(self.fault_cycles)),
                    ("stepped_fault_cycles", U64(self.stepped_fault_cycles)),
                    ("gate_evals", U64(self.gate_evals)),
                    ("gate_evals_full", U64(self.gate_evals_full)),
                    ("units", U64(self.units as u64)),
                    ("threads", U64(self.threads as u64)),
                    ("wall_seconds", F64(self.wall_seconds)),
                    ("utilization", F64(self.mean_utilization())),
                ],
            );
        }
    }
}

/// Aggregated results of a full campaign: every workload against every
/// fault.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub(crate) faults: FaultList,
    pub(crate) gate_count: usize,
    pub(crate) workload_reports: Vec<WorkloadReport>,
    pub(crate) stats: CampaignStats,
    /// `true` when the campaign drained early on an interruption
    /// request; outcomes of skipped units keep their Benign default.
    pub(crate) interrupted: bool,
    /// Units excluded after exhausting their retry budget.
    pub(crate) quarantined: Vec<crate::durability::QuarantinedUnit>,
    /// The shard this run covered (`--shard i/n`), `None` for a full
    /// campaign; outcomes of other shards' units keep their Benign
    /// default until the shard checkpoints are merged.
    pub(crate) shard: Option<crate::shard::ShardSpec>,
}

impl CampaignReport {
    /// Per-workload reports, in workload order.
    pub fn workload_reports(&self) -> &[WorkloadReport] {
        &self.workload_reports
    }

    /// The fault list the outcomes are aligned with.
    pub fn faults(&self) -> &FaultList {
        &self.faults
    }

    /// Timing and throughput statistics of the run.
    pub fn stats(&self) -> &CampaignStats {
        &self.stats
    }

    /// `true` when the campaign was interrupted before every unit ran;
    /// the report then holds partial ground truth.
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// Units excluded because they panicked on every attempt.
    pub fn quarantined(&self) -> &[crate::durability::QuarantinedUnit] {
        &self.quarantined
    }

    /// The shard this run covered (`--shard i/n`), or `None` for a full
    /// campaign. A sharded report is partial ground truth by design.
    pub fn shard(&self) -> Option<crate::shard::ShardSpec> {
        self.shard
    }

    /// Number of workloads (`N` in Algorithm 1).
    pub fn workload_count(&self) -> usize {
        self.workload_reports.len()
    }

    /// Mean fault coverage across workloads.
    pub fn mean_coverage(&self) -> f64 {
        if self.workload_reports.is_empty() {
            return 0.0;
        }
        self.workload_reports
            .iter()
            .map(WorkloadReport::coverage)
            .sum::<f64>()
            / self.workload_reports.len() as f64
    }

    /// Runs Algorithm 1: aggregates per-node criticality scores (fraction
    /// of workloads in which a fault at the node was dangerous) and
    /// thresholds them at `threshold` into critical / non-critical labels.
    pub fn into_dataset(self, threshold: f64) -> CriticalityDataset {
        CriticalityDataset::from_report(&self, threshold)
    }

    /// Renders a compact text summary (one line per workload), including
    /// the throughput line. See [`CampaignReport::summary_opts`].
    pub fn summary(&self) -> String {
        self.summary_opts(true)
    }

    /// Renders the text summary, optionally omitting the wall-time /
    /// throughput line. Pass `show_stats = false` when the text feeds a
    /// reproducibility digest: outcome lines are deterministic for a
    /// seeded campaign, timing never is.
    pub fn summary_opts(&self, show_stats: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign: {} faults x {} workloads",
            self.faults.len(),
            self.workload_count()
        );
        for report in &self.workload_reports {
            let latent = report
                .outcomes
                .iter()
                .filter(|&&o| o == FaultOutcome::Latent)
                .count();
            let _ = writeln!(
                out,
                "  {:<20} dangerous {:>5} ({:>5.1}%) latent {:>5}",
                report.workload_name,
                report.dangerous_count(),
                report.coverage() * 100.0,
                latent
            );
        }
        // Degraded- and partial-run lines are part of the stable
        // (digested) summary on purpose: a partial campaign must never
        // digest identically to a complete one. Clean full runs emit
        // none of them.
        if let Some(shard) = self.shard {
            let _ = writeln!(
                out,
                "  shard {shard}: {} of {} units owned (partial ground truth; \
                 union shards with `fusa merge`)",
                self.stats.units_in_shard, self.stats.units
            );
        }
        if !self.quarantined.is_empty() {
            let _ = writeln!(
                out,
                "  quarantined: {} unit(s) excluded after retries (partial ground truth)",
                self.quarantined.len()
            );
            for q in &self.quarantined {
                let _ = writeln!(
                    out,
                    "    unit {} (workload {}, chunk {}, {} attempts): {}",
                    q.unit,
                    q.workload,
                    q.chunk,
                    q.attempts,
                    q.panic_message.lines().next().unwrap_or("")
                );
            }
        }
        if self.interrupted {
            // Against the owned total for a sharded run: the other
            // shards' units were never this process's to complete.
            let total = if self.shard.is_some() {
                self.stats.units_in_shard
            } else {
                self.stats.units
            };
            let done = total
                .saturating_sub(self.stats.units_skipped)
                .saturating_sub(self.stats.units_quarantined);
            let _ = writeln!(
                out,
                "  interrupted: {done}/{total} units completed (resume with --resume)"
            );
        }
        if self.stats.durability_degraded {
            // In the stable summary for the same reason as the lines
            // above: a run that lost its checkpoint must never digest
            // identically to one whose durability held.
            let _ = writeln!(
                out,
                "  durability: degraded (checkpoint writes failed; results completed \
                 in memory, repair with `fusa fsck --repair` before resuming)"
            );
        }
        if show_stats && self.stats.wall_seconds > 0.0 {
            let _ = writeln!(
                out,
                "  throughput: {:.0} fault-cycles/s ({:.3}s wall, {} threads, \
                 {:.1}% gate-evals saved, {:.0}% utilization)",
                self.stats.fault_cycles_per_second(),
                self.stats.wall_seconds,
                self.stats.threads,
                self.stats.gate_evals_saved_fraction() * 100.0,
                self.stats.mean_utilization() * 100.0
            );
        }
        out
    }

    /// Writes the report as CSV (`fault,workload,outcome,first_cycle`).
    pub fn to_csv(&self, netlist: &Netlist) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("gate,fault,workload,outcome,first_divergence_cycle\n");
        for report in &self.workload_reports {
            for (fault, (outcome, first)) in self
                .faults
                .iter()
                .zip(report.outcomes.iter().zip(&report.first_divergence))
            {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{}",
                    netlist.gate(fault.gate).name,
                    fault.stuck_at,
                    report.workload_name,
                    outcome,
                    first.map(|c| c.to_string()).unwrap_or_default()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultSite, StuckAt};
    use fusa_netlist::{GateId, NetId};

    fn fake_report() -> CampaignReport {
        let faults: FaultList = vec![
            Fault {
                gate: GateId(0),
                net: NetId(1),
                stuck_at: StuckAt::Zero,
                site: FaultSite::Output,
            },
            Fault {
                gate: GateId(0),
                net: NetId(1),
                stuck_at: StuckAt::One,
                site: FaultSite::Output,
            },
        ]
        .into_iter()
        .collect();
        CampaignReport {
            faults,
            gate_count: 1,
            workload_reports: vec![
                WorkloadReport {
                    workload_name: "w0".into(),
                    outcomes: vec![FaultOutcome::Dangerous, FaultOutcome::Benign],
                    first_divergence: vec![Some(3), None],
                },
                WorkloadReport {
                    workload_name: "w1".into(),
                    outcomes: vec![FaultOutcome::Latent, FaultOutcome::Dangerous],
                    first_divergence: vec![None, Some(7)],
                },
            ],
            stats: CampaignStats::default(),
            interrupted: false,
            quarantined: Vec::new(),
            shard: None,
        }
    }

    #[test]
    fn coverage_counts_dangerous_only() {
        let r = fake_report();
        assert_eq!(r.workload_reports()[0].dangerous_count(), 1);
        assert!((r.workload_reports()[0].coverage() - 0.5).abs() < 1e-12);
        assert!((r.mean_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_workloads() {
        let text = fake_report().summary();
        assert!(text.contains("w0"));
        assert!(text.contains("w1"));
        assert!(text.contains("2 faults"));
    }

    #[test]
    fn degraded_runs_change_the_stable_summary() {
        let clean = fake_report();
        assert!(!clean.summary_opts(false).contains("durability"));
        let mut degraded = fake_report();
        degraded.stats.durability_degraded = true;
        let text = degraded.summary_opts(false);
        assert!(text.contains("durability: degraded"), "{text}");
        assert!(text.contains("fusa fsck"), "{text}");
        assert_ne!(
            clean.summary_opts(false),
            degraded.summary_opts(false),
            "a degraded run must never digest identically to a durable one"
        );
    }

    #[test]
    fn stats_ratios_are_safe_and_sensible() {
        let zero = CampaignStats::default();
        assert_eq!(zero.fault_cycles_per_second(), 0.0);
        assert_eq!(zero.gate_evals_saved_fraction(), 0.0);
        assert_eq!(zero.mean_utilization(), 0.0);

        let stats = CampaignStats {
            wall_seconds: 2.0,
            threads: 2,
            units: 8,
            fault_cycles: 1_000,
            stepped_fault_cycles: 800,
            gate_evals: 250,
            gate_evals_full: 1_000,
            worker_busy_seconds: vec![1.0, 3.0],
            ..CampaignStats::default()
        };
        assert!((stats.fault_cycles_per_second() - 500.0).abs() < 1e-9);
        assert!((stats.gate_evals_saved_fraction() - 0.75).abs() < 1e-9);
        assert_eq!(stats.mean_utilization(), 1.0, "clamped to [0, 1]");
    }

    #[test]
    fn outcome_display() {
        assert_eq!(FaultOutcome::Dangerous.to_string(), "Dangerous");
        assert_eq!(FaultOutcome::Latent.to_string(), "Latent");
        assert_eq!(FaultOutcome::Benign.to_string(), "Benign");
    }
}
