//! Append-only JSONL campaign checkpoints.
//!
//! Line 1 is a header fingerprinting everything that determines unit
//! outcomes: the design (digest of its Verilog form), the fault list,
//! the workload suite (names and vector bits, which cover the seeds)
//! and the outcome-affecting campaign knobs. Each subsequent line is
//! one completed `(workload × chunk)` unit with its per-lane verdicts
//! and an FNV-1a64 record digest. `--resume` re-validates the header —
//! any mismatch is a hard error, because mixing results across designs
//! or configs would silently corrupt the ground truth — and skips unit
//! lines that are torn or fail their digest, so those units simply run
//! again.
//!
//! # The header-binding model
//!
//! Every knob that can change a unit's *outcome* is bound into the
//! header; every knob that only changes how fast or in what order units
//! are computed is deliberately left out. Bound: the design digest, the
//! fault list digest (count, sites, polarities), the workload digest
//! (names and vector bits, which cover the seeds), `classify_latent`,
//! `min_divergence_fraction`, and — since schema v2 — the shard spec of
//! a `--shard i/n` partial campaign. Not bound: `threads`,
//! `restrict_to_cone`, `early_exit` and `lane_words`, which are
//! bit-identical by construction (see the differential tests), so a
//! campaign may be resumed under a different thread count, acceleration
//! setting or lane width — the checkpoint unit is always the 64-fault
//! chunk regardless of how many chunks a pass packs together.
//!
//! The shard spec sits in between: it does not change any unit's
//! outcome, but it changes which units a resumed process is allowed to
//! consider complete, so resuming binds it exactly while
//! [`merge`](crate::merge) compares headers with the shard field
//! excluded (that is the whole point of merging).
//!
//! ```
//! use fusa_faultsim::{CampaignConfig, CheckpointHeader, FaultList, ShardSpec};
//! use fusa_logicsim::{WorkloadConfig, WorkloadSuite};
//!
//! let netlist = fusa_netlist::designs::or1200_icfsm();
//! let faults = FaultList::all_gate_outputs(&netlist);
//! let workloads = WorkloadSuite::generate(
//!     &netlist,
//!     &WorkloadConfig { num_workloads: 2, vectors_per_workload: 8, reset_cycles: 0, seed: 3 },
//! );
//! let config = CampaignConfig::default();
//! let header = CheckpointHeader::capture(&netlist, &faults, &workloads, &config);
//!
//! // A checkpoint written under the same fingerprint resumes cleanly…
//! assert!(header.check_compatible(&header).is_ok());
//!
//! // …an outcome-affecting difference is a hard error…
//! let mut flipped = header.clone();
//! flipped.classify_latent = !header.classify_latent;
//! assert!(flipped.check_compatible(&header).is_err());
//!
//! // …and a shard checkpoint only resumes under the same `--shard i/n`.
//! let mut sharded = header.clone();
//! sharded.shard = Some(ShardSpec { index: 2, total: 3 });
//! assert!(sharded.check_compatible(&header).is_err());
//! ```

use crate::campaign::{CampaignConfig, UnitOutput};
use crate::durability::IoRetryPolicy;
use crate::fault::{FaultList, FaultSite};
use crate::report::FaultOutcome;
use crate::shard::ShardSpec;
use fusa_logicsim::WorkloadSuite;
use fusa_netlist::Netlist;
use fusa_obs::{Fnv64, Json};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Schema tag of the checkpoint header line.
///
/// v2 added the optional `shard_index`/`shard_total` header fields;
/// v1 checkpoints (no shard fields) still parse as unsharded.
pub const CHECKPOINT_SCHEMA: &str = "fusa-faultsim/checkpoint/v2";

/// Legacy schema tag, still accepted on read.
pub const CHECKPOINT_SCHEMA_V1: &str = "fusa-faultsim/checkpoint/v1";

/// Errors raised while creating, loading or validating a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint file could not be opened, read or created.
    Io {
        /// Path of the checkpoint file.
        path: String,
        /// Rendered I/O error.
        message: String,
    },
    /// The file exists but its header line is missing or malformed.
    Corrupt {
        /// Path of the checkpoint file.
        path: String,
        /// What was wrong.
        message: String,
    },
    /// The header does not match the campaign being resumed.
    Mismatch {
        /// Header field that differs (e.g. `design_digest`).
        field: String,
        /// Value expected by the current campaign.
        expected: String,
        /// Value found in the checkpoint.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "cannot access checkpoint {path}: {message}")
            }
            CheckpointError::Corrupt { path, message } => {
                write!(f, "corrupt checkpoint {path}: {message}")
            }
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint does not match this campaign: {field} is {found}, \
                 expected {expected} (delete the checkpoint or fix the invocation)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_error(path: &Path, e: &std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// The outcome-determining fingerprint of a campaign, written as the
/// checkpoint's first line and re-validated on `--resume`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointHeader {
    /// Design name (informational; the digest is what gates).
    pub design: String,
    /// FNV-1a64 of the design's written-out Verilog.
    pub design_digest: String,
    /// Number of faults in the campaign's fault list.
    pub fault_count: usize,
    /// FNV-1a64 over every fault's (gate, net, polarity, site).
    pub fault_digest: String,
    /// Number of workloads.
    pub workload_count: usize,
    /// FNV-1a64 over workload names and vector bits (covers the seeds).
    pub workload_digest: String,
    /// `CampaignConfig::classify_latent` (outcome-affecting).
    pub classify_latent: bool,
    /// `CampaignConfig::min_divergence_fraction` (outcome-affecting).
    pub min_divergence_fraction: f64,
    /// Shard spec of a `--shard i/n` partial campaign; `None` for a
    /// full campaign or a merged checkpoint.
    pub shard: Option<ShardSpec>,
}

impl CheckpointHeader {
    /// Fingerprints `netlist`, `faults`, `workloads` and the
    /// outcome-affecting parts of `config`.
    pub fn capture(
        netlist: &Netlist,
        faults: &FaultList,
        workloads: &WorkloadSuite,
        config: &CampaignConfig,
    ) -> CheckpointHeader {
        let design_digest =
            fusa_obs::fnv1a64_hex(fusa_netlist::writer::write_verilog(netlist).as_bytes());
        let mut fault_hash = Fnv64::new();
        for fault in faults.iter() {
            fault_hash.write(&(fault.gate.0).to_le_bytes());
            fault_hash.write(&(fault.net.0).to_le_bytes());
            fault_hash.write(&[u8::from(fault.stuck_at.value())]);
            let site = match fault.site {
                FaultSite::Output => 255u8,
                FaultSite::InputPin(pin) => pin,
            };
            fault_hash.write(&[site]);
        }
        let mut workload_hash = Fnv64::new();
        for workload in workloads.workloads() {
            workload_hash.write(workload.name.as_bytes());
            workload_hash.write(&[0]);
            for vector in &workload.vectors {
                for &bit in vector {
                    workload_hash.write(&[u8::from(bit)]);
                }
                workload_hash.write(&[2]);
            }
        }
        CheckpointHeader {
            design: netlist.name().to_string(),
            design_digest,
            fault_count: faults.len(),
            fault_digest: fault_hash.hex(),
            workload_count: workloads.len(),
            workload_digest: workload_hash.hex(),
            classify_latent: config.classify_latent,
            min_divergence_fraction: config.min_divergence_fraction,
            shard: config.shard,
        }
    }

    pub(crate) fn to_json_line(&self) -> String {
        let mut fields = vec![
            ("schema".into(), Json::Str(CHECKPOINT_SCHEMA.into())),
            ("design".into(), Json::Str(self.design.clone())),
            (
                "design_digest".into(),
                Json::Str(self.design_digest.clone()),
            ),
            ("fault_count".into(), Json::Num(self.fault_count as f64)),
            ("fault_digest".into(), Json::Str(self.fault_digest.clone())),
            (
                "workload_count".into(),
                Json::Num(self.workload_count as f64),
            ),
            (
                "workload_digest".into(),
                Json::Str(self.workload_digest.clone()),
            ),
            ("classify_latent".into(), Json::Bool(self.classify_latent)),
            (
                "min_divergence_fraction".into(),
                Json::Num(self.min_divergence_fraction),
            ),
        ];
        if let Some(shard) = self.shard {
            fields.push(("shard_index".into(), Json::Num(shard.index as f64)));
            fields.push(("shard_total".into(), Json::Num(shard.total as f64)));
        }
        fields.push(("lanes".into(), Json::Num(crate::campaign::LANES as f64)));
        Json::Obj(fields).render()
    }

    pub(crate) fn parse(line: &str) -> Result<CheckpointHeader, String> {
        let json = Json::parse(line).map_err(|e| format!("header is not JSON: {e:?}"))?;
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("header has no schema field")?;
        if schema != CHECKPOINT_SCHEMA && schema != CHECKPOINT_SCHEMA_V1 {
            return Err(format!(
                "unsupported checkpoint schema {schema:?} (expected {CHECKPOINT_SCHEMA:?})"
            ));
        }
        let shard = match (
            json.get("shard_index").and_then(Json::as_u64),
            json.get("shard_total").and_then(Json::as_u64),
        ) {
            (Some(index), Some(total)) => Some(ShardSpec {
                index: index as usize,
                total: total as usize,
            }),
            (None, None) => None,
            _ => return Err("header has shard_index without shard_total (or vice versa)".into()),
        };
        let str_field = |name: &str| {
            json.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("header field {name} missing"))
        };
        let num_field = |name: &str| {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("header field {name} missing"))
        };
        Ok(CheckpointHeader {
            design: str_field("design")?,
            design_digest: str_field("design_digest")?,
            fault_count: num_field("fault_count")? as usize,
            fault_digest: str_field("fault_digest")?,
            workload_count: num_field("workload_count")? as usize,
            workload_digest: str_field("workload_digest")?,
            classify_latent: match json.get("classify_latent") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("header field classify_latent missing".into()),
            },
            min_divergence_fraction: json
                .get("min_divergence_fraction")
                .and_then(Json::as_f64)
                .ok_or("header field min_divergence_fraction missing")?,
            shard,
        })
    }

    /// Validates that resuming from a checkpoint written under `self`
    /// is sound for a campaign expecting `expected`, including the
    /// shard spec: a `--shard 2/3` checkpoint only resumes under
    /// `--shard 2/3`.
    pub fn check_compatible(&self, expected: &CheckpointHeader) -> Result<(), CheckpointError> {
        self.check_compatible_ignoring_shard(expected)?;
        if self.shard != expected.shard {
            let render =
                |s: &Option<ShardSpec>| s.map_or_else(|| "none".to_string(), |s| s.to_string());
            return Err(CheckpointError::Mismatch {
                field: "shard".to_string(),
                expected: render(&expected.shard),
                found: render(&self.shard),
            });
        }
        Ok(())
    }

    /// [`check_compatible`](Self::check_compatible) minus the shard
    /// comparison — the compatibility rule `fusa merge` applies across
    /// shard checkpoints, which by design differ only in shard spec.
    pub fn check_compatible_ignoring_shard(
        &self,
        expected: &CheckpointHeader,
    ) -> Result<(), CheckpointError> {
        let mismatch = |field: &str, expected: String, found: String| {
            Err(CheckpointError::Mismatch {
                field: field.to_string(),
                expected,
                found,
            })
        };
        if self.design_digest != expected.design_digest {
            return mismatch(
                "design_digest",
                expected.design_digest.clone(),
                self.design_digest.clone(),
            );
        }
        if self.fault_count != expected.fault_count || self.fault_digest != expected.fault_digest {
            return mismatch(
                "fault_digest",
                format!(
                    "{} ({} faults)",
                    expected.fault_digest, expected.fault_count
                ),
                format!("{} ({} faults)", self.fault_digest, self.fault_count),
            );
        }
        if self.workload_count != expected.workload_count
            || self.workload_digest != expected.workload_digest
        {
            return mismatch(
                "workload_digest",
                format!(
                    "{} ({} workloads)",
                    expected.workload_digest, expected.workload_count
                ),
                format!(
                    "{} ({} workloads)",
                    self.workload_digest, self.workload_count
                ),
            );
        }
        if self.classify_latent != expected.classify_latent {
            return mismatch(
                "classify_latent",
                expected.classify_latent.to_string(),
                self.classify_latent.to_string(),
            );
        }
        if self.min_divergence_fraction != expected.min_divergence_fraction {
            return mismatch(
                "min_divergence_fraction",
                expected.min_divergence_fraction.to_string(),
                self.min_divergence_fraction.to_string(),
            );
        }
        Ok(())
    }

    /// Identity key of the shard *family*: a digest over every
    /// outcome-determining header field except the shard spec. Two
    /// checkpoints have equal family keys exactly when
    /// [`check_compatible_ignoring_shard`](Self::check_compatible_ignoring_shard)
    /// accepts them — the rule `fusa merge` applies — so `fusa top`
    /// uses it to group shards of the same campaign into one fleet row
    /// family.
    pub fn family_key(&self) -> String {
        fusa_obs::fnv1a64_hex(
            format!(
                "{}|{}|{}|{}|{}|{}|{}",
                self.design_digest,
                self.fault_count,
                self.fault_digest,
                self.workload_count,
                self.workload_digest,
                self.classify_latent,
                self.min_divergence_fraction,
            )
            .as_bytes(),
        )
    }
}

/// Canonical string a unit record's `crc` digests, recomputed on read.
fn unit_crc(
    unit: usize,
    outcomes: &str,
    first_divergence: &str,
    stepped: u64,
    evals: u64,
) -> String {
    fusa_obs::fnv1a64_hex(
        format!("{unit}|{outcomes}|{first_divergence}|{stepped}|{evals}").as_bytes(),
    )
}

/// Serializes one completed unit as a checkpoint JSONL line (no newline).
pub(crate) fn encode_unit(unit: usize, output: &UnitOutput) -> String {
    let outcomes: String = output
        .outcomes
        .iter()
        .map(|o| match o {
            FaultOutcome::Dangerous => 'D',
            FaultOutcome::Latent => 'L',
            FaultOutcome::Benign => 'B',
        })
        .collect();
    let fd_csv: String = output
        .first_divergence
        .iter()
        .map(|d| d.map_or(-1i64, i64::from).to_string())
        .collect::<Vec<_>>()
        .join(",");
    let crc = unit_crc(
        unit,
        &outcomes,
        &fd_csv,
        output.stepped_fault_cycles,
        output.gate_evals,
    );
    Json::Obj(vec![
        ("unit".into(), Json::Num(unit as f64)),
        ("outcomes".into(), Json::Str(outcomes)),
        (
            "first_divergence".into(),
            Json::Arr(
                output
                    .first_divergence
                    .iter()
                    .map(|d| Json::Num(d.map_or(-1.0, f64::from)))
                    .collect(),
            ),
        ),
        (
            "stepped_fault_cycles".into(),
            Json::Num(output.stepped_fault_cycles as f64),
        ),
        ("gate_evals".into(), Json::Num(output.gate_evals as f64)),
        ("crc".into(), Json::Str(crc)),
    ])
    .render()
}

/// Parses one unit line; `None` for torn, malformed or digest-failing
/// records (the unit is simply simulated again).
pub(crate) fn decode_unit(line: &str) -> Option<(usize, UnitOutput)> {
    let json = Json::parse(line).ok()?;
    let unit = json.get("unit")?.as_u64()? as usize;
    let outcome_text = json.get("outcomes")?.as_str()?;
    let mut outcomes = Vec::with_capacity(outcome_text.len());
    for c in outcome_text.chars() {
        outcomes.push(match c {
            'D' => FaultOutcome::Dangerous,
            'L' => FaultOutcome::Latent,
            'B' => FaultOutcome::Benign,
            _ => return None,
        });
    }
    let mut first_divergence = Vec::new();
    let mut fd_parts = Vec::new();
    for item in json.get("first_divergence")?.as_arr()? {
        let v = item.as_f64()?;
        fd_parts.push(format!("{}", v as i64));
        first_divergence.push(if v < 0.0 { None } else { Some(v as u32) });
    }
    if first_divergence.len() != outcomes.len() {
        return None;
    }
    let stepped_fault_cycles = json.get("stepped_fault_cycles")?.as_u64()?;
    let gate_evals = json.get("gate_evals")?.as_u64()?;
    let expected_crc = unit_crc(
        unit,
        outcome_text,
        &fd_parts.join(","),
        stepped_fault_cycles,
        gate_evals,
    );
    if json.get("crc")?.as_str()? != expected_crc {
        return None;
    }
    Some((
        unit,
        UnitOutput {
            outcomes,
            first_divergence,
            stepped_fault_cycles,
            gate_evals,
        },
    ))
}

/// Reads and parses the header line of `path` without touching the
/// unit records.
///
/// This is the cheap "peek" used by `fusa merge` to learn the design
/// name and campaign parameters bound by a shard checkpoint before
/// reconstructing the campaign inputs.
pub fn read_header(path: &Path) -> Result<CheckpointHeader, CheckpointError> {
    let file = File::open(path).map_err(|e| io_error(path, &e))?;
    let header_line = match BufReader::new(file).lines().next() {
        Some(Ok(line)) => line,
        Some(Err(e)) => return Err(io_error(path, &e)),
        None => {
            return Err(CheckpointError::Corrupt {
                path: path.display().to_string(),
                message: "file is empty (no header line)".into(),
            })
        }
    };
    CheckpointHeader::parse(&header_line).map_err(|message| CheckpointError::Corrupt {
        path: path.display().to_string(),
        message,
    })
}

/// Counts the distinct completed units recorded in checkpoint `path`,
/// applying the same tolerance as `--resume`: torn, malformed or
/// digest-failing unit lines are skipped, duplicates (a unit re-written
/// after a retry) count once. This is the ground truth `fusa top`'s
/// unit counts are validated against in CI.
pub fn read_unit_count(path: &Path) -> Result<usize, CheckpointError> {
    let file = File::open(path).map_err(|e| io_error(path, &e))?;
    let mut lines = BufReader::new(file).lines();
    match lines.next() {
        Some(Ok(line)) => {
            CheckpointHeader::parse(&line).map_err(|message| CheckpointError::Corrupt {
                path: path.display().to_string(),
                message,
            })?;
        }
        Some(Err(e)) => return Err(io_error(path, &e)),
        None => {
            return Err(CheckpointError::Corrupt {
                path: path.display().to_string(),
                message: "file is empty (no header line)".into(),
            })
        }
    }
    let mut units = std::collections::BTreeSet::new();
    for line in lines {
        let line = line.map_err(|e| io_error(path, &e))?;
        if let Some((unit, _)) = decode_unit(&line) {
            units.insert(unit);
        }
    }
    Ok(units.len())
}

/// Loads the completed units of `path`, hard-failing when the header is
/// missing, unreadable or incompatible with `expected`.
pub(crate) fn load_units(
    path: &Path,
    expected: &CheckpointHeader,
    unit_count: usize,
) -> Result<HashMap<usize, UnitOutput>, CheckpointError> {
    let file = File::open(path).map_err(|e| io_error(path, &e))?;
    let mut lines = BufReader::new(file).lines();
    let header_line = match lines.next() {
        Some(Ok(line)) => line,
        Some(Err(e)) => return Err(io_error(path, &e)),
        None => {
            return Err(CheckpointError::Corrupt {
                path: path.display().to_string(),
                message: "file is empty (no header line)".into(),
            })
        }
    };
    let header =
        CheckpointHeader::parse(&header_line).map_err(|message| CheckpointError::Corrupt {
            path: path.display().to_string(),
            message,
        })?;
    header.check_compatible(expected)?;
    let mut units = HashMap::new();
    for line in lines {
        let Ok(line) = line else { break };
        if let Some((unit, output)) = decode_unit(&line) {
            if unit < unit_count {
                units.insert(unit, output);
            }
        }
    }
    Ok(units)
}

/// Concurrent append-only checkpoint writer. Serialization happens on
/// the worker thread; the mutex guards only the buffered write.
///
/// Write failures are retried with bounded exponential backoff
/// ([`IoRetryPolicy`]); a write that outlives the budget escalates to
/// **degraded mode** — checkpointing stops, the campaign continues in
/// memory, and the degradation is flagged in the summary, manifest and
/// status snapshots (the campaign result is not worth less because the
/// checkpoint disk filled up, but the operator must learn the run is no
/// longer resumable from disk).
pub(crate) struct CheckpointWriter {
    path: PathBuf,
    file: Mutex<Option<BufWriter<File>>>,
    retry: IoRetryPolicy,
    /// Failed-then-retried write attempts (successful or not).
    write_retries: AtomicU64,
    /// Set when a write exhausted the retry budget.
    degraded: AtomicBool,
}

impl CheckpointWriter {
    /// Starts a fresh checkpoint: truncates `path` and writes `header`.
    pub(crate) fn create(
        path: &Path,
        header: &CheckpointHeader,
    ) -> Result<CheckpointWriter, CheckpointError> {
        let file = File::create(path).map_err(|e| io_error(path, &e))?;
        let mut file = BufWriter::new(file);
        let mut line = header.to_json_line();
        line.push('\n');
        fusa_obs::write_with_faults("checkpoint", &mut file, line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| io_error(path, &e))?;
        Ok(CheckpointWriter::over(path, file))
    }

    /// Reopens an existing checkpoint for appending (resume).
    pub(crate) fn append_to(path: &Path) -> Result<CheckpointWriter, CheckpointError> {
        let file = File::options()
            .append(true)
            .open(path)
            .map_err(|e| io_error(path, &e))?;
        Ok(CheckpointWriter::over(path, BufWriter::new(file)))
    }

    fn over(path: &Path, file: BufWriter<File>) -> CheckpointWriter {
        CheckpointWriter {
            path: path.to_path_buf(),
            file: Mutex::new(Some(file)),
            retry: IoRetryPolicy::default(),
            write_retries: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
        }
    }

    /// Installs the retry policy (before the writer is shared).
    pub(crate) fn set_retry_policy(&mut self, policy: IoRetryPolicy) {
        self.retry = policy;
    }

    /// Failed write attempts that were retried so far.
    pub(crate) fn write_retries(&self) -> u64 {
        self.write_retries.load(Ordering::Relaxed)
    }

    /// `true` once a write exhausted its retry budget and checkpointing
    /// was abandoned for the rest of the run.
    pub(crate) fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Appends one completed unit, flushing so a kill after return
    /// cannot tear the record.
    ///
    /// Transient failures are retried per the [`IoRetryPolicy`]. A
    /// failed attempt may have torn a partial line into the file, so
    /// every retry leads with a newline: the torn fragment becomes its
    /// own (skipped) line and the fresh record starts clean — resume and
    /// `fusa merge` already tolerate both blank and undecodable lines.
    pub(crate) fn record(&self, unit: usize, output: &UnitOutput) {
        let line = encode_unit(unit, output);
        // Recover the lock from panicked workers: the protected state is
        // a buffered file handle, valid regardless of how the owner died
        // (same idiom as the status-target lock in fusa-obs).
        let mut guard = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let Some(file) = guard.as_mut() else { return };
        let mut failed_attempts = 0u32;
        loop {
            let mut buf = String::with_capacity(line.len() + 2);
            if failed_attempts > 0 {
                buf.push('\n');
            }
            buf.push_str(&line);
            buf.push('\n');
            let outcome = fusa_obs::write_with_faults("checkpoint", file, buf.as_bytes())
                .and_then(|()| file.flush());
            let error = match outcome {
                Ok(()) => return,
                Err(error) => error,
            };
            failed_attempts += 1;
            if failed_attempts >= self.retry.max_attempts.max(1) {
                let reason = format!(
                    "checkpoint write to {} failed after {failed_attempts} attempt(s): {error}",
                    self.path.display()
                );
                eprintln!(
                    "fusa-faultsim: {reason}; continuing degraded \
                     (in memory, without checkpointing)"
                );
                self.degraded.store(true, Ordering::Relaxed);
                fusa_obs::mark_degraded(&reason);
                *guard = None;
                return;
            }
            self.write_retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.retry.delay_after(failed_attempts));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultList;
    use fusa_logicsim::{WorkloadConfig, WorkloadSuite};

    fn sample_header() -> CheckpointHeader {
        let netlist = fusa_netlist::designs::or1200_icfsm();
        let faults = FaultList::all_gate_outputs(&netlist);
        let workloads = WorkloadSuite::generate(
            &netlist,
            &WorkloadConfig {
                num_workloads: 2,
                vectors_per_workload: 8,
                reset_cycles: 0,
                seed: 3,
            },
        );
        CheckpointHeader::capture(&netlist, &faults, &workloads, &CampaignConfig::default())
    }

    fn sample_output() -> UnitOutput {
        UnitOutput {
            outcomes: vec![
                FaultOutcome::Dangerous,
                FaultOutcome::Latent,
                FaultOutcome::Benign,
            ],
            first_divergence: vec![Some(4), None, None],
            stepped_fault_cycles: 24,
            gate_evals: 480,
        }
    }

    #[test]
    fn header_round_trips() {
        let header = sample_header();
        let parsed = CheckpointHeader::parse(&header.to_json_line()).unwrap();
        assert_eq!(parsed, header);
        assert!(parsed.check_compatible(&header).is_ok());
    }

    #[test]
    fn mismatched_headers_are_rejected() {
        let header = sample_header();
        let mut other = header.clone();
        other.design_digest = "fnv1a64:0000000000000000".into();
        let err = other.check_compatible(&header).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Mismatch { ref field, .. } if field == "design_digest")
        );
        let mut other = header.clone();
        other.classify_latent = !header.classify_latent;
        assert!(other.check_compatible(&header).is_err());
    }

    #[test]
    fn sharded_header_round_trips_and_binds_shard_on_resume() {
        let mut header = sample_header();
        header.shard = Some(ShardSpec { index: 2, total: 3 });
        let parsed = CheckpointHeader::parse(&header.to_json_line()).unwrap();
        assert_eq!(parsed.shard, Some(ShardSpec { index: 2, total: 3 }));
        assert!(parsed.check_compatible(&header).is_ok());

        // A different shard (or no shard) cannot resume this checkpoint…
        let unsharded = sample_header();
        let err = parsed.check_compatible(&unsharded).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { ref field, .. } if field == "shard"));
        // …but merge-style comparison ignores the shard spec.
        assert!(parsed.check_compatible_ignoring_shard(&unsharded).is_ok());
    }

    #[test]
    fn v1_headers_parse_as_unsharded() {
        let header = sample_header();
        let line = header
            .to_json_line()
            .replace(CHECKPOINT_SCHEMA, CHECKPOINT_SCHEMA_V1);
        let parsed = CheckpointHeader::parse(&line).unwrap();
        assert_eq!(parsed.shard, None);
        assert!(parsed.check_compatible(&header).is_ok());

        let unknown = header
            .to_json_line()
            .replace("checkpoint/v2", "checkpoint/v9");
        assert!(CheckpointHeader::parse(&unknown).is_err());
    }

    #[test]
    fn half_specified_shard_header_is_rejected() {
        let mut header = sample_header();
        header.shard = Some(ShardSpec { index: 2, total: 3 });
        let line = header.to_json_line().replace(",\"shard_total\":3", "");
        assert!(
            CheckpointHeader::parse(&line).is_err(),
            "accepted half-specified shard in {line}"
        );
    }

    #[test]
    fn unit_record_round_trips_and_detects_corruption() {
        let output = sample_output();
        let line = encode_unit(7, &output);
        let (unit, decoded) = decode_unit(&line).unwrap();
        assert_eq!(unit, 7);
        assert_eq!(decoded.outcomes, output.outcomes);
        assert_eq!(decoded.first_divergence, output.first_divergence);
        assert_eq!(decoded.stepped_fault_cycles, 24);
        assert_eq!(decoded.gate_evals, 480);
        // Any tampering breaks the record digest.
        assert!(decode_unit(&line.replace("DLB", "DDB")).is_none());
        // Torn writes (truncated JSON) are skipped, not fatal.
        assert!(decode_unit(&line[..line.len() - 10]).is_none());
    }

    #[test]
    fn load_skips_corrupt_lines_and_validates_header() {
        let header = sample_header();
        let dir = std::env::temp_dir().join(format!("fusa_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.jsonl");
        let writer = CheckpointWriter::create(&path, &header).unwrap();
        writer.record(0, &sample_output());
        writer.record(3, &sample_output());
        drop(writer);
        // Append garbage and a torn record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not json\n{\"unit\":5,\"outcomes\":\"D\n");
        std::fs::write(&path, &text).unwrap();

        let units = load_units(&path, &header, 8).unwrap();
        assert_eq!(units.len(), 2);
        assert!(units.contains_key(&0) && units.contains_key(&3));

        let mut other = header.clone();
        other.fault_count += 1;
        other.fault_digest = "fnv1a64:ffffffffffffffff".into();
        assert!(matches!(
            load_units(&path, &other, 8),
            Err(CheckpointError::Mismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_checkpoint_is_io_error() {
        let header = sample_header();
        let path = std::env::temp_dir().join("fusa_ckpt_does_not_exist.jsonl");
        assert!(matches!(
            load_units(&path, &header, 8),
            Err(CheckpointError::Io { .. })
        ));
    }
}
